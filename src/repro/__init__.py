"""OpenEmbedding reproduction.

A distributed parameter server for deep learning recommendation models
(DLRM) using (simulated) persistent memory, reproducing Chen et al.,
*OpenEmbedding*, ICDE 2023.

Quickstart::

    from repro import OpenEmbeddingServer, ServerConfig, CacheConfig

    server = OpenEmbeddingServer(
        ServerConfig(num_nodes=2, embedding_dim=16),
        CacheConfig(capacity_bytes=1 << 20),
    )
    result = server.pull([1, 2, 3], batch_id=0)   # lazily initialised
    server.maintain(batch_id=0)                   # pipelined cache round
    server.push([1, 2, 3], grads, batch_id=0)     # PS-side optimizer
    server.barrier_checkpoint()                   # durable snapshot

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables/figures.
"""

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    ClusterConfig,
    EvictionPolicy,
    NetworkConfig,
    PrefetchConfig,
    ServerConfig,
    WorkloadConfig,
)
from repro.core import (
    CheckpointCoordinator,
    HashPartitioner,
    LookupResult,
    OpenEmbeddingServer,
    PipelinedCache,
    PSAdagrad,
    PSNode,
    PSOptimizer,
    PSSGD,
    ReadBackend,
    RecoveryReport,
    ReplicaSelector,
    ServingBackend,
    TrainBackend,
    aggregate_maintain,
    check_backend,
    check_serving_backend,
    recover_node,
)
from repro.errors import (
    CheckpointError,
    ConfigError,
    CrashError,
    KeyNotFoundError,
    PMemError,
    RecoveryError,
    ReproError,
    ServerError,
)
from repro.pmem import PmemPool, VersionedEntryStore

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CheckpointConfig",
    "CheckpointMode",
    "ClusterConfig",
    "EvictionPolicy",
    "NetworkConfig",
    "PrefetchConfig",
    "ServerConfig",
    "WorkloadConfig",
    "PSBackend",
    "ReadBackend",
    "TrainBackend",
    "ServingBackend",
    "LookupResult",
    "ReplicaSelector",
    "check_serving_backend",
    "aggregate_maintain",
    "check_backend",
    "OpenEmbeddingServer",
    "PSNode",
    "PipelinedCache",
    "CheckpointCoordinator",
    "HashPartitioner",
    "PSOptimizer",
    "PSSGD",
    "PSAdagrad",
    "RecoveryReport",
    "recover_node",
    "PmemPool",
    "VersionedEntryStore",
    "ReproError",
    "ConfigError",
    "PMemError",
    "ServerError",
    "KeyNotFoundError",
    "CheckpointError",
    "RecoveryError",
    "CrashError",
]


def __getattr__(name: str):
    # PSBackend is a deprecated alias of TrainBackend (see
    # repro.core.backend); resolve it lazily so importing repro stays
    # warning-free while direct use still warns.
    if name == "PSBackend":
        from repro.core import backend as _backend

        return _backend.PSBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
