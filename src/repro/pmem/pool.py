"""A simulated persistent object pool (the PMDK ``pmemobj`` analogue).

The pool is a key -> bytes-like object store with the durability
semantics that matter for checkpoint correctness:

* a **flushed** write is durable: it survives :meth:`PmemPool.crash`;
* an **unflushed** write (``flush=False``) sits in the simulated CPU
  cache until :meth:`PmemPool.drain` and is discarded by a crash;
* the **root** region holds named 8-byte fields (e.g. the *Checkpointed
  Batch ID*) updated with single-word atomicity — a crash never tears
  them, it only decides whether the update landed.

Values are numpy arrays (copied on write so the durable snapshot is
decoupled from the caller's live DRAM buffer) or ``None`` in
metadata-only mode, where only sizes are accounted — used by the
performance benchmarks, which need traffic and versions but not actual
weights.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import OutOfSpaceError, PMemError, PoolClosedError
from repro.simulation.device import MemoryDevice, PMEM_SPEC


class PoolRoot:
    """Named atomic 8-byte fields in the pool's root object.

    Only durable (committed) values are visible after a crash. An update
    is modelled as instantaneously atomic: either the new value is
    durable or the old one remains — never a tear. This matches
    ``PMem.atomicUpdateCheckpointId`` in Algorithm 2 line 25.
    """

    def __init__(self) -> None:
        self._fields: dict[str, int] = {}

    def set(self, name: str, value: int) -> None:
        """Atomically persist ``value`` under ``name``."""
        self._fields[name] = int(value)

    def get(self, name: str, default: int | None = None) -> int:
        """Read the durable value of ``name``.

        Raises:
            KeyError: when the field was never set and no default given.
        """
        if name in self._fields:
            return self._fields[name]
        if default is None:
            raise KeyError(name)
        return default

    def fields(self) -> dict[str, int]:
        """Snapshot of all durable root fields."""
        return dict(self._fields)


class PmemPool:
    """Persistent object pool backed by a (simulated) PMem device.

    Args:
        capacity_bytes: pool size; allocations beyond it raise
            :class:`OutOfSpaceError`.
        device: device charged for traffic; defaults to a fresh PMem
            device with Table I characteristics.

    The pool tracks used bytes exactly: an object's footprint is its
    payload size (callers pass explicit ``nbytes`` in metadata-only
    mode).
    """

    def __init__(self, capacity_bytes: int, device: MemoryDevice | None = None):
        if capacity_bytes <= 0:
            raise PMemError(f"pool capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.device = device or MemoryDevice(PMEM_SPEC, capacity_bytes)
        self.root = PoolRoot()
        self._durable: dict[object, tuple[np.ndarray | None, int]] = {}
        self._staged: dict[object, tuple[np.ndarray | None, int]] = {}
        self._used_bytes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # basic object operations
    # ------------------------------------------------------------------

    def write(
        self,
        key: object,
        value: np.ndarray | None,
        *,
        nbytes: int | None = None,
        flush: bool = True,
    ) -> float:
        """Store ``value`` under ``key``; returns simulated write seconds.

        Args:
            key: object identifier (any hashable).
            value: numpy array to persist (copied), or None in
                metadata-only mode.
            nbytes: explicit payload size; required when ``value`` is
                None, inferred from the array otherwise.
            flush: when False the write is staged in the CPU cache and
                lost on crash until :meth:`drain` is called.

        Raises:
            PoolClosedError: the pool was closed or crashed.
            OutOfSpaceError: capacity would be exceeded.
        """
        self._check_open()
        size = self._payload_size(value, nbytes)
        old_size = self._current_size(key)
        if self._used_bytes - old_size + size > self.capacity_bytes:
            raise OutOfSpaceError(
                f"pool full: used={self._used_bytes}, need={size}, "
                f"capacity={self.capacity_bytes}"
            )
        stored = None if value is None else np.array(value, copy=True)
        self._used_bytes += size - old_size
        if flush:
            self._durable[key] = (stored, size)
            self._staged.pop(key, None)
        else:
            self._staged[key] = (stored, size)
        return self.device.write(size)

    def read(self, key: object) -> np.ndarray | None:
        """Read the current (staged-over-durable) value of ``key``.

        Returns a copy, so callers cannot mutate pool contents in place.

        Raises:
            KeyError: unknown key.
        """
        self._check_open()
        value, size = self._lookup(key)
        self.device.read(size)
        return None if value is None else np.array(value, copy=True)

    def free(self, key: object) -> None:
        """Remove ``key`` from the pool and reclaim its space."""
        self._check_open()
        if key not in self._durable and key not in self._staged:
            raise KeyError(key)
        self._used_bytes -= self._current_size(key)
        self._durable.pop(key, None)
        self._staged.pop(key, None)

    def drain(self) -> None:
        """Persist all staged writes (the ``sfence`` analogue)."""
        self._check_open()
        self._durable.update(self._staged)
        self._staged.clear()

    def __contains__(self, key: object) -> bool:
        return key in self._staged or key in self._durable

    def keys(self) -> Iterator[object]:
        """All live keys (staged and durable)."""
        seen = set(self._staged)
        yield from self._staged
        for key in self._durable:
            if key not in seen:
                yield key

    def items(self) -> Iterator[tuple[object, np.ndarray | None]]:
        """All live (key, value) pairs; values are NOT copied (scan path)."""
        for key in self.keys():
            value, __ = self._lookup(key)
            yield key, value

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate power loss: staged writes vanish, durable data stays.

        The pool remains usable afterwards (it represents the same
        physical DIMMs after a restart); only the volatile staging layer
        is wiped. Space accounting is recomputed from durable contents.
        """
        self._staged.clear()
        self._used_bytes = sum(size for __, size in self._durable.values())

    def close(self) -> None:
        """Cleanly close the pool (drains staged writes first)."""
        if not self._closed:
            self.drain()
            self._closed = True

    def reopen(self) -> None:
        """Reopen a cleanly closed pool."""
        self._closed = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated (staged + durable)."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    def durable_keys(self) -> list[object]:
        """Keys whose current value would survive a crash right now."""
        return [key for key in self._durable if key not in self._staged]

    def __len__(self) -> int:
        return len(set(self._staged) | set(self._durable))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise PoolClosedError("pool is closed")

    @staticmethod
    def _payload_size(value: np.ndarray | None, nbytes: int | None) -> int:
        if value is not None:
            return int(value.nbytes)
        if nbytes is None:
            raise PMemError("metadata-only write requires explicit nbytes")
        if nbytes < 0:
            raise PMemError(f"negative payload size {nbytes}")
        return nbytes

    def _current_size(self, key: object) -> int:
        if key in self._staged:
            return self._staged[key][1]
        if key in self._durable:
            return self._durable[key][1]
        return 0

    def _lookup(self, key: object) -> tuple[np.ndarray | None, int]:
        if key in self._staged:
            return self._staged[key]
        if key in self._durable:
            return self._durable[key]
        raise KeyError(key)
