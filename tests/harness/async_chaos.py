"""Hostile-worker chaos soak for first-class asynchronous training.

Where :mod:`tests.harness.chaos` kills *PS nodes* mid-run, this harness
keeps every node healthy and makes the *workers* hostile: a seeded
:func:`~repro.failure.injection.hostile_fleet` of Byzantine gradient
pushers, stragglers, duplicators and delayers drives the asynchronous
trainer against a PS configured with bounded-staleness admission and a
robust :class:`~repro.core.aggregators.AggregationBuffer`.

The soak's verdict is statistical rather than bitwise (Byzantine
defense changes the trained weights by design): held-out AUC / log-loss
from :mod:`repro.dlrm.metrics` must sit inside a pinned envelope of the
synchronous fault-free baseline when the defense is on (trimmed-mean or
coordinate-median, honest majority with ``n >= 3f + 2``), and must
visibly degrade when the defense is off (plain mean) under the *same*
seeded injection — the ablation that shows the defense earns its keep.

One builder serves every test so the model size, learning rates, data
skew and evaluation slice stay comparable across sync baseline, honest
async, and hostile async runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSSGD
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.async_trainer import AsynchronousTrainer, AsyncRunStats
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.embedding import PSEmbedding
from repro.dlrm.metrics import evaluate_model
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.failure.injection import WorkerFaultProfile

FIELDS = 5
DIM = 8
#: Small vocabulary + the dataset's exponential-rank skew concentrate
#: gradient mass on hot keys, so most folded keys have several
#: contributors and the per-key robust statistics have rows to work on.
VOCAB = 40
BATCH = 16
SEED = 11
DATA_SEED = 2
LR = 0.05
#: Held-out evaluation slice (far past any training batch id).
EVAL_BATCHES = 8
EVAL_BATCH_SIZE = 64


def build_dataset(seed: int = DATA_SEED) -> CriteoSynthetic:
    return CriteoSynthetic(num_fields=FIELDS, vocab_per_field=VOCAB, seed=seed)


def build_server(
    *,
    num_nodes: int = 2,
    seed: int = SEED,
    staleness_bound: int | None = None,
    aggregator: str = "none",
    workers: int = 0,
    f: int | None = None,
) -> OpenEmbeddingServer:
    return OpenEmbeddingServer(
        ServerConfig(
            num_nodes=num_nodes,
            embedding_dim=DIM,
            pmem_capacity_bytes=1 << 26,
            seed=seed,
            staleness_bound=staleness_bound,
            aggregator=aggregator,
            aggregator_workers=workers if aggregator != "none" else 0,
            aggregator_f=f,
        ),
        CacheConfig(capacity_bytes=64 << 10),
        PSSGD(lr=LR),
    )


def build_model(seed: int = SEED) -> DeepFM:
    return DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed)


@dataclass
class ChaosRun:
    """One finished run plus its held-out evaluation."""

    trainer: AsynchronousTrainer
    server: OpenEmbeddingServer
    model: DeepFM
    metrics: dict[str, float]
    stats: AsyncRunStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = self.trainer.stats


def evaluate(server, model, dataset) -> dict[str, float]:
    """Held-out AUC / log-loss / calibration through the PS, as serving
    would read it."""
    return evaluate_model(
        model,
        PSEmbedding(server, DIM),
        dataset,
        batches=EVAL_BATCHES,
        batch_size=EVAL_BATCH_SIZE,
    )


def run_async(
    *,
    steps: int,
    workers: int,
    staleness: int = 1,
    staleness_bound: int | None = None,
    aggregator: str = "none",
    f: int | None = None,
    fleet: dict[int, WorkerFaultProfile] | None = None,
    seed: int = SEED,
    dataset: CriteoSynthetic | None = None,
    registry=None,
    tracer=None,
) -> ChaosRun:
    """Run one asynchronous soak and evaluate it held-out.

    The server carries the PS-side defenses (``staleness_bound``,
    ``aggregator``); the trainer carries the worker-side injection
    (``fleet``). Leaving both off reproduces the plain async trainer.
    """
    dataset = dataset or build_dataset()
    server = build_server(
        staleness_bound=staleness_bound,
        aggregator=aggregator,
        workers=workers,
        f=f,
        seed=seed,
    )
    model = build_model(seed)
    trainer = AsynchronousTrainer(
        server,
        model,
        dataset,
        num_workers=workers,
        batch_size=BATCH,
        staleness=staleness,
        dense_optimizer=Adam(1e-2),
        worker_faults=fleet,
        track_progress=(
            True
            if (fleet or staleness_bound is not None or aggregator != "none")
            else None
        ),
        registry=registry,
        tracer=tracer,
    )
    trainer.run_steps(steps)
    trainer.checkpoint(quiesce=True)
    return ChaosRun(trainer, server, model, evaluate(server, model, dataset))


def run_sync_baseline(
    *, batches: int, seed: int = SEED, dataset: CriteoSynthetic | None = None
) -> dict[str, float]:
    """Fault-free synchronous baseline the envelope is pinned against.

    Uses one worker so the trained data volume equals an async run of
    ``steps == batches`` (the async scheduler trains one batch per
    step).
    """
    dataset = dataset or build_dataset()
    server = build_server(seed=seed)
    model = build_model(seed)
    trainer = SynchronousTrainer(
        server,
        model,
        dataset,
        num_workers=1,
        batch_size=BATCH,
        dense_optimizer=Adam(1e-2),
    )
    trainer.train(batches)
    return evaluate(server, model, dataset)
