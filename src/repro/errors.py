"""Exception hierarchy for the OpenEmbedding reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class PMemError(ReproError):
    """Base class for persistent-memory substrate errors."""


class OutOfSpaceError(PMemError):
    """The persistent pool has no room for a requested allocation."""


class PoolClosedError(PMemError):
    """An operation was attempted on a closed or crashed pool."""


class TornWriteError(PMemError):
    """A crash left a torn (partially persisted) object behind.

    Recovery code treats torn objects as absent; tests use this error to
    assert the pool detected the tear.
    """


class ServerError(ReproError):
    """Base class for parameter-server errors."""


class KeyNotFoundError(ServerError, KeyError):
    """A pull referenced a key that does not exist and auto-create is off."""


class ShardRoutingError(ServerError):
    """A request was routed to a node that does not own the key."""


class CheckpointError(ServerError):
    """Checkpointing failed or was invoked in an invalid state."""


class RecoveryError(ServerError):
    """Recovery from persistent state failed."""


class StalenessError(ServerError):
    """A pull was rejected by the bounded-staleness admission check.

    The calling worker's progress has fallen more than the configured
    bound ``k`` behind the slowest *other* admitted worker, so weights
    served now would produce a gradient too stale to fold safely. The
    worker should fast-forward (abandon its stale cursor, re-sync its
    progress) and retry; the error is not retryable as-is because
    resending the identical request carries the identical stale
    progress.

    Attributes:
        worker_id: the rejected worker (``None`` when reconstructed
            from a wire frame without structured fields).
        lag: how many batches behind the admitted frontier the caller
            was at rejection time.
        bound: the configured staleness bound ``k``.
    """

    def __init__(
        self,
        message: str = "pull rejected: worker too far behind the admitted frontier",
        *,
        worker_id: int | None = None,
        lag: int | None = None,
        bound: int | None = None,
    ):
        super().__init__(message)
        self.worker_id = worker_id
        self.lag = lag
        self.bound = bound


class CrashError(ReproError):
    """Raised by failure injection when a simulated crash fires.

    The trainer catches this to emulate a process death; everything not
    durably persisted at raise time is discarded by the substrate.
    """

    def __init__(self, message: str = "injected crash", *, batch_id: int | None = None):
        super().__init__(message)
        self.batch_id = batch_id


class RpcError(ReproError):
    """Base class for RPC transport errors on the simulated wire."""


class NodeDeadError(RpcError):
    """The target PS node has been declared dead by failure detection.

    Distinct from :class:`RpcTimeoutError` on purpose: a timeout means
    "the wire may have eaten the message, retry the same endpoint",
    while this error means "the node's lease expired (or its primary
    replica crashed) — stop retrying, reroute to the promoted backup".
    Clients catching it should consult the
    :class:`~repro.core.failover.FailoverManager` and re-issue the call
    with the *same* ``(worker_id, seq)`` so the dedup window keeps the
    retried push exactly-once across the promotion.

    Attributes:
        node_id: the shard whose primary is dead (``None`` if unknown).
        attempts: RPC attempts made before the declaration, when the
            error was raised by a channel rather than the detector.
    """

    def __init__(
        self,
        message: str = "ps node declared dead",
        *,
        node_id: int | None = None,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.node_id = node_id
        self.attempts = attempts


class FailoverError(ServerError):
    """Promotion is impossible (e.g. a double fault killed the backup
    too); callers must fall back to checkpoint recovery."""

    def __init__(self, message: str = "failover impossible", *, node_id: int | None = None):
        super().__init__(message)
        self.node_id = node_id


class RpcTimeoutError(RpcError):
    """A call's retry budget was exhausted without a successful reply.

    Attributes:
        attempts: how many attempts were made before giving up.
        spent_seconds: simulated time charged to the call (wire time,
            loss timeouts and backoff) before it was abandoned.
    """

    def __init__(
        self,
        message: str = "rpc call timed out",
        *,
        attempts: int = 0,
        spent_seconds: float = 0.0,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.spent_seconds = spent_seconds


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ClockError(SimulationError):
    """Simulated time was advanced backwards or misused."""
