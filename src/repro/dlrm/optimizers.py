"""Optimizers for the dense (MLP) part of the model.

The sparse embeddings are updated on the parameter server with
:mod:`repro.core.optimizers`; the dense part lives on the (simulated)
GPU workers and uses these. Both SGD and Adam carry explicit state so
the dense checkpoint can capture and restore them exactly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigError


class DenseOptimizer(abc.ABC):
    """Updates a list of parameter arrays in place from their grads."""

    @abc.abstractmethod
    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update step."""

    @abc.abstractmethod
    def state(self) -> dict:
        """Checkpointable optimizer state (deep copies)."""

    @abc.abstractmethod
    def load_state(self, state: dict) -> None:
        """Restore from :meth:`state` output."""


class DenseSGD(DenseOptimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, lr: float = 0.05, momentum: float = 0.0):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if not 0 <= momentum < 1:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ConfigError("params/grads length mismatch")
        if self.momentum == 0:
            for param, grad in zip(params, grads):
                param -= self.lr * grad
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for param, grad, vel in zip(params, grads, self._velocity):
            vel *= self.momentum
            vel += grad
            param -= self.lr * vel

    def state(self) -> dict:
        return {
            "velocity": None
            if self._velocity is None
            else [np.array(v, copy=True) for v in self._velocity]
        }

    def load_state(self, state: dict) -> None:
        velocity = state.get("velocity")
        self._velocity = (
            None if velocity is None else [np.array(v, copy=True) for v in velocity]
        )


class Adam(DenseOptimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ConfigError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ConfigError("params/grads length mismatch")
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            param -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state(self) -> dict:
        return {
            "t": self._t,
            "m": None if self._m is None else [np.array(x, copy=True) for x in self._m],
            "v": None if self._v is None else [np.array(x, copy=True) for x in self._v],
        }

    def load_state(self, state: dict) -> None:
        self._t = state["t"]
        self._m = (
            None if state["m"] is None else [np.array(x, copy=True) for x in state["m"]]
        )
        self._v = (
            None if state["v"] is None else [np.array(x, copy=True) for x in state["v"]]
        )
