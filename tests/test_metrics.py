"""Metrics, cache stats and the Figure 2 request trace."""

import pytest

from repro.simulation.metrics import CacheStats, Counter, Metrics, RequestTrace


class TestCounter:
    def test_add_and_reset(self):
        counter = Counter("pulls")
        counter.add()
        counter.add(5)
        assert counter.value == 6
        counter.reset()
        assert counter.value == 0


class TestCacheStats:
    def test_miss_rate(self):
        stats = CacheStats(hits=75, misses=25)
        assert stats.miss_rate == pytest.approx(0.25)
        assert stats.accesses == 100

    def test_miss_rate_no_accesses(self):
        assert CacheStats().miss_rate == 0.0

    def test_reset(self):
        stats = CacheStats(hits=1, misses=2, evictions=3, flushes=4, loads=5)
        stats.reset()
        assert stats.accesses == 0
        assert stats.evictions == 0


class TestRequestTrace:
    def test_default_is_disabled(self):
        """The constructor default matches the docstring: off by default."""
        trace = RequestTrace()
        assert not trace.enabled
        trace.record(0.001, RequestTrace.PULL, 10)
        assert trace.events == []

    def test_disabled_trace_records_nothing(self):
        trace = RequestTrace(enabled=False)
        trace.record(0.001, RequestTrace.PULL, 10)
        assert trace.events == []

    def test_per_millisecond_bucketing(self):
        trace = RequestTrace(enabled=True)
        trace.record(0.0001, RequestTrace.PULL, 5)
        trace.record(0.0009, RequestTrace.PULL, 3)
        trace.record(0.0021, RequestTrace.UPDATE, 7)
        buckets = trace.per_millisecond()
        assert buckets[0] == 8
        assert buckets[2] == 7

    def test_per_millisecond_filter_by_op(self):
        trace = RequestTrace(enabled=True)
        trace.record(0.0, RequestTrace.PULL, 5)
        trace.record(0.0, RequestTrace.UPDATE, 3)
        assert trace.per_millisecond(RequestTrace.PULL) == {0: 5}

    def test_pairs_property(self):
        """Pull and update totals must match — the 'in pairs' pattern."""
        trace = RequestTrace(enabled=True)
        for batch in range(4):
            trace.record(batch * 0.01, RequestTrace.PULL, 100)
            trace.record(batch * 0.01 + 0.005, RequestTrace.UPDATE, 100)
        totals = trace.totals()
        assert totals[RequestTrace.PULL] == totals[RequestTrace.UPDATE] == 400

    def test_clear(self):
        trace = RequestTrace(enabled=True)
        trace.record(0.0, RequestTrace.PULL)
        trace.clear()
        assert trace.events == []


class TestMetrics:
    def test_reset_cascades(self):
        metrics = Metrics()
        metrics.pulls = 10
        metrics.cache.hits = 5
        metrics.reset()
        assert metrics.pulls == 0
        assert metrics.cache.hits == 0
