"""DeepFM (Guo et al. 2017) on numpy — the paper's training algorithm.

DeepFM combines, over the field embeddings ``v_f`` of one sample:

* an **FM second-order term** ``0.5 * sum_d[(sum_f v_fd)^2 - sum_f v_fd^2]``
  capturing pairwise feature interactions,
* a **first-order term** from scalar per-key weights (implemented as a
  parallel dim-1 embedding namespace on the same PS), and
* a **deep term**: the concatenated embeddings through an MLP.

``logit = fm1 + fm2 + deep``; training minimises BCE-with-logits.

The class is *stateless with respect to the embeddings*: each batch's
embeddings come in as a tensor and the gradients flow back out, so the
same model runs against any PS backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlrm.layers import MLP, binary_cross_entropy, stable_sigmoid
from repro.errors import ConfigError


@dataclass(frozen=True)
class DeepFMGradients:
    """Backward-pass outputs of one batch."""

    loss: float
    #: gradient wrt each field embedding, shape (batch, fields, dim)
    embedding_grads: np.ndarray
    #: gradient wrt each first-order weight, shape (batch, fields, 1)
    first_order_grads: np.ndarray | None


class DeepFM:
    """The dense side of DeepFM: FM interactions + MLP over embeddings.

    Args:
        num_fields: categorical fields per sample.
        dim: embedding dimension.
        hidden: MLP hidden layer sizes.
        use_first_order: include the scalar first-order FM term (needs a
            dim-1 embedding pull alongside the main one).
        seed: dense-parameter init seed.
    """

    def __init__(
        self,
        num_fields: int,
        dim: int,
        hidden: tuple[int, ...] = (64, 32),
        use_first_order: bool = True,
        seed: int = 0,
    ):
        if num_fields <= 0 or dim <= 0:
            raise ConfigError("num_fields and dim must be positive")
        self.num_fields = num_fields
        self.dim = dim
        self.use_first_order = use_first_order
        rng = np.random.default_rng((seed, 0xDEEF))
        self.mlp = MLP([num_fields * dim, *hidden, 1], rng=rng)
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------

    def forward(
        self,
        embeddings: np.ndarray,
        first_order: np.ndarray | None = None,
    ) -> np.ndarray:
        """Compute logits for a batch.

        Args:
            embeddings: (batch, fields, dim) field embeddings.
            first_order: (batch, fields, 1) scalar weights, required iff
                ``use_first_order``.

        Returns:
            (batch,) float logits.
        """
        batch, fields, dim = self._check_shape(embeddings)
        if self.use_first_order:
            if first_order is None:
                raise ConfigError("model uses first-order term; pass first_order")
            if first_order.shape != (batch, fields, 1):
                raise ConfigError(
                    f"first_order shape {first_order.shape}, want {(batch, fields, 1)}"
                )
        sum_v = embeddings.sum(axis=1)  # (B, D)
        sum_sq = (embeddings**2).sum(axis=1)  # (B, D)
        fm2 = 0.5 * (sum_v**2 - sum_sq).sum(axis=1)  # (B,)
        deep_in = embeddings.reshape(batch, fields * dim)
        deep = self.mlp.forward(deep_in).reshape(-1)  # (B,)
        logits = fm2 + deep
        if self.use_first_order:
            logits = logits + first_order.sum(axis=(1, 2))
        self._cache = {"embeddings": embeddings, "sum_v": sum_v, "batch": batch}
        return logits.astype(np.float32)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backprop from logit grads; returns embedding grads (B, F, D).

        Also accumulates MLP parameter gradients (consume via
        ``mlp.gradients()`` then :meth:`zero_grad`).
        """
        if self._cache is None:
            raise ConfigError("backward called before forward")
        embeddings = self._cache["embeddings"]
        sum_v = self._cache["sum_v"]
        batch = self._cache["batch"]
        grad_logits = grad_logits.reshape(batch, 1, 1)
        # FM second-order: d/dv_fd = sum_f' v_f'd - v_fd
        fm_grad = grad_logits * (sum_v[:, None, :] - embeddings)
        deep_grad_flat = self.mlp.backward(
            grad_logits.reshape(batch, 1).astype(np.float32)
        )
        deep_grad = deep_grad_flat.reshape(batch, self.num_fields, self.dim)
        return (fm_grad + deep_grad).astype(np.float32)

    def train_batch(
        self,
        embeddings: np.ndarray,
        labels: np.ndarray,
        first_order: np.ndarray | None = None,
    ) -> DeepFMGradients:
        """One forward+backward pass; does NOT update any parameters.

        Returns the loss and the gradients the caller routes: embedding
        grads to the PS, MLP grads to the dense optimizer.
        """
        logits = self.forward(embeddings, first_order)
        loss, grad_logits = binary_cross_entropy(logits, labels)
        embedding_grads = self.backward(grad_logits)
        first_grads = None
        if self.use_first_order:
            batch = embeddings.shape[0]
            first_grads = np.broadcast_to(
                grad_logits.reshape(batch, 1, 1), (batch, self.num_fields, 1)
            ).astype(np.float32)
        return DeepFMGradients(
            loss=loss, embedding_grads=embedding_grads, first_order_grads=first_grads
        )

    def predict_proba(
        self, embeddings: np.ndarray, first_order: np.ndarray | None = None
    ) -> np.ndarray:
        """Click probabilities for a batch."""
        logits = self.forward(embeddings, first_order)
        return stable_sigmoid(logits)

    def zero_grad(self) -> None:
        self.mlp.zero_grad()

    # ------------------------------------------------------------------
    # dense checkpointing
    # ------------------------------------------------------------------

    def dense_state(self) -> list[np.ndarray]:
        """Copies of the MLP parameters (the 'dense features' of
        Table IV, checkpointed via the framework's own mechanism)."""
        return self.mlp.state()

    def load_dense_state(self, state: list[np.ndarray]) -> None:
        self.mlp.load_state(state)

    @property
    def dense_parameter_count(self) -> int:
        return self.mlp.num_parameters

    def _check_shape(self, embeddings: np.ndarray) -> tuple[int, int, int]:
        if embeddings.ndim != 3:
            raise ConfigError(f"embeddings must be 3-D, got {embeddings.shape}")
        batch, fields, dim = embeddings.shape
        if fields != self.num_fields or dim != self.dim:
            raise ConfigError(
                f"embeddings shape {embeddings.shape}, want "
                f"(B, {self.num_fields}, {self.dim})"
            )
        return batch, fields, dim
