"""Ablation: gradient staleness — why the paper trains synchronously.

Section II: the paper chooses synchronous training because prior work
reports *"synchronous training yields faster convergence with higher
accuracy than asynchronous training"*. The mechanism is gradient
staleness: an asynchronous worker applies gradients computed against
weights other workers have since updated.

This bench isolates exactly that variable: the same DeepFM consumes the
same 240 worker-batches at the same learning rate; only the staleness
(scheduler steps between computing and applying a gradient) changes.
Staleness 0 is equivalent to fully synchronous sequential SGD.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.async_trainer import AsynchronousTrainer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam

FIELDS, DIM, BATCH, STEPS = 8, 16, 32, 240
STALENESS_LEVELS = (0, 4, 12, 24)


def _run(staleness: int, steps: int = STEPS) -> list[float]:
    server = OpenEmbeddingServer(
        ServerConfig(
            num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 28, seed=3
        ),
        CacheConfig(capacity_bytes=256 << 10),
        PSAdagrad(lr=0.08),
    )
    model = DeepFM(FIELDS, DIM, hidden=(32,), use_first_order=False, seed=3)
    trainer = AsynchronousTrainer(
        server,
        model,
        CriteoSynthetic(num_fields=FIELDS, vocab_per_field=300, seed=6),
        num_workers=4,
        batch_size=BATCH,
        staleness=staleness,
        dense_optimizer=Adam(3e-3),
    )
    return trainer.run_steps(steps)


def test_ablation_gradient_staleness(benchmark, report):
    results = run_once(
        benchmark, lambda: {s: _run(s) for s in STALENESS_LEVELS}
    )
    report.title(
        "ablation_sync_async",
        "Ablation: convergence vs gradient staleness (240 batches, same lr)",
    )
    window = STEPS // 5
    finals = {}
    for staleness, losses in results.items():
        finals[staleness] = float(np.mean(losses[-window:]))
        label = "synchronous" if staleness == 0 else f"async, staleness {staleness}"
        report.row(
            label,
            "fresher is better (paper Sec. II)",
            f"final loss {finals[staleness]:.4f}",
        )

    ordered = [finals[s] for s in STALENESS_LEVELS]
    # Synchronous (staleness 0) converges best; degradation is monotone
    # in staleness — the effect the paper's design choice avoids.
    assert ordered == sorted(ordered)
    assert finals[STALENESS_LEVELS[-1]] > finals[0] + 0.01


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    if metrics["degradation"] < 0:
        return ["stale gradients converged better than synchronous SGD"]
    return []


@register(
    "ablation_sync_async",
    params=[
        Param("staleness", "int", 24, help="scheduler steps of staleness"),
        Param("steps", "int", STEPS),
    ],
    smoke={"steps": 80},
    headline={
        "degradation": Headline(direction="higher", max_regression=0.25),
        "final_loss_sync": Headline(direction="lower", max_regression=0.10),
    },
    check=_check,
)
def entry(*, staleness, steps):
    """Final-loss gap between synchronous SGD and one asynchronous
    staleness level on the same batch stream."""
    window = max(steps // 5, 4)
    sync_losses = _run(0, steps)
    stale_losses = _run(staleness, steps)
    final_sync = float(np.mean(sync_losses[-window:]))
    final_stale = float(np.mean(stale_losses[-window:]))
    return {
        "final_loss_sync": final_sync,
        "final_loss_stale": final_stale,
        "degradation": final_stale - final_sync,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_sync_async"))
