"""Transactions over the pool: all-or-nothing across a crash."""

import numpy as np
import pytest

from repro.errors import PMemError
from repro.pmem.persistence import Transaction, flush_entries
from repro.pmem.pool import PmemPool


@pytest.fixture
def pool():
    return PmemPool(1 << 16)


def arr(v):
    return np.array([v], dtype=np.float32)


class TestTransaction:
    def test_commit_makes_all_durable(self, pool):
        with Transaction(pool) as tx:
            tx.write("a", arr(1))
            tx.write("b", arr(2))
        pool.crash()
        assert pool.read("a")[0] == 1
        assert pool.read("b")[0] == 2

    def test_crash_before_commit_loses_all(self, pool):
        tx = Transaction(pool)
        tx.write("a", arr(1))
        tx.write("b", arr(2))
        pool.crash()  # no commit
        assert "a" not in pool
        assert "b" not in pool

    def test_exception_skips_commit(self, pool):
        with pytest.raises(RuntimeError):
            with Transaction(pool) as tx:
                tx.write("a", arr(1))
                raise RuntimeError("boom")
        pool.crash()
        assert "a" not in pool

    def test_commit_marker(self, pool):
        with Transaction(pool, commit_marker="done") as tx:
            tx.write("a", arr(1))
        assert pool.root.get("done") == 1

    def test_double_commit_rejected(self, pool):
        tx = Transaction(pool)
        tx.write("a", arr(1))
        assert tx.commit() == 1
        with pytest.raises(PMemError):
            tx.commit()

    def test_write_after_commit_rejected(self, pool):
        tx = Transaction(pool)
        tx.commit()
        with pytest.raises(PMemError):
            tx.write("a", arr(1))

    def test_partial_overwrite_keeps_previous_on_crash(self, pool):
        """An interrupted re-dump must leave the previous values intact."""
        with Transaction(pool) as tx:
            tx.write("a", arr(1))
        tx2 = Transaction(pool)
        tx2.write("a", arr(99))
        pool.crash()  # second dump never committed
        assert pool.read("a")[0] == 1


class TestFlushEntries:
    def test_writes_everything_durably(self, pool):
        elapsed = flush_entries(
            pool, {"a": arr(1), "b": None}, entry_bytes=4
        )
        assert elapsed > 0
        pool.crash()
        assert pool.read("a")[0] == 1
        assert pool.read("b") is None
