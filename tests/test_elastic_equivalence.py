"""Differential equivalence: mid-run resharding changes nothing but bits
of placement.

Training with a live scale-out (or scale-in) in the middle of the run
must produce **bit-identical** final weights, dense parameters and
per-step losses to a run on a static ring over the same schedule — the
migration may move entries between shards but may never touch their
values, versions or optimizer state. Extends the backend-sweep pattern
of ``tests/test_prefetch_equivalence.py`` to the elastic layer: local
and remote backends, the latter also over a fault-injected wire.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CacheConfig,
    NetworkFaultConfig,
    RetryConfig,
    ServerConfig,
)
from repro.core.migration import ShardMigrator
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.errors import ServerError
from repro.network.frontend import RemotePSClient

FIELDS, DIM = 6, 8
BATCHES = 10
RESHARD_AFTER = 5

FAULTS = NetworkFaultConfig(
    drop_rate=0.05, duplicate_rate=0.03, corrupt_rate=0.02, seed=5
)
RETRY = RetryConfig(
    max_attempts=12, attempt_timeout_s=0.05, call_timeout_s=30.0, seed=5
)


def _configs(seed, nodes):
    server = ServerConfig(
        num_nodes=nodes,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        partitioner="ring",
        ring_vnodes=32,
        seed=seed,
    )
    cache = CacheConfig(capacity_bytes=48 * DIM * 4 * 2)
    return server, cache


def _backend(kind, seed, nodes):
    server_config, cache_config = _configs(seed, nodes)
    if kind == "local":
        return OpenEmbeddingServer(server_config, cache_config, PSAdagrad(lr=0.05))
    if kind == "remote":
        return RemotePSClient(server_config, cache_config, PSAdagrad(lr=0.05))
    if kind == "remote_faulty":
        return RemotePSClient(
            server_config,
            cache_config,
            PSAdagrad(lr=0.05),
            faults=FAULTS,
            retry=RETRY,
        )
    raise AssertionError(kind)


def _reshard(backend, direction):
    """Scale the live backend by one node through its own transport."""
    if isinstance(backend, RemotePSClient):
        return (
            backend.scale_out() if direction == "scale_out" else backend.scale_in()
        )
    migrator = ShardMigrator(backend)
    return migrator.scale_out() if direction == "scale_out" else migrator.scale_in()


def _train(kind, seed, nodes, direction=None):
    """One full run; ``direction`` reshards after ``RESHARD_AFTER``."""
    backend = _backend(kind, seed, nodes)
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed)
    dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=150, seed=seed)
    trainer = SynchronousTrainer(
        backend,
        model,
        dataset,
        num_workers=2,
        batch_size=12,
        dense_optimizer=Adam(1e-2),
        checkpoint_every=4,
    )
    losses = [r.loss for r in trainer.train(RESHARD_AFTER)]
    report = None
    if direction is not None:
        report = _reshard(backend, direction)
    losses += [r.loss for r in trainer.train(BATCHES - RESHARD_AFTER)]
    return backend, model, losses, report


def _assert_identical(reference, candidate):
    ref_backend, ref_model, ref_losses = reference[:3]
    cand_backend, cand_model, cand_losses = candidate[:3]
    ref_state = ref_backend.state_snapshot()
    cand_state = cand_backend.state_snapshot()
    assert set(ref_state) == set(cand_state)
    for key in ref_state:
        np.testing.assert_array_equal(ref_state[key], cand_state[key])
    for a, b in zip(ref_model.dense_state(), cand_model.dense_state()):
        np.testing.assert_array_equal(a, b)
    assert ref_losses == cand_losses


class TestElasticEquivalence:
    @pytest.mark.parametrize("seed", [1, 9])
    def test_local_scale_out_matches_static_ring(self, seed):
        reference = _train("local", seed, nodes=2)
        candidate = _train("local", seed, nodes=2, direction="scale_out")
        _assert_identical(reference, candidate)
        assert candidate[0].server_config.num_nodes == 3
        assert candidate[3].keys_moved > 0

    def test_local_scale_in_matches_static_ring(self):
        reference = _train("local", 3, nodes=3)
        candidate = _train("local", 3, nodes=3, direction="scale_in")
        _assert_identical(reference, candidate)
        assert candidate[0].server_config.num_nodes == 2

    def test_resharded_matches_static_at_target_size(self):
        """The candidate also matches a static ring at the TARGET node
        count — weights are placement-independent end to end."""
        reference = _train("local", 7, nodes=3)
        candidate = _train("local", 7, nodes=2, direction="scale_out")
        _assert_identical(reference, candidate)

    def test_remote_scale_out_matches_local_static(self):
        reference = _train("local", 4, nodes=2)
        candidate = _train("remote", 4, nodes=2, direction="scale_out")
        _assert_identical(reference, candidate)

    def test_remote_faulty_scale_out_matches_local_static(self):
        """Entries migrating over a lossy wire (drops, dups, corruption)
        with retries + dedup still land the identical model."""
        reference = _train("local", 6, nodes=2)
        candidate = _train("remote_faulty", 6, nodes=2, direction="scale_out")
        _assert_identical(reference, candidate)
        stats = candidate[0].reliability()
        assert stats.faults_injected > 0  # the wire actually misbehaved

    def test_remote_faulty_scale_in_matches_local_static(self):
        reference = _train("local", 8, nodes=3)
        candidate = _train("remote_faulty", 8, nodes=3, direction="scale_in")
        _assert_identical(reference, candidate)
        assert candidate[0].server_config.num_nodes == 2

    def test_reshard_moves_minimal_fraction(self):
        """The migration report's moved fraction stays near 1/(n+1) —
        the minimal-movement guarantee observed on real resident keys,
        not a sampled keyspace."""
        __, __, __, report = _train("local", 2, nodes=3, direction="scale_out")
        assert report is not None
        assert 0 < report.moved_fraction <= 2 * (1 / 4)

    def test_modulo_partitioner_refuses_live_migration(self):
        server_config, cache_config = _configs(1, 2)
        import dataclasses

        modulo = OpenEmbeddingServer(
            dataclasses.replace(server_config, partitioner="modulo"),
            cache_config,
            PSAdagrad(lr=0.05),
        )
        with pytest.raises(ServerError, match="consistent-hash ring"):
            ShardMigrator(modulo).scale_out()
