"""Scratch calibration harness: tune Calibration constants so the
simulated figure shapes match the paper. Not part of the library."""

import time

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    ClusterConfig,
    ServerConfig,
    WorkloadConfig,
)
from repro.simulation.calibration import Calibration
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload import WorkloadGenerator

from repro.simulation.profiles import DEFAULT_PROFILE as P
NUM_KEYS = P.num_keys
server = P.server_config()
MODEL_BYTES = P.model_bytes
cache = P.cache_config(2048)
BATCH = P.batch_size
TOTAL_WORKER_ITERS = P.epoch_worker_iterations


def epoch(system, workers, cal, cache_cfg=cache, ckpt=None, skew=1.0, use_cache=True,
          pipelined=True):
    wcfg = P.workload_config(skew)
    cc = cache_cfg
    if not pipelined:
        cc = CacheConfig(capacity_bytes=cache_cfg.capacity_bytes, pipelined=False)
    cl = P.cluster_config(workers)
    sim = TrainingSimulator(
        system, cl, server, cc, ckpt or CheckpointConfig.none(),
        WorkloadGenerator(wcfg), cal, use_cache=use_cache,
    )
    return sim.run(TOTAL_WORKER_ITERS // workers)


def fig7(cal):
    print("== Fig 7 (no ckpt) ratios to DRAM-PS; targets OE 1.01/1.04/1.09, "
          "Ori 1.24/1.56/2.27 | Fig3 PH 2.16/2.85/4.17")
    for w in (4, 8, 16):
        d = epoch(SystemKind.DRAM_PS, w, cal)
        oe = epoch(SystemKind.PMEM_OE, w, cal)
        ori = epoch(SystemKind.ORI_CACHE, w, cal)
        ph = epoch(SystemKind.PMEM_HASH, w, cal)
        print(f"  {w:2d} GPUs dram={d.sim_seconds:7.3f}s OE={oe.sim_seconds/d.sim_seconds:5.3f} "
              f"Ori={ori.sim_seconds/d.sim_seconds:5.3f} PH={ph.sim_seconds/d.sim_seconds:5.3f} "
              f"missOE={oe.miss_rate:.3f}")


def fig8(cal):
    print("== Fig 8 cache sweep @16 GPUs (norm to 10MB); paper: 1.0/.856/.82/.751/.678/.618/~.612")
    base = None
    for mb in (10, 20, 40, 100, 400, 2048, 20480):
        frac = mb / (500 * 1024)  # of a 500 GB model
        cc = CacheConfig(capacity_bytes=P.cache_bytes_for_paper_mb(mb))
        r = epoch(SystemKind.PMEM_OE, 16, cal, cache_cfg=cc)
        if base is None:
            base = r.sim_seconds
        print(f"  {mb:6d}MB-eq ratio={r.sim_seconds/base:.3f} miss={r.miss_rate:.3f}")


def fig9(cal):
    print("== Fig 9 ablation @16 GPUs (norm to no-cache,no-pipe); paper cache-only .579, both .261")
    none_ = epoch(SystemKind.PMEM_OE, 16, cal, use_cache=False, pipelined=False)
    cache_only = epoch(SystemKind.PMEM_OE, 16, cal, use_cache=True, pipelined=False)
    pipe_only = epoch(SystemKind.PMEM_OE, 16, cal, use_cache=False, pipelined=True)
    both = epoch(SystemKind.PMEM_OE, 16, cal, use_cache=True, pipelined=True)
    b = none_.sim_seconds
    print(f"  none=1.0 cache={cache_only.sim_seconds/b:.3f} pipe={pipe_only.sim_seconds/b:.3f} "
          f"both={both.sim_seconds/b:.3f}")


def fig11(cal):
    print("== Fig 11 skew: miss targets 13.63/10.04/17.08; gap OE vs DRAM 9%->7%, Ori +20% at less skew")
    for name, t in (("orig", 1.0), ("more", 1.6), ("less", 0.62)):
        d = epoch(SystemKind.DRAM_PS, 16, cal, skew=t)
        oe = epoch(SystemKind.PMEM_OE, 16, cal, skew=t)
        ori = epoch(SystemKind.ORI_CACHE, 16, cal, skew=t)
        print(f"  {name}: miss={oe.miss_rate:.4f} OE/D={oe.sim_seconds/d.sim_seconds:.3f} "
              f"Ori/D={ori.sim_seconds/d.sim_seconds:.3f}")


if __name__ == "__main__":
    cal = Calibration()
    t0 = time.time()
    fig7(cal)
    fig8(cal)
    fig9(cal)
    fig11(cal)
    print(f"wall {time.time()-t0:.1f}s")


def fig12(cal):
    from repro.config import CheckpointMode
    print("== Fig12/13 ckpt overhead @16GPUs vs no-ckpt; paper OE 2.4/1.2(20min)/0.8/0.6%, "
          "Inc 21.4/19.6/17.6/16.5%, sparse ~0")
    base = epoch(SystemKind.PMEM_OE, 16, cal)
    ep = base.sim_seconds
    for mins in (10, 20, 30, 40):
        interval = TrainingSimulator.interval_for_epoch_fraction(ep, mins, 5.33)
        oe = epoch(SystemKind.PMEM_OE, 16, cal,
                   ckpt=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval))
        sp = epoch(SystemKind.PMEM_OE, 16, cal,
                   ckpt=CheckpointConfig(CheckpointMode.SPARSE_ONLY, interval, include_dense=False))
        inc = epoch(SystemKind.PMEM_OE, 16, cal,
                    ckpt=CheckpointConfig(CheckpointMode.INCREMENTAL, interval))
        print(f"  {mins}min-eq: OE +{(oe.sim_seconds/ep-1)*100:5.2f}%  sparse +{(sp.sim_seconds/ep-1)*100:5.2f}%  "
              f"inc +{(inc.sim_seconds/ep-1)*100:5.2f}%  (ckpts {oe.checkpoints_completed})")


def fig6(cal):
    from repro.config import CheckpointMode
    print("== Fig 6 overall w/ ckpt; targets: OE 7.2/6.4/5.6% faster than DRAM-PS; 23.8/36.9/53.8% vs Ori")
    for w in (4, 8, 16):
        base = epoch(SystemKind.PMEM_OE, w, cal)
        interval = TrainingSimulator.interval_for_epoch_fraction(base.sim_seconds, 20, 5.33)
        oe = epoch(SystemKind.PMEM_OE, w, cal, ckpt=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval))
        d = epoch(SystemKind.DRAM_PS, w, cal, ckpt=CheckpointConfig(CheckpointMode.INCREMENTAL, interval))
        ori = epoch(SystemKind.ORI_CACHE, w, cal, ckpt=CheckpointConfig(CheckpointMode.INCREMENTAL, interval))
        print(f"  {w:2d} GPUs: OE vs DRAM {(1-oe.sim_seconds/d.sim_seconds)*100:5.1f}% faster; "
              f"OE vs Ori {(1-oe.sim_seconds/ori.sim_seconds)*100:5.1f}% faster")


def fig11_temps(cal):
    print("== skew temp sweep for Fig11 (want miss ~0.10 and ~0.17 around orig 0.076... paper 13.6/10.0/17.1)")
    for t in (0.75, 0.8, 0.85, 1.15, 1.25, 1.4):
        r = epoch(SystemKind.PMEM_OE, 16, cal, skew=t)
        print(f"  temp={t}: miss={r.miss_rate:.4f}")
