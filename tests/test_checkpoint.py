"""CheckpointCoordinator and the periodic checkpoint thread."""

import pytest

from repro.core.checkpoint import CheckpointCoordinator, PeriodicCheckpointer
from repro.errors import CheckpointError
from repro.pmem.pool import PmemPool
from repro.pmem.space import VersionedEntryStore


@pytest.fixture
def store():
    return VersionedEntryStore(PmemPool(1 << 16), entry_bytes=16)


@pytest.fixture
def coordinator(store):
    return CheckpointCoordinator(store)


class TestCoordinator:
    def test_initial_state(self, coordinator):
        assert coordinator.last_completed == -1
        assert coordinator.head() is None
        assert not coordinator.has_completed_any

    def test_request_and_head(self, coordinator):
        coordinator.request(5)
        assert coordinator.head() == 5
        assert coordinator.max_pending() == 5

    def test_max_pending_with_queue(self, coordinator):
        coordinator.request(5)
        coordinator.request(9)
        assert coordinator.head() == 5
        assert coordinator.max_pending() == 9

    def test_request_not_newer_than_completed_rejected(self, coordinator):
        coordinator.request(5)
        coordinator.complete_head()
        with pytest.raises(CheckpointError):
            coordinator.request(5)

    def test_complete_head_persists_id(self, coordinator, store):
        coordinator.request(5)
        assert coordinator.complete_head() == 5
        assert coordinator.last_completed == 5
        assert store.checkpointed_batch_id() == 5
        assert coordinator.has_completed_any

    def test_complete_all_pending(self, coordinator):
        coordinator.request(3)
        coordinator.request(7)
        assert coordinator.complete_all_pending() == [3, 7]
        assert coordinator.last_completed == 7

    def test_barriers_follow_requests(self, coordinator, store):
        coordinator.request(5)
        store.put(1, 2, None)
        store.put(1, 9, None)
        assert store.versions_of(1) == [2, 9]  # 2 kept for checkpoint 5

    def test_barriers_include_last_completed(self, coordinator, store):
        coordinator.request(5)
        coordinator.complete_head()
        store.put(1, 4, None)
        store.put(1, 8, None)
        assert store.versions_of(1) == [4, 8]  # 4 recoverable for ckpt 5

    def test_completion_recycles(self, coordinator, store):
        coordinator.request(5)
        store.put(1, 2, None)
        store.put(1, 9, None)
        coordinator.request(12)
        store.put(1, 13, None)
        coordinator.complete_head()  # ckpt 5 done; barrier moves on
        coordinator.complete_head()  # ckpt 12 done -> only <=12 + newest
        assert store.versions_of(1) == [9, 13]

    def test_external_barrier_retains(self, coordinator, store):
        coordinator.request(5)
        coordinator.complete_head()
        coordinator.set_external_barrier(5)
        coordinator.request(10)
        coordinator.complete_head()
        # Own last_completed is 10 but the cluster is only at 5: both
        # barriers hold.
        store.put(1, 4, None)
        store.put(1, 7, None)
        store.put(1, 11, None)
        assert store.versions_of(1) == [4, 7, 11]

    def test_recovered_coordinator_reads_durable_id(self, store):
        store.set_checkpointed_batch_id(7)
        fresh = CheckpointCoordinator(store)
        assert fresh.last_completed == 7


class TestPeriodicCheckpointer:
    def test_fires_on_interval(self, coordinator):
        periodic = PeriodicCheckpointer(coordinator, interval_seconds=10.0)
        assert not periodic.maybe_request(now=5.0, latest_completed_batch=3)
        assert periodic.maybe_request(now=10.0, latest_completed_batch=3)
        assert coordinator.head() == 3

    def test_no_duplicate_request_for_same_batch(self, coordinator):
        periodic = PeriodicCheckpointer(coordinator, interval_seconds=10.0)
        periodic.maybe_request(10.0, 3)
        assert not periodic.maybe_request(20.0, 3)
        assert len(coordinator.queue) == 1

    def test_skips_if_nothing_new_since_completion(self, coordinator):
        periodic = PeriodicCheckpointer(coordinator, interval_seconds=10.0)
        periodic.maybe_request(10.0, 3)
        coordinator.complete_head()
        assert not periodic.maybe_request(20.0, 3)

    def test_multiple_intervals_collapse(self, coordinator):
        periodic = PeriodicCheckpointer(coordinator, interval_seconds=10.0)
        assert periodic.maybe_request(55.0, 8)
        assert periodic.requests_issued == 1
        assert coordinator.queue.pending() == [8]
