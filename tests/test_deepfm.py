"""DeepFM: FM math, gradient checks, dense state."""

import numpy as np
import pytest

from repro.dlrm.deepfm import DeepFM
from repro.dlrm.layers import binary_cross_entropy
from repro.errors import ConfigError

FIELDS, DIM = 3, 4


@pytest.fixture
def model():
    return DeepFM(num_fields=FIELDS, dim=DIM, hidden=(8,), use_first_order=False, seed=1)


def embeddings(batch=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 0.5, (batch, FIELDS, DIM)).astype(np.float32)


class TestForward:
    def test_logit_shape(self, model):
        assert model.forward(embeddings(5)).shape == (5,)

    def test_fm_second_order_value(self):
        """With a zeroed MLP the logit is exactly the FM term."""
        model = DeepFM(FIELDS, DIM, hidden=(4,), use_first_order=False, seed=0)
        for layer in model.mlp.layers:
            layer.weight[...] = 0.0
            layer.bias[...] = 0.0
        emb = embeddings(3, seed=2)
        logits = model.forward(emb)
        sum_v = emb.sum(axis=1)
        expected = 0.5 * ((sum_v**2).sum(axis=1) - (emb**2).sum(axis=(1, 2)))
        assert np.allclose(logits, expected, atol=1e-5)

    def test_first_order_included(self):
        model = DeepFM(FIELDS, DIM, hidden=(4,), use_first_order=True, seed=0)
        emb = embeddings(2)
        first = np.ones((2, FIELDS, 1), dtype=np.float32)
        with_first = model.forward(emb, first)
        without = model.forward(emb, np.zeros((2, FIELDS, 1), dtype=np.float32))
        assert np.allclose(with_first - without, FIELDS, atol=1e-5)

    def test_first_order_required_when_enabled(self):
        model = DeepFM(FIELDS, DIM, use_first_order=True)
        with pytest.raises(ConfigError):
            model.forward(embeddings())

    def test_bad_shape_rejected(self, model):
        with pytest.raises(ConfigError):
            model.forward(np.zeros((2, FIELDS + 1, DIM), dtype=np.float32))


class TestBackward:
    def test_embedding_gradient_matches_numeric(self, model):
        emb = embeddings(2, seed=3)
        labels = np.array([1.0, 0.0], dtype=np.float32)

        def loss():
            logits = model.forward(emb)
            return binary_cross_entropy(logits, labels)[0]

        result = model.train_batch(emb, labels)
        eps = 1e-3
        for idx in [(0, 0, 0), (1, 2, 3), (0, 1, 2)]:
            orig = emb[idx]
            emb[idx] = orig + eps
            up = loss()
            emb[idx] = orig - eps
            down = loss()
            emb[idx] = orig
            numeric = (up - down) / (2 * eps)
            assert result.embedding_grads[idx] == pytest.approx(numeric, abs=2e-3)

    def test_backward_before_forward_rejected(self, model):
        with pytest.raises(ConfigError):
            model.backward(np.zeros(2, dtype=np.float32))

    def test_train_batch_returns_loss(self, model):
        result = model.train_batch(embeddings(4), np.array([0, 1, 0, 1], dtype=np.float32))
        assert np.isfinite(result.loss)
        assert result.embedding_grads.shape == (4, FIELDS, DIM)
        assert result.first_order_grads is None

    def test_first_order_grads_are_logit_grads(self):
        model = DeepFM(FIELDS, DIM, use_first_order=True, seed=0)
        emb = embeddings(2)
        first = np.zeros((2, FIELDS, 1), dtype=np.float32)
        result = model.train_batch(emb, np.array([1.0, 0.0], dtype=np.float32), first)
        assert result.first_order_grads.shape == (2, FIELDS, 1)
        # All fields of one sample share the same scalar grad.
        assert np.allclose(
            result.first_order_grads[0], result.first_order_grads[0, 0, 0]
        )


class TestDenseState:
    def test_roundtrip(self, model):
        state = model.dense_state()
        for param in model.mlp.parameters():
            param += 0.5
        model.load_dense_state(state)
        for param, saved in zip(model.mlp.parameters(), state):
            assert np.array_equal(param, saved)

    def test_dense_parameter_count(self, model):
        assert model.dense_parameter_count == model.mlp.num_parameters

    def test_predict_proba_range(self, model):
        probs = model.predict_proba(embeddings(10))
        assert np.all((probs > 0) & (probs < 1))
