"""SynchronousTrainer: multi-worker training, checkpoint, recovery."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.errors import CheckpointError, ConfigError, RecoveryError

FIELDS, DIM = 6, 8


def build(seed=7, capacity_entries=16, num_nodes=2, checkpoint_every=None):
    dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=100, seed=3)
    server_config = ServerConfig(
        num_nodes=num_nodes,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        seed=seed,
    )
    cache_config = CacheConfig(capacity_bytes=capacity_entries * DIM * 4 * 2)
    ps_optimizer = PSAdagrad(lr=0.05)
    server = OpenEmbeddingServer(server_config, cache_config, ps_optimizer)
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed)
    trainer = SynchronousTrainer(
        server,
        model,
        dataset,
        num_workers=2,
        batch_size=16,
        dense_optimizer=Adam(1e-2),
        checkpoint_every=checkpoint_every,
    )
    return trainer, server_config, cache_config, ps_optimizer, dataset


class TestTraining:
    def test_step_advances_batch(self):
        trainer, *_ = build()
        result = trainer.step()
        assert result.batch_id == 0
        assert trainer.next_batch == 1
        assert np.isfinite(result.loss)

    def test_loss_decreases_over_training(self):
        trainer, *_ = build()
        results = trainer.train(60)
        early = np.mean([r.loss for r in results[:10]])
        late = np.mean([r.loss for r in results[-10:]])
        assert late < early

    def test_worker_count_does_not_change_semantics(self):
        """1 worker with batch 32 == 2 workers with batch 16 (global
        mean loss, summed PS pushes)."""
        dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=100, seed=3)

        def run(workers, batch_size):
            server_config = ServerConfig(
                num_nodes=1, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=7
            )
            server = OpenEmbeddingServer(
                server_config, CacheConfig(capacity_bytes=1 << 20), PSAdagrad(lr=0.05)
            )
            model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=7)
            trainer = SynchronousTrainer(
                server, model, dataset,
                num_workers=workers, batch_size=batch_size,
                dense_optimizer=Adam(1e-2),
            )
            trainer.train(5)
            return server.state_snapshot(), model.dense_state()

    # Weights should match to float tolerance (summation order differs).
        snap1, dense1 = run(1, 32)
        snap2, dense2 = run(2, 16)
        assert set(snap1) == set(snap2)
        for key in snap1:
            assert np.allclose(snap1[key], snap2[key], atol=1e-5)
        for a, b in zip(dense1, dense2):
            assert np.allclose(a, b, atol=1e-5)

    def test_invalid_construction(self):
        trainer, *_ = build()
        with pytest.raises(ConfigError):
            SynchronousTrainer(
                trainer.server,
                DeepFM(FIELDS, DIM, use_first_order=True),
                trainer.dataset,
            )


class TestCheckpointing:
    def test_request_before_training_rejected(self):
        trainer, *_ = build()
        with pytest.raises(CheckpointError):
            trainer.request_checkpoint()

    def test_automatic_requests(self):
        trainer, *_ = build(checkpoint_every=5)
        trainer.train(10)
        assert len(trainer.dense_checkpoints.snapshots) == 2
        assert 4 in trainer.dense_checkpoints.snapshots
        assert 9 in trainer.dense_checkpoints.snapshots

    def test_barrier_checkpoint_completes_globally(self):
        trainer, *_ = build()
        trainer.train(3)
        batch_id = trainer.barrier_checkpoint()
        assert batch_id == 2
        assert trainer.server.global_completed_checkpoint == 2

    def test_dense_store_prunes(self):
        trainer, *_ = build(checkpoint_every=1)
        trainer.train(8)
        assert len(trainer.dense_checkpoints.snapshots) <= trainer.dense_checkpoints.keep_last


class TestRecovery:
    def _recover(self, survivors, builders, dataset):
        pools, __, dense = survivors
        server_config, cache_config, ps_optimizer = builders
        model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=7)
        return SynchronousTrainer.recover(
            pools,
            dense,
            model=model,
            dataset=dataset,
            server_config=server_config,
            cache_config=cache_config,
            ps_optimizer=ps_optimizer,
            num_workers=2,
            batch_size=16,
            dense_optimizer=Adam(1e-2),
        )

    def test_crash_recover_resume_equals_uninterrupted(self):
        """The flagship correctness property: training with a crash and
        recovery produces the same final model as never crashing."""
        total = 24
        reference, *_ = build()
        reference.train(12)
        reference.request_checkpoint()
        reference.train(total - 12)
        ref_sparse = reference.server.state_snapshot()
        ref_dense = reference.model.dense_state()

        crashed, server_config, cache_config, ps_optimizer, dataset = build()
        crashed.train(12)
        crashed.request_checkpoint()
        crashed.train(6)  # checkpoint 11 completes opportunistically
        survivors = crashed.crash()
        recovered = self._recover(
            survivors, (server_config, cache_config, ps_optimizer), dataset
        )
        assert recovered.next_batch == 12
        recovered.train(total - recovered.next_batch)

        got_sparse = recovered.server.state_snapshot()
        assert set(got_sparse) == set(ref_sparse)
        for key in ref_sparse:
            assert np.array_equal(got_sparse[key], ref_sparse[key])
        for a, b in zip(ref_dense, recovered.model.dense_state()):
            assert np.array_equal(a, b)

    def test_recovery_without_snapshot_fails(self):
        trainer, server_config, cache_config, ps_optimizer, dataset = build()
        trainer.train(3)
        trainer.barrier_checkpoint()
        pools, __, dense = trainer.crash()
        dense.snapshots.clear()
        with pytest.raises(RecoveryError):
            self._recover(
                (pools, None, dense),
                (server_config, cache_config, ps_optimizer),
                dataset,
            )

    def test_loss_history_continues_sensibly(self):
        trainer, server_config, cache_config, ps_optimizer, dataset = build()
        trainer.train(10)
        trainer.barrier_checkpoint()
        survivors = trainer.crash()
        recovered = self._recover(
            survivors, (server_config, cache_config, ps_optimizer), dataset
        )
        results = recovered.train(5)
        assert all(np.isfinite(r.loss) for r in results)
