"""Deterministic simulated clock.

A :class:`SimClock` is a monotone counter of simulated seconds. All
device, network and compute costs are charged to a clock, which makes
every benchmark deterministic and independent of host speed.
"""

from __future__ import annotations

from repro.errors import ClockError


class SimClock:
    """Monotone simulated time in seconds.

    The clock supports plain advancement plus a small convenience for
    periodic events (used by the checkpoint scheduler).
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Raises:
            ClockError: if ``seconds`` is negative (time is monotone).
        """
        if seconds < 0:
            raise ClockError(f"cannot advance clock by negative duration {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``.

        Advancing to a timestamp in the past is an error; advancing to
        the current time is a no-op.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_overlapping(self, start: float, seconds: float) -> float:
        """Charge ``seconds`` of work that *began* at ``start``.

        The overlap primitive of the prefetch pipeline (Figure 5): work
        that ran concurrently with whatever advanced the clock since
        ``start`` only costs the portion extending past ``now``. If the
        work window ``start + seconds`` is already in the past, the
        work was fully hidden and the clock does not move.

        Raises:
            ClockError: negative duration, or ``start`` in the future.
        """
        if seconds < 0:
            raise ClockError(f"cannot overlap negative duration {seconds}")
        if start > self._now:
            raise ClockError(
                f"overlap window starts at {start}, after now ({self._now})"
            )
        end = start + seconds
        if end > self._now:
            self._now = float(end)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between benchmark repetitions)."""
        if start < 0:
            raise ClockError(f"clock cannot reset to negative time {start}")
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}s)"


class PeriodicTimer:
    """Fires every ``period`` seconds of simulated time.

    Used by the checkpoint manager to trigger periodic checkpoints: call
    :meth:`due` with the current time; it returns how many periods have
    elapsed since the last firing and advances its own phase.
    """

    def __init__(self, period: float, start: float = 0.0):
        if period <= 0:
            raise ClockError(f"timer period must be positive, got {period}")
        self.period = float(period)
        self._next_fire = start + self.period

    def due(self, now: float) -> int:
        """Return the number of firings due at ``now`` (possibly 0)."""
        fired = 0
        while now >= self._next_fire:
            fired += 1
            self._next_fire += self.period
        return fired

    @property
    def next_fire(self) -> float:
        """Simulated time of the next scheduled firing."""
        return self._next_fire
