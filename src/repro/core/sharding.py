"""Key partitioning across PS nodes.

Section IV: *"OpenEmbedding identifies the correct PS node by hashing
the entry's id"*. We use a splitmix64-style integer mix so routing is
deterministic across processes and runs (Python's builtin ``hash`` is
salted per process and would break recovery tests).
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from repro.errors import ConfigError

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finalizer: a fast, well-distributed 64-bit mix."""
    value = int(value)  # accept numpy scalars without overflow warnings
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def mix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mix64` over a uint64 array.

    uint64 arithmetic wraps modulo 2^64, which is exactly the ``& MASK``
    of the scalar version, so ``mix64_array(a)[i] == mix64(int(a[i]))``.
    """
    v = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        v = v + np.uint64(0x9E3779B97F4A7C15)
        v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return v ^ (v >> np.uint64(31))


class HashPartitioner:
    """Stable key -> node routing for ``num_nodes`` shards."""

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes

    def node_of(self, key: int) -> int:
        """The shard owning ``key``."""
        if self.num_nodes == 1:
            return 0
        return mix64(key) % self.num_nodes

    def split(
        self, keys: Sequence[int]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Partition ``keys`` by owner, vectorized.

        Returns ``(per_node_keys, per_node_positions)`` where
        ``per_node_positions[n][j]`` is the index in ``keys`` of
        ``per_node_keys[n][j]`` — used to scatter per-node responses
        back into request order. Both are numpy arrays (uint64 keys,
        intp positions); the stable owner sort preserves request order
        within each node, matching the old append-in-scan-order lists.
        """
        arr = np.asarray(keys, dtype=np.uint64)
        n = arr.size
        if self.num_nodes == 1:
            return [arr], [np.arange(n, dtype=np.intp)]
        owners = self._owner_array(arr)
        order = np.argsort(owners, kind="stable").astype(np.intp, copy=False)
        counts = np.bincount(owners, minlength=self.num_nodes)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        per_node_keys: list[np.ndarray] = []
        per_node_positions: list[np.ndarray] = []
        for node in range(self.num_nodes):
            sel = order[bounds[node] : bounds[node + 1]]
            per_node_keys.append(arr[sel])
            per_node_positions.append(sel)
        return per_node_keys, per_node_positions

    def _owner_array(self, arr: np.ndarray) -> np.ndarray:
        """Owning node of every key in ``arr`` (vectorized ``node_of``)."""
        return (mix64_array(arr) % np.uint64(self.num_nodes)).astype(
            np.intp, copy=False
        )


DEFAULT_VNODES = 64
"""Virtual nodes per physical PS node (elasticity vs ring-build cost)."""


class ConsistentHashRing(HashPartitioner):
    """Consistent-hash routing with virtual nodes.

    Same ``num_nodes`` / ``node_of`` / ``split`` interface as
    :class:`HashPartitioner`, but changing the node count only remaps
    the *minimal* fraction of keys: growing ``n -> n+1`` moves roughly
    ``1/(n+1)`` of the keyspace — and moves it exclusively onto the new
    node — while shrinking ``n -> n-1`` exactly restores the assignment
    the ring had at ``n-1`` nodes. This is the property that makes live
    shard migration (``repro.core.migration``) cheap.

    Construction is deterministic: vnode ``j`` of node ``i`` sits at
    position ``mix64((i << 32) | j)`` on a 64-bit ring, and a key
    ``k`` is owned by the first vnode clockwise of ``mix64(k)``. No
    process-salted hashing is involved, so routing is identical across
    processes and runs (required by the recovery and crash-point
    tests).

    Physical nodes are always the contiguous range ``0..num_nodes-1``
    — scale-out adds node ``n``, scale-in removes node ``n-1`` — which
    matches how the server indexes its shard list.
    """

    def __init__(self, num_nodes: int, vnodes: int = DEFAULT_VNODES):
        super().__init__(num_nodes)
        if vnodes <= 0:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for node_id in range(num_nodes):
            base = node_id << 32
            for j in range(vnodes):
                points.append((mix64(base | j), node_id))
        # Ties (astronomically unlikely) break deterministically by node id.
        points.sort()
        self._positions = [p for p, __ in points]
        self._owners = [owner for __, owner in points]
        self._positions_arr = np.asarray(self._positions, dtype=np.uint64)
        self._owners_arr = np.asarray(self._owners, dtype=np.intp)

    def node_of(self, key: int) -> int:
        """The shard owning ``key``: first vnode clockwise of ``mix64(key)``."""
        if self.num_nodes == 1:
            return 0
        point = mix64(key)
        idx = bisect.bisect_left(self._positions, point)
        if idx == len(self._positions):
            idx = 0  # wrap past the top of the ring
        return self._owners[idx]

    def _owner_array(self, arr: np.ndarray) -> np.ndarray:
        points = mix64_array(arr)
        # searchsorted(side="left") == bisect_left; wrap past the top.
        idx = np.searchsorted(self._positions_arr, points, side="left")
        idx[idx == len(self._positions_arr)] = 0
        return self._owners_arr[idx]

    def with_nodes(self, num_nodes: int) -> "ConsistentHashRing":
        """A ring over ``num_nodes`` nodes with the same vnode count."""
        return ConsistentHashRing(num_nodes, self.vnodes)

    def moved_keys(self, target: "HashPartitioner", keys: Sequence[int]) -> list[int]:
        """Subset of ``keys`` whose owner differs under ``target``."""
        return [k for k in keys if self.node_of(k) != target.node_of(k)]


RING_STATE_FIELD = "ring_state"
"""PMem root field (coordinator pool, node 0) holding the committed ring.

A single :meth:`~repro.pmem.pool.PoolRoot.set` of this field is the
atomic commit point of a migration: the packed value encodes the ring
epoch plus everything needed to rebuild the partitioner
(``num_nodes``, ``vnodes``), so recovery after a mid-migration crash
always lands on a consistent pre- or post-migration ring.
"""

_RING_EPOCH_SHIFT = 40
_RING_NODES_SHIFT = 20
_RING_FIELD_MASK = (1 << 20) - 1


def pack_ring_state(epoch: int, num_nodes: int, vnodes: int) -> int:
    """Encode ``(epoch, num_nodes, vnodes)`` into one root-field word."""
    for name, value in (("epoch", epoch), ("num_nodes", num_nodes), ("vnodes", vnodes)):
        if not 0 <= value <= _RING_FIELD_MASK and name != "epoch":
            raise ConfigError(f"ring {name} {value} out of range")
    if epoch < 0:
        raise ConfigError(f"ring epoch must be >= 0, got {epoch}")
    return (epoch << _RING_EPOCH_SHIFT) | (num_nodes << _RING_NODES_SHIFT) | vnodes


def unpack_ring_state(packed: int) -> tuple[int, int, int]:
    """Decode :func:`pack_ring_state`'s word into ``(epoch, num_nodes, vnodes)``."""
    epoch = packed >> _RING_EPOCH_SHIFT
    num_nodes = (packed >> _RING_NODES_SHIFT) & _RING_FIELD_MASK
    vnodes = packed & _RING_FIELD_MASK
    return epoch, num_nodes, vnodes


def make_partitioner(
    kind: str, num_nodes: int, vnodes: int = DEFAULT_VNODES
) -> HashPartitioner:
    """Build the partitioner named by ``kind`` (``modulo`` | ``ring``)."""
    if kind == "modulo":
        return HashPartitioner(num_nodes)
    if kind == "ring":
        return ConsistentHashRing(num_nodes, vnodes)
    raise ConfigError(f"unknown partitioner kind {kind!r} (want 'modulo' or 'ring')")
