"""Property test: the vectorized arena hot path is bitwise-identical to
the per-key dict-backed reference path.

Two PS nodes run the SAME hypothesis-generated interleaving of
pull/maintain/push (with duplicate keys), checkpoint requests, forced
eviction (``drop_cache``) and a wire-framed migration roundtrip — one
with ``CacheConfig.arena=True`` (vectorized fast paths), one with
``arena=False`` (the legacy reference loops). Everything observable must
match to the bit: pulled weights, live state, durable store contents
*including optimizer state after eviction and reload*, and the metrics
counters.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad, PSSGD
from repro.core.ps_node import PSNode
from repro.network.messages import (
    MigrateResponse,
    decode_message,
    encode_message,
)

DIM = 3
NUM_KEYS = 10


def schedule_strategy():
    """Per batch: keys (duplicates allowed), float64-gradient flag,
    checkpoint-request flag, drop-cache flag."""
    batch = st.tuples(
        st.lists(st.integers(0, NUM_KEYS - 1), min_size=1, max_size=6),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    return st.lists(batch, min_size=2, max_size=10)


def make_node(arena: bool, capacity_entries: int, optimizer) -> PSNode:
    entry_bytes = (DIM + optimizer.state_width(DIM)) * 4
    server_config = ServerConfig(
        embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=7
    )
    cache_config = CacheConfig(
        capacity_bytes=capacity_entries * entry_bytes, arena=arena
    )
    return PSNode(0, server_config, cache_config, optimizer)


def drive(node: PSNode, schedule) -> list[np.ndarray]:
    """Run the schedule; returns the pulled weights of every batch."""
    pulled = []
    for batch_id, (keys, f64, ckpt, drop) in enumerate(schedule):
        result = node.pull(keys, batch_id)
        pulled.append(np.array(result.weights, copy=True))
        node.maintain(batch_id)
        rng = np.random.default_rng((batch_id, 3))
        grads = rng.standard_normal((len(keys), DIM)).astype(np.float32)
        if f64:
            # The float32 coercion at the aggregation boundary must make
            # a float64 push arithmetically indistinguishable.
            grads = grads.astype(np.float64)
        node.push(keys, grads, batch_id)
        if ckpt and batch_id > node.coordinator.last_completed:
            pending = node.coordinator.queue.pending()
            if not pending or pending[-1] < batch_id:
                node.coordinator.request(batch_id)
        if drop:
            node.cache.drop_cache()
        node.cache.validate()
    return pulled


def store_dump(node: PSNode) -> dict:
    """Every durable (key, version) -> packed bytes (weights + state)."""
    dump = {}
    for key in node.cache.index.keys():
        for version in node.store.versions_of(key):
            __, stored = node.store.read_at_most(key, version)
            dump[(key, version)] = None if stored is None else stored.tobytes()
    return dump


def metrics_tuple(node: PSNode) -> tuple:
    m = node.metrics
    return (
        m.pulls,
        m.updates,
        m.entries_created,
        m.cache.hits,
        m.cache.misses,
        m.cache.loads,
        m.cache.flushes,
        m.cache.evictions,
        m.pmem_load_entries,
        m.pmem_flush_entries,
    )


class TestArenaEquivalence:
    @given(
        schedule=schedule_strategy(),
        capacity=st.integers(1, NUM_KEYS + 2),
        adagrad=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_bitwise_equal_to_reference_path(self, schedule, capacity, adagrad):
        make_opt = (
            (lambda: PSAdagrad(lr=0.1)) if adagrad else (lambda: PSSGD(lr=0.25))
        )
        fast = make_node(arena=True, capacity_entries=capacity, optimizer=make_opt())
        ref = make_node(arena=False, capacity_entries=capacity, optimizer=make_opt())

        pulled_fast = drive(fast, schedule)
        pulled_ref = drive(ref, schedule)
        for batch_id, (a, b) in enumerate(zip(pulled_fast, pulled_ref)):
            assert np.array_equal(a, b), f"pulled weights differ at batch {batch_id}"

        snap_fast, snap_ref = fast.state_snapshot(), ref.state_snapshot()
        assert set(snap_fast) == set(snap_ref)
        for key in snap_fast:
            assert np.array_equal(snap_fast[key], snap_ref[key]), f"key {key}"

        # Durable contents — the packed bytes include optimizer state,
        # so Adagrad accumulators surviving eviction + reload must match.
        assert store_dump(fast) == store_dump(ref)
        assert metrics_tuple(fast) == metrics_tuple(ref)

    @given(
        schedule=schedule_strategy(),
        capacity=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_migration_roundtrip_preserves_bits(self, schedule, capacity):
        """Export -> wire-frame -> ingest lands the identical bits on an
        arena node, including per-version optimizer state."""
        src = make_node(arena=False, capacity_entries=capacity, optimizer=PSAdagrad())
        drive(src, schedule)
        last = len(schedule) - 1
        # The schedule may already have queued a checkpoint at ``last``;
        # complete whatever is pending, then barrier only if needed —
        # either way the newest durable version equals the live state.
        src.cache.flush_all()
        src.complete_pending_checkpoints()
        if last > src.coordinator.last_completed:
            src.barrier_checkpoint(last)
        keys = sorted(src.owned_keys())
        width = DIM + PSAdagrad().state_width(DIM)
        frame = encode_message(
            MigrateResponse(width=width, entries=tuple(src.export_entries(keys)))
        )
        decoded = decode_message(bytes(frame))

        dst = make_node(arena=True, capacity_entries=capacity, optimizer=PSAdagrad())
        assert dst.ingest_entries(list(decoded.entries)) == len(keys)
        dst.seal_at(last)
        snap_src, snap_dst = src.state_snapshot(), dst.state_snapshot()
        assert set(snap_src) == set(snap_dst)
        for key in keys:
            assert np.array_equal(snap_src[key], snap_dst[key])
        assert store_dump(src) == store_dump(dst)

        # Training continues on the ingested node: loads promote the
        # transferred rows into the arena and the fast path takes over.
        extra = [(keys[:4] or [0], False, False, False)]
        ref = make_node(arena=False, capacity_entries=capacity, optimizer=PSAdagrad())
        assert ref.ingest_entries(list(decoded.entries)) == len(keys)
        ref.seal_at(last)
        for batch_id, step in enumerate(extra, start=last + 1):
            ka = step[0]
            a = dst.pull(ka, batch_id)
            b = ref.pull(ka, batch_id)
            assert np.array_equal(a.weights, b.weights)
            dst.maintain(batch_id)
            ref.maintain(batch_id)
            grads = np.full((len(ka), DIM), 0.25, dtype=np.float32)
            dst.push(ka, grads, batch_id)
            ref.push(ka, grads, batch_id)
        for key in keys:
            assert np.array_equal(
                dst.cache.read_current_weights(key),
                ref.cache.read_current_weights(key),
            )
