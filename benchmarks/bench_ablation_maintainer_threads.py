"""Ablation: cache-maintainer thread count (16 GPUs).

The pipeline hides maintenance behind GPU compute only while the
maintainer keeps up. This bench uses a fast dense model (small GPU
window) and a miss-heavy cache so the maintainer is genuinely under
pressure: with one thread the deferred work spills past the GPU window
onto the critical path; adding threads pulls it back under.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.config import CheckpointConfig
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

GPU_BATCH_S = 0.0012  # a small dense model: a tight window to hide in


def epoch(threads: int):
    profile = DEFAULT_PROFILE
    simulator = TrainingSimulator(
        SystemKind.PMEM_OE,
        profile.cluster_config(16, gpu_batch_time_s=GPU_BATCH_S),
        profile.server_config(),
        profile.cache_config(paper_mb=100, maintainer_threads=threads),
        CheckpointConfig.none(),
        WorkloadGenerator(profile.workload_config()),
    )
    return simulator.run(60)


def test_ablation_maintainer_threads(benchmark, report):
    rows = run_once(benchmark, lambda: {t: epoch(t) for t in (1, 2, 4, 8)})
    report.title(
        "ablation_maintainer_threads",
        "Ablation: maintainer threads (16 GPUs, 100 MB-eq cache, small GPU window)",
    )
    spills = {}
    for threads, result in rows.items():
        per_iter_deferred = result.maintain_deferred_seconds / result.iterations
        spills[threads] = per_iter_deferred > GPU_BATCH_S
        report.row(
            f"{threads} maintainer thread(s)",
            "-",
            f"epoch {result.sim_seconds:.3f} s",
            note=f"deferred {per_iter_deferred * 1e3:.2f} ms/iter vs gpu "
            f"{GPU_BATCH_S * 1e3:.1f} ms -> "
            f"{'SPILLS' if spills[threads] else 'hidden'}",
        )

    times = [rows[t].sim_seconds for t in (1, 2, 4, 8)]
    # More threads never hurt; a starved maintainer spills while the
    # well-provisioned one hides completely, so only the 1-thread run
    # pays any maintenance on the critical path.
    assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
    assert spills[1] and not spills[8]
    assert times[0] > times[-1]


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    if params["threads"] == 1 and not metrics["spills"]:
        return ["a lone maintainer should spill under this pressure"]
    if params["threads"] >= 8 and metrics["spills"]:
        return ["8 maintainer threads should hide all deferred work"]
    return []


@register(
    "ablation_maintainer_threads",
    params=[Param("threads", "int", 1, help="cache-maintainer threads")],
    headline={
        "epoch_seconds": Headline(direction="lower", max_regression=0.05),
    },
    check=_check,
)
def entry(*, threads):
    """Epoch time and deferred-work spill at one maintainer thread
    count under a tight GPU window and miss-heavy cache."""
    result = epoch(threads)
    per_iter_deferred = result.maintain_deferred_seconds / result.iterations
    return {
        "epoch_seconds": result.sim_seconds,
        "deferred_ms_per_iter": per_iter_deferred * 1e3,
        "spills": per_iter_deferred > GPU_BATCH_S,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_maintainer_threads"))
