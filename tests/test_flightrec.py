"""Flight recorder: ring semantics, dump triggers, postmortems.

Unit coverage for :class:`~repro.obs.flightrec.FlightRecorder` plus the
three places the codebase pulls the trigger:

* a :class:`~repro.obs.tracer.Tracer` tap rings every closed span and
  instant;
* an aborted :class:`~repro.core.migration.ShardMigrator` run dumps
  with trigger ``migration_abort`` naming the step that was executing;
* a chaos-soak kill produces a ``promotion`` dump whose window covers
  the whole failure episode — lease expiry → declare-dead → promotion
  (the acceptance property), and a failed soak audit writes a
  postmortem artifact embedding a ``soak_audit_failed`` dump.
"""

from __future__ import annotations

import json

import pytest

from repro.core.migration import ShardMigrator
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.errors import ConfigError
from repro.obs import FlightRecorder, Tracer
from repro.obs.flightrec import FLIGHTREC_SCHEMA
from repro.simulation.clock import SimClock
from tests.harness.chaos import assert_soak_survived, run_chaos_soak
from tests.harness.crashpoints import (
    CrashPointScheduler,
    InjectedCrash,
    batch_payload,
    cache_config,
    server_config,
)


# ----------------------------------------------------------------------
# ring semantics
# ----------------------------------------------------------------------


class TestRing:
    def test_bounded_ring_drops_oldest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("unit", f"event{i}")
        events = rec.events()
        assert len(events) == 4
        assert [e["name"] for e in events] == [f"event{i}" for i in range(6, 10)]
        dump = rec.dump("test")
        assert dump["recorded"] == 10
        assert dump["dropped"] == 6

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_dump_schema_and_ring_not_cleared(self):
        clock = SimClock()
        rec = FlightRecorder(node="ps0", clock=clock)
        rec.record("unit", "first", detail=7)
        clock.advance(1.5)
        rec.record("unit", "second")
        dump = rec.dump("declare_dead", node=2)
        assert dump["schema"] == FLIGHTREC_SCHEMA
        assert dump["node"] == "ps0"
        assert dump["trigger"] == "declare_dead"
        assert dump["attrs"] == {"node": 2}
        assert dump["t"] == 1.5
        assert [e["t"] for e in dump["events"]] == [0.0, 1.5]
        assert dump["events"][0]["attrs"] == {"detail": 7}
        # A later trigger still sees the earlier window.
        later = rec.dump("promotion")
        assert [e["name"] for e in later["events"]] == ["first", "second"]
        assert rec.dumps_triggered("declare_dead") == [dump]
        assert rec.dumps_triggered("promotion") == [later]

    def test_dump_dir_writes_numbered_files(self, tmp_path):
        rec = FlightRecorder(node="ps0", dump_dir=tmp_path)
        rec.record("unit", "something")
        rec.dump("promotion")
        rec.dump("promotion")
        names = sorted(p.name for p in rec.dump_paths)
        assert names == ["flightrec_promotion_1.json", "flightrec_promotion_2.json"]
        on_disk = json.loads((tmp_path / names[0]).read_text())
        assert on_disk["schema"] == FLIGHTREC_SCHEMA
        assert on_disk["events"][0]["name"] == "something"


# ----------------------------------------------------------------------
# tracer tap
# ----------------------------------------------------------------------


class TestTracerTap:
    def test_spans_and_instants_ring(self):
        clock = SimClock()
        rec = FlightRecorder(clock=clock)
        tracer = Tracer(clock=clock, recorder=rec)
        with tracer.span("rpc.call", track="rpc", node=1):
            clock.advance(0.25)
        tracer.instant("kill", track="chaos")
        kinds = [(e["kind"], e["name"]) for e in rec.events()]
        assert ("span", "rpc.call") in kinds
        assert ("instant", "kill") in kinds
        span_event = next(e for e in rec.events() if e["kind"] == "span")
        assert span_event["attrs"]["duration"] == pytest.approx(0.25)
        assert span_event["attrs"]["node"] == 1


# ----------------------------------------------------------------------
# migration abort
# ----------------------------------------------------------------------


class TestMigrationAbort:
    def test_aborted_migration_dumps_naming_the_step(self):
        backend = OpenEmbeddingServer(
            server_config(3, seed=0), cache_config(), PSAdagrad(lr=0.05)
        )
        for batch in range(3):
            keys, grads = batch_payload(0, batch)
            backend.pull(keys, batch)
            backend.maintain(batch)
            backend.push(keys, grads, batch)
        rec = FlightRecorder(node="cluster")
        migrator = ShardMigrator(
            backend,
            on_step=CrashPointScheduler("mid_transfer"),
            recorder=rec,
        )
        with pytest.raises(InjectedCrash):
            migrator.scale_out()
        dumps = rec.dumps_triggered("migration_abort")
        assert len(dumps) == 1
        assert dumps[0]["attrs"] == {
            "direction": "scale_out",
            "step": "mid_transfer",
        }
        # The ring holds the step trail up to and including the abort.
        names = [e["name"] for e in dumps[0]["events"] if e["kind"] == "migration"]
        assert names == ["barrier", "provision", "transfer", "mid_transfer", "abort"]


# ----------------------------------------------------------------------
# chaos soak (acceptance): promotion dumps cover the whole episode
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def soak_result():
    return run_chaos_soak(remote=True, seed=1, kills=3, batches=30)


class TestChaosSoakDumps:
    def test_promotion_dump_covers_the_failure_episode(self, soak_result):
        recorder = soak_result.recorder
        assert recorder is not None
        assert len(soak_result.promotions) >= 1
        dumps = recorder.dumps_triggered("promotion")
        assert len(dumps) == len(soak_result.promotions)
        # Every declare-dead also dumped, before its promotion.
        assert len(recorder.dumps_triggered("declare_dead")) >= len(dumps)
        for dump in dumps:
            assert dump["schema"] == FLIGHTREC_SCHEMA
            assert dump["attrs"]["unavailability_s"] <= (
                soak_result.unavailability_bound_s + 1e-9
            )
            # The window shows the causal story in ring order:
            # lease expiry -> declared dead -> promoted.
            names = [
                e["name"] for e in dump["events"] if e["kind"] == "failover"
            ]
            expired = names.index("lease_expired")
            dead = names.index("declared_dead", expired)
            promoted = names.index("promoted", dead)
            assert expired < dead < promoted

    def test_failed_audit_writes_postmortem_artifact(self, soak_result, tmp_path):
        impossible = soak_result.kills + 100
        with pytest.raises(AssertionError) as excinfo:
            assert_soak_survived(
                soak_result, min_kills=impossible, artifact_dir=tmp_path
            )
        message = str(excinfo.value)
        assert "postmortem artifact:" in message
        path = message.rsplit("postmortem artifact:", 1)[1].strip()
        artifact = json.loads(open(path).read())
        assert artifact["flightrec"]["trigger"] == "soak_audit_failed"
        assert artifact["flightrec"]["schema"] == FLIGHTREC_SCHEMA
        assert artifact["kills"] == soak_result.kills
        dumps = soak_result.recorder.dumps_triggered("soak_audit_failed")
        assert len(dumps) == 1
