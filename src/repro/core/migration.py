"""Live shard migration: elastic scale-out / scale-in of a PS cluster.

The paper scales synchronous DLRM training by hashing each embedding id
to a PS node (Section IV), but a static ``mix64(key) % num_nodes``
partition remaps almost every key when the node count changes. This
module pairs the :class:`~repro.core.sharding.ConsistentHashRing`
(minimal movement) with a :class:`ShardMigrator` that re-shards a
*running* cluster without losing or duplicating a single update.

Protocol (labels in :data:`MIGRATION_STEPS`, in execution order):

========== ==========================================================
Step        What happens
========== ==========================================================
barrier     Quiesce at a batch barrier: a cluster-wide barrier
            checkpoint at batch ``B`` flushes every DRAM cache, so
            each shard's newest durable version *is* its live state.
provision   Scale-out: build the empty new node (highest id).
            Scale-in: pick the surviving owners of the leaving
            node's keys under the target ring.
transfer    Copy (not move) every retained version of each moved key
            — weights, optimizer state and version tags travel
            together — to its new owner. ``mid_transfer`` labels the
            partially-copied state for the crash-point harness.
seal        Persist the barrier's *Checkpointed Batch ID* on the new
            node's pool, so cluster-min recovery on the target ring
            is well-defined. (No-op for scale-in: survivors sealed
            at the barrier.)
commit      ONE atomic root-field write of the packed ring state
            (epoch, num_nodes, vnodes) on the coordinator pool.
            This is the point of no return: recovery lands on the
            old ring before it and on the new ring after it.
cleanup     End the dual-ownership window: sources drop the moved
            keys from every tier. Until then both copies exist and
            the source keeps serving stale-ring clients.
done        Migration complete; training resumes.
========== ==========================================================

Crash consistency: every step is labelled and the
``tests/harness/crashpoints.py`` scheduler kills the cluster at each
label. Because transfer copies and the ring commit is a single
untearable word, :func:`recover_elastic` always lands on a consistent
pre- or post-migration ring, then purges any dual-ownership leftovers
the crash stranded on non-owner shards. The crash-point sweep asserts
the recovered-and-replayed weights are *bitwise* identical to an
unsharded reference.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.config import CacheConfig, ServerConfig
from repro.core.ps_node import PSNode
from repro.core.recovery import RecoveryReport
from repro.core.server import OpenEmbeddingServer
from repro.core.sharding import (
    RING_STATE_FIELD,
    ConsistentHashRing,
    unpack_ring_state,
)
from repro.core.optimizers import PSOptimizer
from repro.errors import RecoveryError, ServerError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmem.pool import PmemPool
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION

MIGRATION_STEPS = (
    "barrier",
    "provision",
    "transfer",
    "mid_transfer",
    "seal",
    "commit",
    "cleanup",
    "done",
)
"""Every labelled step of the migration protocol, in execution order.

The crash-point sweep (``tests/test_migration_crashpoints.py``) derives
its schedule from this tuple, so adding a step here automatically adds
it to the crash matrix.
"""

Entries = list[tuple[int, list[tuple[int, object]]]]
"""``[(key, [(batch_id, stored_array_or_None), ...]), ...]``"""


class MigrationTransport(Protocol):
    """How entry data moves between shards during a migration.

    Two implementations exist: the in-process one below (direct node
    method calls, used by :class:`~repro.core.server.OpenEmbeddingServer`)
    and :class:`~repro.network.frontend.RpcMigrationTransport`, which
    moves the same payloads through framed ``MigrateRequest`` RPCs with
    the client's usual retry + dedup discipline.
    """

    def provision(self, node_id: int, server_config: ServerConfig) -> PSNode:
        """Create the empty node joining the cluster (scale-out)."""
        ...

    def export(self, node: PSNode, keys: list[int]) -> Entries:
        """Read all retained versions of ``keys`` from ``node``."""
        ...

    def put(self, node: PSNode, entries: Entries) -> int:
        """Ingest transferred entries on ``node``; idempotent."""
        ...

    def delete(self, node: PSNode, keys: list[int]) -> int:
        """Drop ``keys`` from ``node`` (cleanup); idempotent."""
        ...


class InProcessTransport:
    """Direct node-object transport for the in-process server."""

    def __init__(self, cluster: OpenEmbeddingServer):
        self.cluster = cluster

    def provision(self, node_id: int, server_config: ServerConfig) -> PSNode:
        return self.cluster.provision_node(node_id, server_config)

    def export(self, node: PSNode, keys: list[int]) -> Entries:
        return node.export_entries(keys)

    def put(self, node: PSNode, entries: Entries) -> int:
        return node.ingest_entries(entries)

    def delete(self, node: PSNode, keys: list[int]) -> int:
        return node.drop_keys(keys)


@dataclass(frozen=True)
class MigrationReport:
    """What one migration did (functional accounting, not timing)."""

    direction: str  # "scale_out" | "scale_in"
    from_nodes: int
    to_nodes: int
    barrier_batch: int
    ring_epoch: int
    keys_moved: int
    versions_moved: int
    bytes_moved: int
    keys_total: int

    @property
    def moved_fraction(self) -> float:
        """Fraction of the resident keyspace that changed owner."""
        if self.keys_total == 0:
            return 0.0
        return self.keys_moved / self.keys_total


class ShardMigrator:
    """Executes live scale-out / scale-in against a running cluster.

    Args:
        cluster: an :class:`OpenEmbeddingServer` or any object with the
            same elastic surface (``nodes``, ``partitioner``,
            ``server_config``, ``barrier_checkpoint``, ``commit_ring``,
            ``provision_node``) — :class:`RemotePSClient` qualifies.
        transport: how entries move (defaults to direct node calls).
        on_step: hook invoked with each label *before* the step runs —
            the crash-point scheduler plugs in here.
        tracer: each step emits a ``migration.<label>`` instant on the
            ``migration`` track, and the whole run is a
            ``migration.run`` span.
        recorder: optional
            :class:`~repro.obs.flightrec.FlightRecorder`; every step
            lands in its ring and an aborted migration (any exception
            out of a step, including a crash-point kill) dumps the
            window with trigger ``migration_abort`` naming the step
            that was executing. Defaults to the cluster's ``recorder``
            attribute when it has one.
    """

    def __init__(
        self,
        cluster,
        transport: MigrationTransport | None = None,
        on_step: Callable[[str], None] | None = None,
        tracer: Tracer | None = None,
        recorder=None,
    ):
        self.cluster = cluster
        self.transport = transport or InProcessTransport(cluster)
        self.on_step = on_step
        self.tracer = tracer if tracer is not None else getattr(
            cluster, "tracer", NULL_TRACER
        )
        self.recorder = recorder if recorder is not None else getattr(
            cluster, "recorder", None
        )
        self._current_step: str | None = None
        #: The node being provisioned by an in-flight scale-out; a crash
        #: handler collects its pool alongside the cluster's so
        #: :func:`recover_elastic` sees every surviving DIMM.
        self.pending_target: PSNode | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def scale_out(self) -> MigrationReport:
        """Grow the cluster by one node (ids stay contiguous)."""
        ring = self._require_ring()
        n = self.cluster.server_config.num_nodes
        new_cfg = dataclasses.replace(self.cluster.server_config, num_nodes=n + 1)
        new_ring = ring.with_nodes(n + 1)
        with self.tracer.span(
            "migration.run", track="migration", direction="scale_out",
            from_nodes=n, to_nodes=n + 1,
        ):
            return self._migrate("scale_out", new_cfg, new_ring)

    def scale_in(self) -> MigrationReport:
        """Shrink the cluster by one node (the highest id leaves)."""
        ring = self._require_ring()
        n = self.cluster.server_config.num_nodes
        if n < 2:
            raise ServerError("cannot scale in a single-node cluster")
        new_cfg = dataclasses.replace(self.cluster.server_config, num_nodes=n - 1)
        new_ring = ring.with_nodes(n - 1)
        with self.tracer.span(
            "migration.run", track="migration", direction="scale_in",
            from_nodes=n, to_nodes=n - 1,
        ):
            return self._migrate("scale_in", new_cfg, new_ring)

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------

    def _migrate(
        self,
        direction: str,
        new_cfg: ServerConfig,
        new_ring: ConsistentHashRing,
    ) -> MigrationReport:
        try:
            return self._migrate_steps(direction, new_cfg, new_ring)
        except BaseException:
            # An aborted migration (crash-point kill, transport error,
            # routing bug) is exactly what the flight recorder exists
            # for: dump the window naming the step that was executing.
            if self.recorder is not None:
                self.recorder.record(
                    "migration",
                    "abort",
                    direction=direction,
                    step=self._current_step,
                )
                self.recorder.dump(
                    "migration_abort",
                    direction=direction,
                    step=self._current_step,
                )
            raise

    def _migrate_steps(
        self,
        direction: str,
        new_cfg: ServerConfig,
        new_ring: ConsistentHashRing,
    ) -> MigrationReport:
        cluster = self.cluster
        old_n = cluster.server_config.num_nodes
        new_n = new_cfg.num_nodes
        scale_out = new_n > old_n

        # -- barrier: quiesce training at a batch boundary ------------
        self._step("barrier")
        latest = cluster.latest_completed_batch
        completed = cluster.global_completed_checkpoint
        if latest >= 0 and completed == latest:
            # Already quiesced at a durable barrier (e.g. back-to-back
            # migrations): every cache was flushed when that checkpoint
            # completed and no push has landed since, so the stores
            # already hold the live state.
            barrier_batch = completed
        else:
            barrier_batch = cluster.barrier_checkpoint()

        # -- provision ------------------------------------------------
        self._step("provision")
        if scale_out:
            target = self.transport.provision(old_n, new_cfg)
            self.pending_target = target
            node_for = lambda nid: target if nid == old_n else cluster.nodes[nid]
        else:
            node_for = lambda nid: cluster.nodes[nid]

        # Plan the moves: (source node, new owner id, keys).
        moves: list[tuple[PSNode, int, list[int]]] = []
        keys_total = 0
        if scale_out:
            for node in cluster.nodes:
                owned = node.owned_keys()
                keys_total += len(owned)
                moved = [k for k in owned if new_ring.node_of(k) == old_n]
                if moved:
                    moves.append((node, old_n, moved))
        else:
            leaving = cluster.nodes[-1]
            for node in cluster.nodes:
                keys_total += len(node.owned_keys())
            per_owner: dict[int, list[int]] = {}
            for key in leaving.owned_keys():
                per_owner.setdefault(new_ring.node_of(key), []).append(key)
            for owner in sorted(per_owner):
                moves.append((leaving, owner, per_owner[owner]))

        # -- transfer: copy, never move -------------------------------
        self._step("transfer")
        keys_moved = versions_moved = 0
        for i, (source, owner, keys) in enumerate(moves):
            entries = self.transport.export(source, keys)
            self.transport.put(node_for(owner), entries)
            keys_moved += len(keys)
            versions_moved += sum(len(v) for __, v in entries)
            if i == 0:
                # Label the partially-transferred state exactly once so
                # the crash sweep exercises a half-copied cluster.
                self._step("mid_transfer")

        # -- seal: make the target recoverable at the barrier ---------
        self._step("seal")
        if scale_out:
            # One node-level call (mirrored to a replicated target's
            # backup) instead of reaching into store/coordinator guts.
            target.seal_at(barrier_batch)

        # -- commit: ONE atomic ring-state write ----------------------
        self._step("commit")
        if scale_out:
            new_nodes = list(cluster.nodes) + [target]
        else:
            new_nodes = list(cluster.nodes[:-1])
        epoch = cluster.commit_ring(new_ring, new_cfg, new_nodes)
        self.pending_target = None

        # -- cleanup: end the dual-ownership window -------------------
        self._step("cleanup")
        member_ids = {node.node_id for node in new_nodes}
        for source, __, keys in moves:
            if source.node_id in member_ids:
                self.transport.delete(source, keys)
            else:
                # Scale-in: the source left the membership at commit, so
                # releasing its copies is a local decommission wipe, not
                # an RPC to a cluster member.
                source.drop_keys(keys)

        self._step("done")
        entry_bytes = new_nodes[0].store.entry_bytes if new_nodes else 0
        return MigrationReport(
            direction=direction,
            from_nodes=old_n,
            to_nodes=new_n,
            barrier_batch=barrier_batch,
            ring_epoch=epoch,
            keys_moved=keys_moved,
            versions_moved=versions_moved,
            bytes_moved=versions_moved * entry_bytes,
            keys_total=keys_total,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_ring(self) -> ConsistentHashRing:
        partitioner = self.cluster.partitioner
        if not isinstance(partitioner, ConsistentHashRing):
            raise ServerError(
                "live migration requires the consistent-hash ring "
                "(ServerConfig.partitioner='ring'); the modulo partitioner "
                "would remap ~(n-1)/n of all keys"
            )
        return partitioner

    def _step(self, label: str, **info) -> None:
        self._current_step = label
        if self.recorder is not None:
            self.recorder.record("migration", label, **info)
        if self.on_step is not None:
            self.on_step(label)
        self.tracer.instant(f"migration.{label}", track="migration", **info)

    def crash(self) -> list[PmemPool]:
        """Kill the cluster mid-migration; every pool survives.

        Returns pools in node-id order, including a pending (not yet
        committed) scale-out target's pool as the last element — the
        exact list :func:`recover_elastic` expects.
        """
        pools = self.cluster.crash()
        if self.pending_target is not None:
            pools.append(self.pending_target.crash())
            self.pending_target = None
        return pools


def recover_elastic(
    pools: list[PmemPool],
    server_config: ServerConfig,
    cache_config: CacheConfig | None = None,
    optimizer: PSOptimizer | None = None,
    *,
    metadata_only: bool = False,
    calibration: Calibration = DEFAULT_CALIBRATION,
    tracer: Tracer | None = None,
) -> tuple[OpenEmbeddingServer, list[RecoveryReport], int]:
    """Recover a ring-partitioned cluster, even from a mid-migration crash.

    The committed ring state (epoch, num_nodes, vnodes) is read from the
    coordinator pool (node 0) — whatever the single-word commit said
    last. Exactly ``num_nodes`` pools are recovered; surplus pools (a
    scale-out target whose migration never committed, or a scaled-in
    node's abandoned DIMMs) are discarded. Finally any key a shard holds
    but the committed ring routes elsewhere — the stranded half of a
    dual-ownership window — is purged, so every key has exactly one
    owner.

    Args:
        pools: ALL surviving pools in node-id order (see
            :meth:`ShardMigrator.crash`).
        server_config: shape config; ``num_nodes``/``ring_vnodes`` are
            overridden by the durable ring state.

    Returns:
        ``(server, per-shard recovery reports, purged_keys)``.

    Raises:
        RecoveryError: no pools, no durable ring state, or fewer pools
            than the committed ring needs.
    """
    if not pools:
        raise RecoveryError("no surviving pools")
    tracer = tracer if tracer is not None else NULL_TRACER
    if RING_STATE_FIELD not in pools[0].root.fields():
        raise RecoveryError(
            "coordinator pool has no durable ring state; was the cluster "
            "built with ServerConfig.partitioner='ring'?"
        )
    epoch, num_nodes, vnodes = unpack_ring_state(
        pools[0].root.get(RING_STATE_FIELD)
    )
    if len(pools) < num_nodes:
        raise RecoveryError(
            f"committed ring needs {num_nodes} pools, only {len(pools)} survived"
        )
    cfg = dataclasses.replace(
        server_config,
        num_nodes=num_nodes,
        partitioner="ring",
        ring_vnodes=vnodes,
    )
    server, reports = OpenEmbeddingServer.recover(
        pools[:num_nodes],
        cfg,
        cache_config,
        optimizer,
        metadata_only=metadata_only,
        calibration=calibration,
        cluster_mode=True,
        tracer=tracer,
    )
    purged = 0
    for node in server.nodes:
        stale = [
            k for k in node.owned_keys()
            if server.partitioner.node_of(k) != node.node_id
        ]
        purged += node.drop_keys(stale)
    tracer.instant(
        "migration.recovered",
        track="migration",
        epoch=epoch,
        nodes=num_nodes,
        purged=purged,
    )
    return server, reports, purged
