"""Binary wire messages for the PS protocol.

Every message is ``[1-byte type][4-byte LE body length][4-byte CRC32 of
body][body]``; bodies pack fixed little-endian headers followed by raw
numpy buffers, so the byte counts the simulator charges are the byte
counts a real implementation would move. The checksum makes in-flight
corruption (see :class:`~repro.failure.network_faults.FaultyLink`)
always detectable: a corrupt frame decodes to :class:`MessageError`,
never to silently wrong weights.

Message catalogue:

======================  ====  =======================================
Message                 Type  Body
======================  ====  =======================================
PullRequest             0x01  batch_id u64, nkeys u32, keys u64[n]
PullResponse            0x02  batch_id u64, nkeys u32, dim u32,
                              hits u32, misses u32, created u32,
                              weights f32[n*dim]
PushRequest             0x03  batch_id u64, worker_id u32, seq u64,
                              nkeys u32, dim u32,
                              keys u64[n], grads f32[n*dim]
CheckpointRequest       0x04  batch_id i64
StatusResponse          0x05  code u8, value i64, detail_len u16,
                              detail utf-8[detail_len]
MaintainRequest         0x06  batch_id u64
MaintainResponse        0x07  batch_id u64, processed u32, loads u32,
                              flushes u32, evictions u32,
                              checkpoints_completed u32
======================  ====  =======================================

``PushRequest``'s ``(worker_id, seq)`` header gives the server a dedup
identity: a retried push (the client never learned whether its first
copy applied) carries the same header, and
:class:`~repro.network.frontend.PSNodeService` suppresses the replay —
at-most-once gradient application under at-least-once delivery.
``seq == 0`` means "no dedup identity" (raw protocol users).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

_HEADER = struct.Struct("<BII")

_MAX_DETAIL_BYTES = 512
"""Status detail strings are truncated to keep error frames bounded."""


class MessageError(ReproError):
    """Malformed or unexpected wire message."""


@dataclass(frozen=True)
class PullRequest:
    """Worker -> PS: fetch weights for ``keys`` at batch ``batch_id``."""

    TYPE = 0x01

    batch_id: int
    keys: np.ndarray  # u64[n]

    def encode_body(self) -> bytes:
        keys = np.ascontiguousarray(self.keys, dtype="<u8")
        return (
            struct.pack("<QI", self.batch_id, len(keys)) + keys.tobytes()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "PullRequest":
        if len(body) < 12:
            raise MessageError("truncated PullRequest")
        batch_id, nkeys = struct.unpack_from("<QI", body)
        expected = 12 + 8 * nkeys
        if len(body) != expected:
            raise MessageError(f"PullRequest length {len(body)}, want {expected}")
        keys = np.frombuffer(body, dtype="<u8", count=nkeys, offset=12)
        return cls(batch_id=batch_id, keys=keys.copy())


@dataclass(frozen=True)
class PullResponse:
    """PS -> worker: the requested weight rows plus cache statistics.

    The per-request ``hits`` / ``misses`` / ``created`` counters let the
    client aggregate real cache behaviour across shards instead of
    losing it at the wire boundary.
    """

    TYPE = 0x02

    batch_id: int
    weights: np.ndarray  # f32[n, dim]
    hits: int = 0
    misses: int = 0
    created: int = 0

    def encode_body(self) -> bytes:
        weights = np.ascontiguousarray(self.weights, dtype="<f4")
        if weights.ndim != 2:
            raise MessageError(f"weights must be 2-D, got shape {weights.shape}")
        n, dim = weights.shape
        return (
            struct.pack(
                "<QIIIII", self.batch_id, n, dim,
                self.hits, self.misses, self.created,
            )
            + weights.tobytes()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "PullResponse":
        if len(body) < 28:
            raise MessageError("truncated PullResponse")
        batch_id, n, dim, hits, misses, created = struct.unpack_from("<QIIIII", body)
        expected = 28 + 4 * n * dim
        if len(body) != expected:
            raise MessageError(f"PullResponse length {len(body)}, want {expected}")
        weights = np.frombuffer(body, dtype="<f4", count=n * dim, offset=28)
        return cls(
            batch_id=batch_id,
            weights=weights.reshape(n, dim).copy(),
            hits=hits,
            misses=misses,
            created=created,
        )


@dataclass(frozen=True)
class PushRequest:
    """Worker -> PS: gradients for ``keys`` at batch ``batch_id``.

    ``(worker_id, seq)`` is the at-most-once dedup identity: retried
    copies of one logical push carry the same header. ``seq == 0``
    opts out of dedup (callers that never retry).
    """

    TYPE = 0x03

    batch_id: int
    keys: np.ndarray  # u64[n]
    grads: np.ndarray  # f32[n, dim]
    worker_id: int = 0
    seq: int = 0

    def encode_body(self) -> bytes:
        keys = np.ascontiguousarray(self.keys, dtype="<u8")
        grads = np.ascontiguousarray(self.grads, dtype="<f4")
        if grads.ndim != 2 or grads.shape[0] != len(keys):
            raise MessageError(
                f"grads shape {grads.shape} inconsistent with {len(keys)} keys"
            )
        n, dim = grads.shape
        return (
            struct.pack(
                "<QIQII", self.batch_id, self.worker_id, self.seq, n, dim
            )
            + keys.tobytes()
            + grads.tobytes()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "PushRequest":
        if len(body) < 28:
            raise MessageError("truncated PushRequest")
        batch_id, worker_id, seq, n, dim = struct.unpack_from("<QIQII", body)
        expected = 28 + 8 * n + 4 * n * dim
        if len(body) != expected:
            raise MessageError(f"PushRequest length {len(body)}, want {expected}")
        keys = np.frombuffer(body, dtype="<u8", count=n, offset=28)
        grads = np.frombuffer(body, dtype="<f4", count=n * dim, offset=28 + 8 * n)
        return cls(
            batch_id=batch_id,
            keys=keys.copy(),
            grads=grads.reshape(n, dim).copy(),
            worker_id=worker_id,
            seq=seq,
        )

    @property
    def dedup_key(self) -> tuple[int, int] | None:
        """The at-most-once identity, or None when dedup is opted out."""
        if self.seq == 0:
            return None
        return (self.worker_id, self.seq)


@dataclass(frozen=True)
class CheckpointRequest:
    """Trainer -> PS: snapshot the state as of ``batch_id``.

    ``batch_id`` is signed on the wire so an untrained cluster's ``-1``
    travels to the server and comes back as a typed
    :class:`~repro.errors.CheckpointError` through the error-coded
    response path instead of failing opaquely client-side.
    """

    TYPE = 0x04

    batch_id: int

    def encode_body(self) -> bytes:
        return struct.pack("<q", self.batch_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "CheckpointRequest":
        if len(body) != 8:
            raise MessageError(f"CheckpointRequest length {len(body)}, want 8")
        return cls(batch_id=struct.unpack("<q", body)[0])


@dataclass(frozen=True)
class MaintainRequest:
    """Worker -> PS: run the deferred maintenance round for a batch.

    In the paper's system the maintainer threads live inside the PS
    process; this message is the trainer's *trigger* for the round (the
    batch boundary), so the remote client can account maintenance work
    exactly like the in-process server does. The operation is
    state-idempotent: a duplicate or retried trigger finds the batch's
    access queue already drained and performs no work.
    """

    TYPE = 0x06

    batch_id: int

    def encode_body(self) -> bytes:
        return struct.pack("<Q", self.batch_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "MaintainRequest":
        if len(body) != 8:
            raise MessageError(f"MaintainRequest length {len(body)}, want 8")
        return cls(batch_id=struct.unpack("<Q", body)[0])


@dataclass(frozen=True)
class MaintainResponse:
    """PS -> worker: the maintenance round's counters.

    Mirrors :class:`~repro.core.cache.MaintainResult`, so the remote
    client reports the same per-shard maintenance accounting as the
    in-process server instead of losing it at the wire boundary.
    """

    TYPE = 0x07

    batch_id: int
    processed: int = 0
    loads: int = 0
    flushes: int = 0
    evictions: int = 0
    checkpoints_completed: int = 0

    def encode_body(self) -> bytes:
        return struct.pack(
            "<QIIIII",
            self.batch_id,
            self.processed,
            self.loads,
            self.flushes,
            self.evictions,
            self.checkpoints_completed,
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "MaintainResponse":
        if len(body) != 28:
            raise MessageError(f"MaintainResponse length {len(body)}, want 28")
        batch_id, processed, loads, flushes, evictions, completed = struct.unpack(
            "<QIIIII", body
        )
        return cls(
            batch_id=batch_id,
            processed=processed,
            loads=loads,
            flushes=flushes,
            evictions=evictions,
            checkpoints_completed=completed,
        )


@dataclass(frozen=True)
class StatusResponse:
    """PS -> caller: an ack carrying a status code, integer and detail.

    Non-``OK`` codes are the wire-error discipline: server-side
    exceptions never cross the link as raw Python exceptions — they
    arrive as one of these codes plus a human-readable ``detail``, and
    :class:`~repro.network.rpc.RpcChannel` re-raises the matching typed
    error client-side. ``ERR_MESSAGE`` (the frame was damaged in
    flight) is the one *retryable* code: the client still holds the
    pristine frame, so resending can succeed.
    """

    TYPE = 0x05

    OK = 0
    ERR_INTERNAL = 1
    #: Backwards-compatible alias for the generic error code.
    ERROR = 1
    ERR_SERVER = 2
    ERR_CHECKPOINT = 3
    ERR_KEY_NOT_FOUND = 4
    ERR_ROUTING = 5
    ERR_MESSAGE = 6
    ERR_UNHANDLED = 7

    code: int
    value: int = 0
    detail: str = ""

    def encode_body(self) -> bytes:
        detail = self.detail.encode("utf-8")[:_MAX_DETAIL_BYTES]
        return struct.pack("<BqH", self.code, self.value, len(detail)) + detail

    @classmethod
    def decode_body(cls, body: bytes) -> "StatusResponse":
        if len(body) < 11:
            raise MessageError(f"StatusResponse length {len(body)}, want >= 11")
        code, value, detail_len = struct.unpack_from("<BqH", body)
        expected = 11 + detail_len
        if len(body) != expected:
            raise MessageError(f"StatusResponse length {len(body)}, want {expected}")
        detail = body[11:].decode("utf-8", errors="replace")
        return cls(code=code, value=value, detail=detail)

    @property
    def ok(self) -> bool:
        return self.code == self.OK

    @property
    def retryable(self) -> bool:
        """True when resending the same (pristine) frame can succeed."""
        return self.code == self.ERR_MESSAGE


_MESSAGE_TYPES = {
    cls.TYPE: cls
    for cls in (
        PullRequest,
        PullResponse,
        PushRequest,
        CheckpointRequest,
        StatusResponse,
        MaintainRequest,
        MaintainResponse,
    )
}


def encode_message(message) -> bytes:
    """Frame a message: type byte, length, body CRC32, body."""
    body = message.encode_body()
    return _HEADER.pack(message.TYPE, len(body), zlib.crc32(body)) + body


def decode_message(data: bytes):
    """Decode one framed message.

    Raises:
        MessageError: unknown type, truncation, trailing bytes, or a
            checksum mismatch (the frame was corrupted in flight).
    """
    if len(data) < _HEADER.size:
        raise MessageError(f"frame too short: {len(data)} bytes")
    msg_type, length, crc = _HEADER.unpack_from(data)
    body = data[_HEADER.size :]
    if len(body) != length:
        raise MessageError(f"frame body {len(body)} bytes, header says {length}")
    if zlib.crc32(body) != crc:
        raise MessageError(
            f"frame checksum mismatch (type 0x{msg_type:02x}, {length} bytes)"
        )
    if msg_type not in _MESSAGE_TYPES:
        raise MessageError(f"unknown message type 0x{msg_type:02x}")
    return _MESSAGE_TYPES[msg_type].decode_body(body)
