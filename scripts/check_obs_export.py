#!/usr/bin/env python
"""Validate observability exports produced by `repro simulate/train`.

Checks five artifact kinds against their schemas:

* Chrome ``trace_event`` JSON (``--trace``): event shape, metadata
  threads, microsecond timestamps, and — when the run used lookahead —
  that maintenance/prefetch spans genuinely overlap a GPU span on a
  different track (the Figure 7 property CI guards).
* Prometheus text (``--prom``): TYPE lines, cumulative monotone
  histogram buckets, ``_sum``/``_count`` presence.
* JSON metrics snapshot (``--snapshot``): ``repro-metrics-v1`` schema,
  per-entry field requirements, and that ``repro metrics`` can render
  it.
* Merged multi-node trace (``--merged``): ``repro-trace-merged-v1``
  schema from ``repro trace merge`` — at least two process tracks,
  each named, and every cross-node flow arrow fully paired (an ``f``
  finish for every ``s`` start and vice versa).
* Flight-recorder dump (``--flightrec``): ``repro-flightrec-v1``
  postmortem record — trigger/node identity, well-formed events in
  non-decreasing time order.
* BENCH trajectory (``--bench``): ``repro-bench-v1`` sweep records —
  full schema validation via ``repro.bench.validate_trajectory``, the
  filename matching the bench it claims, and (when the registry is
  importable) that the bench is registered and every ok run at some
  scale carries all of its declared headline metrics.
* Gate verdict (``--gate``): ``repro-bench-gate-v1`` machine-readable
  verdict from ``repro bench gate`` — check shape, self-consistent
  counts, and ``ok`` agreeing with the regression count.

Exit code 0 = all supplied artifacts valid; 1 = any check failed.

Usage::

    python scripts/check_obs_export.py --trace t.json --prom m.prom \
        --snapshot m.json [--require-overlap] \
        --merged merged.json --flightrec flightrec_promotion_1.json \
        --bench benchmarks/results/BENCH_prefetch.json --gate verdict.json
"""

from __future__ import annotations

import argparse
import json
import sys

TRACE_SCHEMA = "repro-trace-v1"
METRICS_SCHEMA = "repro-metrics-v1"
MERGED_TRACE_SCHEMA = "repro-trace-merged-v1"
FLIGHTREC_SCHEMA = "repro-flightrec-v1"

_errors: list[str] = []


def fail(message: str) -> None:
    _errors.append(message)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------


def check_trace(path: str, require_overlap: bool) -> None:
    with open(path) as fh:
        trace = json.load(fh)
    check(isinstance(trace, dict), "trace: top level must be an object")
    check(
        trace.get("otherData", {}).get("schema") == TRACE_SCHEMA,
        f"trace: otherData.schema must be {TRACE_SCHEMA}",
    )
    events = trace.get("traceEvents")
    check(isinstance(events, list) and events, "trace: traceEvents empty")
    if not isinstance(events, list):
        return
    phases = {"X", "i", "M"}
    for event in events:
        ph = event.get("ph")
        check(ph in phases, f"trace: unknown phase {ph!r}")
        if ph == "X":
            check(
                isinstance(event.get("ts"), (int, float))
                and isinstance(event.get("dur"), (int, float))
                and event["dur"] >= 0,
                f"trace: X event {event.get('name')!r} needs ts and dur >= 0",
            )
        if ph == "i":
            check(
                isinstance(event.get("ts"), (int, float)),
                f"trace: instant {event.get('name')!r} needs ts",
            )
    threads = {
        event["args"]["name"]
        for event in events
        if event.get("ph") == "M" and event.get("name") == "thread_name"
    }
    check(bool(threads), "trace: no thread_name metadata")

    if require_overlap:
        gpu = [e for e in events if e.get("name") == "gpu.compute"]
        hidden = [
            e
            for e in events
            if e.get("name") in ("maintain.deferred", "prefetch.pull")
        ]
        check(bool(gpu), "trace: --require-overlap but no gpu.compute spans")
        check(bool(hidden), "trace: --require-overlap but no maintainer spans")
        overlapping = any(
            g["tid"] != h["tid"]
            and g["ts"] <= h["ts"] < g["ts"] + g["dur"]
            for g in gpu
            for h in hidden
        )
        check(
            overlapping,
            "trace: no maintainer-track span overlaps a gpu.compute span "
            "(the Figure 7 property)",
        )


# ----------------------------------------------------------------------
# Prometheus text
# ----------------------------------------------------------------------


def check_prometheus(path: str) -> None:
    with open(path) as fh:
        text = fh.read()
    lines = [line for line in text.splitlines() if line.strip()]
    check(bool(lines), "prom: file is empty")
    typed: dict[str, str] = {}
    for line in lines:
        if line.startswith("# TYPE "):
            __, __, name, kind = line.split(" ", 3)
            typed[name] = kind
            continue
        check(
            not line.startswith("#"), f"prom: unexpected comment {line!r}"
        )
        metric = line.split("{", 1)[0].split(" ", 1)[0]
        base = metric
        for suffix in ("_bucket", "_sum", "_count", "_quantile"):
            if metric.endswith(suffix):
                base = metric[: -len(suffix)]
                break
        check(
            base in typed,
            f"prom: series {metric!r} has no preceding # TYPE line",
        )
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = [
            line
            for line in lines
            if line.startswith(f"{name}_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in buckets]
        check(
            counts == sorted(counts),
            f"prom: histogram {name!r} buckets are not cumulative-monotone",
        )
        check(
            any(line.startswith(f"{name}_sum") for line in lines)
            and any(line.startswith(f"{name}_count") for line in lines),
            f"prom: histogram {name!r} missing _sum/_count",
        )


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------


def check_snapshot(path: str) -> None:
    with open(path) as fh:
        snapshot = json.load(fh)
    check(
        snapshot.get("schema") == METRICS_SCHEMA,
        f"snapshot: schema must be {METRICS_SCHEMA}",
    )
    metrics = snapshot.get("metrics")
    check(isinstance(metrics, list) and metrics, "snapshot: metrics empty")
    if not isinstance(metrics, list):
        return
    for entry in metrics:
        name = entry.get("name", "?")
        check(
            entry.get("type") in ("counter", "gauge", "histogram"),
            f"snapshot: {name}: bad type {entry.get('type')!r}",
        )
        check(
            isinstance(entry.get("labels"), dict),
            f"snapshot: {name}: labels must be an object",
        )
        if entry.get("type") == "histogram":
            for field in ("count", "sum", "p50", "p95", "p99", "max", "buckets"):
                check(field in entry, f"snapshot: {name}: missing {field!r}")
        else:
            check("value" in entry, f"snapshot: {name}: missing value")
    # The renderer must accept what the exporter wrote.
    try:
        from repro.obs import render_snapshot

        rendered = render_snapshot(snapshot)
        check(bool(rendered.strip()), "snapshot: renderer produced nothing")
    except ImportError:
        fail("snapshot: repro.obs not importable (set PYTHONPATH=src)")
    except ValueError as exc:
        fail(f"snapshot: renderer rejected the file: {exc}")


# ----------------------------------------------------------------------
# Merged multi-node trace
# ----------------------------------------------------------------------


def check_merged(path: str) -> None:
    with open(path) as fh:
        trace = json.load(fh)
    check(isinstance(trace, dict), "merged: top level must be an object")
    other = trace.get("otherData", {})
    check(
        other.get("schema") == MERGED_TRACE_SCHEMA,
        f"merged: otherData.schema must be {MERGED_TRACE_SCHEMA}",
    )
    check(
        isinstance(other.get("sources"), list) and len(other["sources"]) >= 1,
        "merged: otherData.sources missing",
    )
    events = trace.get("traceEvents")
    check(isinstance(events, list) and events, "merged: traceEvents empty")
    if not isinstance(events, list):
        return
    pids = {e.get("pid") for e in events}
    check(len(pids) >= 2, "merged: fewer than two process tracks (pids)")
    named = {
        e.get("pid")
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    check(
        pids <= named,
        f"merged: pids without a process_name: {sorted(pids - named)}",
    )
    starts = {
        e.get("id") for e in events if e.get("ph") == "s"
    }
    finishes = {
        e.get("id") for e in events if e.get("ph") == "f"
    }
    check(
        starts == finishes,
        f"merged: unpaired flow events (starts only: "
        f"{sorted(starts - finishes)}, finishes only: "
        f"{sorted(finishes - starts)})",
    )
    declared = other.get("flows")
    check(
        declared == len(starts),
        f"merged: otherData.flows={declared} but {len(starts)} flow ids",
    )
    for event in events:
        if event.get("ph") in ("s", "f"):
            check(
                isinstance(event.get("ts"), (int, float))
                and event.get("id"),
                "merged: flow event needs ts and id",
            )


# ----------------------------------------------------------------------
# Flight-recorder dump
# ----------------------------------------------------------------------


def check_flightrec(path: str) -> None:
    with open(path) as fh:
        dump = json.load(fh)
    check(isinstance(dump, dict), "flightrec: top level must be an object")
    check(
        dump.get("schema") == FLIGHTREC_SCHEMA,
        f"flightrec: schema must be {FLIGHTREC_SCHEMA}",
    )
    for field in ("node", "trigger"):
        check(
            isinstance(dump.get(field), str) and dump[field],
            f"flightrec: missing {field!r}",
        )
    check(isinstance(dump.get("t"), (int, float)), "flightrec: missing t")
    for field in ("recorded", "dropped"):
        check(
            isinstance(dump.get(field), int) and dump[field] >= 0,
            f"flightrec: {field!r} must be a non-negative integer",
        )
    events = dump.get("events")
    check(isinstance(events, list) and events, "flightrec: events empty")
    if not isinstance(events, list):
        return
    last_t = float("-inf")
    for event in events:
        check(
            isinstance(event.get("t"), (int, float))
            and isinstance(event.get("kind"), str)
            and isinstance(event.get("name"), str),
            f"flightrec: malformed event {event!r}",
        )
        t = event.get("t")
        if isinstance(t, (int, float)):
            check(
                t >= last_t,
                f"flightrec: events out of time order at t={t}",
            )
            last_t = t


# ----------------------------------------------------------------------
# BENCH trajectory
# ----------------------------------------------------------------------

BENCH_SCHEMA = "repro-bench-v1"
GATE_SCHEMA = "repro-bench-gate-v1"


def check_bench(path: str) -> None:
    import pathlib

    with open(path) as fh:
        payload = json.load(fh)
    try:
        from repro.bench import validate_trajectory
    except ImportError:
        fail("bench: repro.bench not importable (set PYTHONPATH=src)")
        return
    for error in validate_trajectory(payload):
        fail(f"bench: {error}")
    bench = payload.get("bench")
    if isinstance(bench, str) and bench:
        expected = f"BENCH_{bench}.json"
        actual = pathlib.Path(path).name
        check(
            actual == expected,
            f"bench: file {actual!r} holds bench {bench!r} "
            f"(expected name {expected!r})",
        )
    try:
        from repro.bench import REGISTRY, discover

        discover()
    except Exception:
        return  # no checkout next to the package: schema checks only
    if not (isinstance(bench, str) and bench in REGISTRY):
        fail(f"bench: {bench!r} is not a registered benchmark")
        return
    headline = set(REGISTRY.get(bench).headline)
    for index, run in enumerate(payload.get("runs", [])):
        if not isinstance(run, dict) or run.get("status") != "ok":
            continue
        missing = headline - set(run.get("metrics", {}))
        check(
            not missing,
            f"bench: runs[{index}] missing headline metrics {sorted(missing)}",
        )


def check_gate(path: str) -> None:
    with open(path) as fh:
        verdict = json.load(fh)
    check(isinstance(verdict, dict), "gate: top level must be an object")
    if not isinstance(verdict, dict):
        return
    check(
        verdict.get("schema") == GATE_SCHEMA,
        f"gate: schema must be {GATE_SCHEMA}",
    )
    check(verdict.get("scale") in ("smoke", "full"), "gate: bad scale")
    check(isinstance(verdict.get("ok"), bool), "gate: 'ok' must be a boolean")
    checks = verdict.get("checks")
    counts = verdict.get("counts")
    check(isinstance(checks, list), "gate: 'checks' must be a list")
    check(isinstance(counts, dict), "gate: 'counts' must be an object")
    if not isinstance(checks, list) or not isinstance(counts, dict):
        return
    statuses = ("pass", "improved", "within-noise", "regression")
    for index, entry in enumerate(checks):
        where = f"gate: checks[{index}]"
        if not isinstance(entry, dict):
            fail(f"{where}: must be an object")
            continue
        check(entry.get("status") in statuses, f"{where}: bad status")
        check(
            isinstance(entry.get("bench"), str) and entry["bench"],
            f"{where}: missing bench",
        )
        check("detail" in entry, f"{where}: missing detail")
    regressions = sum(
        1
        for entry in checks
        if isinstance(entry, dict) and entry.get("status") == "regression"
    )
    check(
        counts.get("total") == len(checks),
        f"gate: counts.total={counts.get('total')} but {len(checks)} checks",
    )
    check(
        counts.get("regressions") == regressions,
        f"gate: counts.regressions={counts.get('regressions')} "
        f"but {regressions} regression checks",
    )
    check(
        verdict.get("ok") == (regressions == 0),
        "gate: 'ok' disagrees with the regression count",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome trace_event JSON file")
    parser.add_argument("--prom", help="Prometheus text export")
    parser.add_argument("--snapshot", help="JSON metrics snapshot")
    parser.add_argument(
        "--require-overlap",
        action="store_true",
        help="fail unless maintainer spans overlap gpu.compute in the trace",
    )
    parser.add_argument(
        "--merged", help="merged multi-node trace from `repro trace merge`"
    )
    parser.add_argument(
        "--flightrec", help="flight-recorder postmortem dump JSON"
    )
    parser.add_argument(
        "--bench",
        action="append",
        help="repro-bench-v1 BENCH_<name>.json trajectory (repeatable)",
    )
    parser.add_argument(
        "--gate", help="repro-bench-gate-v1 verdict from `repro bench gate`"
    )
    args = parser.parse_args(argv)
    artifacts = (
        args.trace, args.prom, args.snapshot, args.merged, args.flightrec,
        *(args.bench or []), args.gate,
    )
    if not any(artifacts):
        parser.error(
            "give at least one of --trace/--prom/--snapshot/--merged/"
            "--flightrec/--bench/--gate"
        )
    if args.trace:
        check_trace(args.trace, args.require_overlap)
    if args.prom:
        check_prometheus(args.prom)
    if args.snapshot:
        check_snapshot(args.snapshot)
    if args.merged:
        check_merged(args.merged)
    if args.flightrec:
        check_flightrec(args.flightrec)
    for bench_path in args.bench or []:
        check_bench(bench_path)
    if args.gate:
        check_gate(args.gate)
    if _errors:
        for message in _errors:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    checked = sum(bool(x) for x in artifacts)
    print(f"ok: {checked} artifact(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
