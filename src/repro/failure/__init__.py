"""Failure injection and checkpoint-interval planning.

* :mod:`repro.failure.injection` — deterministic and random crash
  schedules for end-to-end recovery testing.
* :mod:`repro.failure.mttf` — Young's formula (the paper's Section
  VI-A basis for the 20-minute default interval) and expected lost-work
  accounting.
"""

from repro.failure.injection import CrashSchedule, FailureInjector
from repro.failure.mttf import expected_lost_work_seconds, young_interval_seconds

__all__ = [
    "FailureInjector",
    "CrashSchedule",
    "young_interval_seconds",
    "expected_lost_work_seconds",
]
