"""Exporters: Prometheus text, JSON snapshot, Chrome trace, rendering."""

import json

import pytest

from repro.config import CacheConfig, PrefetchConfig, ServerConfig
from repro.obs import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    MetricsRegistry,
    Tracer,
    render_snapshot,
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus,
    write_chrome_trace,
    write_metrics,
)
from repro.simulation.clock import SimClock
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_pulls_total", {"node": "0"}).add(12)
    registry.gauge("repro_cache_miss_rate", {"node": "0"}).set(0.25)
    hist = registry.histogram("repro_pull_latency_seconds")
    for v in (1e-5, 2e-5, 1e-4):
        hist.observe(v)
    return registry


class TestPrometheus:
    def test_type_lines_and_series(self):
        text = to_prometheus(_registry())
        assert "# TYPE repro_pulls_total counter" in text
        assert 'repro_pulls_total{node="0"} 12' in text
        assert "# TYPE repro_cache_miss_rate gauge" in text
        assert "# TYPE repro_pull_latency_seconds histogram" in text

    def test_histogram_bucket_sum_count_quantiles(self):
        text = to_prometheus(_registry())
        assert 'repro_pull_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_pull_latency_seconds_sum" in text
        assert "repro_pull_latency_seconds_count 3" in text
        assert 'repro_pull_latency_seconds_quantile{quantile="0.99"}' in text

    def test_buckets_cumulative_and_sorted(self):
        text = to_prometheus(_registry())
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_pull_latency_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 3


class TestJsonSnapshot:
    def test_schema_and_roundtrip(self, tmp_path):
        registry = _registry()
        snapshot = to_json_snapshot(registry)
        assert snapshot["schema"] == METRICS_SCHEMA
        path = tmp_path / "m.json"
        assert write_metrics(registry, str(path)) == "json"
        assert json.loads(path.read_text()) == snapshot

    def test_extension_selects_format(self, tmp_path):
        registry = _registry()
        path = tmp_path / "m.prom"
        assert write_metrics(registry, str(path)) == "prometheus"
        assert path.read_text().startswith("# TYPE")

    def test_histogram_entry_has_quantiles(self):
        snapshot = to_json_snapshot(_registry())
        (hist,) = [m for m in snapshot["metrics"] if m["type"] == "histogram"]
        assert {"count", "p50", "p95", "p99", "max", "buckets"} <= hist.keys()


class TestChromeTrace:
    def test_spans_instants_and_thread_names(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", keys=3):
            clock.advance(0.001)
        tracer.instant("mark", track="pmem")
        trace = to_chrome_trace(tracer)
        events = trace["traceEvents"]
        assert trace["otherData"]["schema"] == TRACE_SCHEMA
        x = [e for e in events if e["ph"] == "X"]
        i = [e for e in events if e["ph"] == "i"]
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(x) == 1 and x[0]["dur"] == pytest.approx(1000.0)
        assert len(i) == 1
        assert {m["args"]["name"] for m in names} == {"main", "pmem"}

    def test_write_returns_event_count(self, tmp_path):
        tracer = Tracer(clock=SimClock())
        tracer.add_span("a", start=0.0, duration=1.0)
        path = tmp_path / "t.json"
        count = write_chrome_trace(tracer, str(path))
        data = json.loads(path.read_text())
        assert count == len(data["traceEvents"])

    def test_simulated_run_shows_overlap(self):
        """Figure 7: prefetch + deferred maintenance under GPU compute."""
        tracer = Tracer()
        simulator = TrainingSimulator(
            SystemKind.PMEM_OE,
            server=ServerConfig(embedding_dim=8, pmem_capacity_bytes=1 << 24),
            cache=CacheConfig(capacity_bytes=1 << 16),
            workload=WorkloadGenerator(),
            prefetch=PrefetchConfig(lookahead=2),
            tracer=tracer,
        )
        simulator.run(8)
        trace = to_chrome_trace(tracer)
        events = trace["traceEvents"]

        def on(name):
            return [e for e in events if e.get("name") == name]

        gpu, maintain = on("gpu.compute"), on("maintain.deferred")
        assert gpu and maintain
        g, m = gpu[0], maintain[0]
        # Same wall interval, different tracks -> visibly overlapping.
        assert g["tid"] != m["tid"]
        assert g["ts"] <= m["ts"] < g["ts"] + g["dur"]
        assert on("prefetch.pull"), "lookahead pulls must appear in the trace"


class TestRenderSnapshot:
    def test_renders_tables_and_breakdown(self):
        registry = _registry()
        registry.counter("repro_phase_seconds_total", {"phase": "gpu"}).add(3.0)
        registry.counter("repro_phase_seconds_total", {"phase": "net_pull"}).add(1.0)
        out = render_snapshot(to_json_snapshot(registry))
        assert "histograms" in out
        assert "per-layer time breakdown" in out
        assert "gpu" in out and "75.0%" in out
        assert "repro_pulls_total{node=0}" in out

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            render_snapshot({"schema": "bogus", "metrics": []})
