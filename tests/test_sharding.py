"""Hash partitioning: stability, coverage, balance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import (
    ConsistentHashRing,
    HashPartitioner,
    make_partitioner,
    mix64,
)
from repro.errors import ConfigError


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_inputs_rarely_collide(self):
        outputs = {mix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_stays_in_64_bits(self):
        assert 0 <= mix64(2**63) < 2**64


class TestPartitioner:
    def test_single_node_takes_everything(self):
        part = HashPartitioner(1)
        assert all(part.node_of(k) == 0 for k in range(100))

    def test_node_in_range(self):
        part = HashPartitioner(7)
        assert all(0 <= part.node_of(k) < 7 for k in range(1000))

    def test_stable_across_instances(self):
        a, b = HashPartitioner(5), HashPartitioner(5)
        assert [a.node_of(k) for k in range(100)] == [b.node_of(k) for k in range(100)]

    def test_roughly_balanced(self):
        part = HashPartitioner(4)
        counts = [0] * 4
        for key in range(40_000):
            counts[part.node_of(key)] += 1
        for count in counts:
            assert abs(count - 10_000) < 600  # within ~6 %

    def test_invalid_node_count(self):
        with pytest.raises(ConfigError):
            HashPartitioner(0)

    def test_split_positions_reassemble(self):
        part = HashPartitioner(3)
        keys = [5, 17, 5, 99, 3]
        per_node_keys, per_node_positions = part.split(keys)
        reassembled = [None] * len(keys)
        for node_keys, positions in zip(per_node_keys, per_node_positions):
            for key, position in zip(node_keys, positions):
                reassembled[position] = key
        assert reassembled == keys

    @given(st.lists(st.integers(0, 2**40), max_size=200), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_split_covers_exactly_once(self, keys, nodes):
        part = HashPartitioner(nodes)
        per_node_keys, per_node_positions = part.split(keys)
        all_positions = sorted(p for ps in per_node_positions for p in ps)
        assert all_positions == list(range(len(keys)))
        for node, (node_keys, positions) in enumerate(
            zip(per_node_keys, per_node_positions)
        ):
            for key, position in zip(node_keys, positions):
                assert keys[position] == key
                assert part.node_of(key) == node


class TestConsistentHashRing:
    """Interface-level ring checks; the movement/determinism properties
    live in ``tests/test_ring_properties.py``."""

    def test_same_interface_as_modulo(self):
        ring = ConsistentHashRing(4, vnodes=32)
        assert all(0 <= ring.node_of(k) < 4 for k in range(1000))
        keys = [5, 17, 5, 99, 3]
        per_node_keys, per_node_positions = ring.split(keys)
        reassembled = [None] * len(keys)
        for node_keys, positions in zip(per_node_keys, per_node_positions):
            for key, position in zip(node_keys, positions):
                reassembled[position] = key
        assert reassembled == keys

    def test_single_node_takes_everything(self):
        ring = ConsistentHashRing(1, vnodes=8)
        assert all(ring.node_of(k) == 0 for k in range(200))

    def test_roughly_balanced_with_enough_vnodes(self):
        ring = ConsistentHashRing(4, vnodes=128)
        counts = [0] * 4
        for key in range(40_000):
            counts[ring.node_of(key)] += 1
        for count in counts:
            assert abs(count - 10_000) < 2_500  # within ~25 %

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ConsistentHashRing(0, vnodes=8)
        with pytest.raises(ConfigError):
            ConsistentHashRing(3, vnodes=0)


class TestMakePartitioner:
    def test_dispatch(self):
        assert type(make_partitioner("modulo", 3)) is HashPartitioner
        ring = make_partitioner("ring", 3, vnodes=16)
        assert isinstance(ring, ConsistentHashRing)
        assert ring.vnodes == 16

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown partitioner"):
            make_partitioner("rendezvous", 3)
