"""Binary wire messages for the PS protocol.

Every message is ``[1-byte type][4-byte LE body length][4-byte CRC32 of
body][body]``; bodies pack fixed little-endian headers followed by raw
numpy buffers, so the byte counts the simulator charges are the byte
counts a real implementation would move. When the high bit of the type
byte (:data:`CONTEXT_FLAG`) is set, a 17-byte :class:`TraceContext`
prefix (``trace_id u64, parent_span_id u64, sampled u8``) sits between
the header and the body and is covered by the CRC — see
:func:`decode_envelope`. Context-free frames are unchanged, so old
decoders and obs-off traffic are unaffected. The checksum makes in-flight
corruption (see :class:`~repro.failure.network_faults.FaultyLink`)
always detectable: a corrupt frame decodes to :class:`MessageError`,
never to silently wrong weights.

Message catalogue:

======================  ====  =======================================
Message                 Type  Body
======================  ====  =======================================
PullRequest             0x01  batch_id u64, worker_id i32, progress i64,
                              nkeys u32, keys u64[n]
PullResponse            0x02  batch_id u64, nkeys u32, dim u32,
                              hits u32, misses u32, created u32,
                              weights f32[n*dim]
PushRequest             0x03  batch_id u64, worker_id u32, seq u64,
                              nkeys u32, dim u32,
                              keys u64[n], grads f32[n*dim]
CheckpointRequest       0x04  batch_id i64
StatusResponse          0x05  code u8, value i64, detail_len u16,
                              detail utf-8[detail_len]
MaintainRequest         0x06  batch_id u64
MaintainResponse        0x07  batch_id u64, processed u32, loads u32,
                              flushes u32, evictions u32,
                              checkpoints_completed u32
MigrateRequest          0x08  op u8, source u32, seq u64, width u32,
                              count u32, then keys u64[n] (EXPORT /
                              DELETE) or the columnar entry block
                              (PUT): keys u64[n], nversions u32[n],
                              batch_ids i64[total], f32[total*width]
MigrateResponse         0x09  width u32, count u32, columnar entry
                              block (EXPORT reply)
RingUpdateRequest       0x0A  requester u32 (reply: StatusResponse
                              whose value is the packed ring state)
HeartbeatRequest        0x0B  node_id u32, requester u32 (reply:
                              StatusResponse, value = latest batch;
                              a dead primary answers with silence)
PromoteRequest          0x0C  node_id u32, committed_epoch i64,
                              requester u32 (reply: StatusResponse,
                              value = latest batch after promotion)
LookupRequest           0x0D  snapshot_id i64, replica u8, pad[3],
                              nkeys u32, keys u64[n]
LookupResponse          0x0E  snapshot_id i64, nkeys u32, dim u32,
                              hits u32, cold u32, weights f32[n*dim]
======================  ====  =======================================

``PushRequest``'s ``(worker_id, seq)`` header gives the server a dedup
identity: a retried push (the client never learned whether its first
copy applied) carries the same header, and
:class:`~repro.network.frontend.PSNodeService` suppresses the replay —
at-most-once gradient application under at-least-once delivery.
``seq == 0`` means "no dedup identity" (raw protocol users).

Ownership contract (zero-copy decode): array fields of decoded
messages — ``keys``, ``grads``, ``weights``, migration ``stored`` rows
— are **read-only views into the received frame**, not fresh arrays.
Decoding a frame costs one CRC pass and a few ``np.frombuffer`` view
constructions, never a payload copy. Consumers that need to mutate (or
outlive the frame) must copy explicitly; writing through a view raises
``ValueError: assignment destination is read-only``, so a violation is
loud, not silent. Bulk encoders likewise assemble the body in a single
buffer with ``pack_into`` instead of concatenating per-field ``bytes``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

_HEADER = struct.Struct("<BII")

_MAX_DETAIL_BYTES = 512
"""Status detail strings are truncated to keep error frames bounded."""


class MessageError(ReproError):
    """Malformed or unexpected wire message."""


@dataclass(frozen=True)
class PullRequest:
    """Worker -> PS: fetch weights for ``keys`` at batch ``batch_id``.

    ``worker_id`` / ``progress`` identify the caller for the PS-side
    bounded-staleness admission check: ``progress`` is the number of
    batches the worker has completed, and the PS rejects the pull with
    :data:`StatusResponse.ERR_STALENESS` when that progress is more
    than the configured bound behind the slowest other admitted worker.
    ``worker_id=-1`` (the default) means anonymous — no progress is
    recorded and the pull is always admitted, which keeps the
    synchronous trainers and the serving tier byte-compatible with the
    pre-staleness wire semantics.
    """

    TYPE = 0x01

    batch_id: int
    keys: np.ndarray  # u64[n]
    worker_id: int = -1  # i32; -1 = anonymous (no admission tracking)
    progress: int = -1  # i64; batches completed by the caller

    _HEADER = "<QiqI"
    _HEADER_LEN = struct.calcsize(_HEADER)  # 24, keeps keys 8-aligned

    def encode_body(self) -> bytes:
        keys = np.ascontiguousarray(self.keys, dtype="<u8")
        body = bytearray(self._HEADER_LEN + keys.nbytes)
        struct.pack_into(
            self._HEADER, body, 0,
            self.batch_id, self.worker_id, self.progress, len(keys),
        )
        body[self._HEADER_LEN:] = memoryview(keys).cast("B")
        return body

    @classmethod
    def decode_body(cls, body) -> "PullRequest":
        if len(body) < cls._HEADER_LEN:
            raise MessageError("truncated PullRequest")
        batch_id, worker_id, progress, nkeys = struct.unpack_from(
            cls._HEADER, body
        )
        expected = cls._HEADER_LEN + 8 * nkeys
        if len(body) != expected:
            raise MessageError(f"PullRequest length {len(body)}, want {expected}")
        # Read-only view into the frame (ownership contract above).
        keys = np.frombuffer(
            body, dtype="<u8", count=nkeys, offset=cls._HEADER_LEN
        )
        return cls(
            batch_id=batch_id, keys=keys, worker_id=worker_id, progress=progress
        )


@dataclass(frozen=True)
class PullResponse:
    """PS -> worker: the requested weight rows plus cache statistics.

    The per-request ``hits`` / ``misses`` / ``created`` counters let the
    client aggregate real cache behaviour across shards instead of
    losing it at the wire boundary.
    """

    TYPE = 0x02

    batch_id: int
    weights: np.ndarray  # f32[n, dim]
    hits: int = 0
    misses: int = 0
    created: int = 0

    def encode_body(self) -> bytes:
        weights = np.ascontiguousarray(self.weights, dtype="<f4")
        if weights.ndim != 2:
            raise MessageError(f"weights must be 2-D, got shape {weights.shape}")
        n, dim = weights.shape
        body = bytearray(28 + weights.nbytes)
        struct.pack_into(
            "<QIIIII", body, 0, self.batch_id, n, dim,
            self.hits, self.misses, self.created,
        )
        body[28:] = memoryview(weights).cast("B")
        return body

    @classmethod
    def decode_body(cls, body) -> "PullResponse":
        if len(body) < 28:
            raise MessageError("truncated PullResponse")
        batch_id, n, dim, hits, misses, created = struct.unpack_from("<QIIIII", body)
        expected = 28 + 4 * n * dim
        if len(body) != expected:
            raise MessageError(f"PullResponse length {len(body)}, want {expected}")
        # Read-only view into the frame (ownership contract above).
        weights = np.frombuffer(body, dtype="<f4", count=n * dim, offset=28)
        return cls(
            batch_id=batch_id,
            weights=weights.reshape(n, dim),
            hits=hits,
            misses=misses,
            created=created,
        )


@dataclass(frozen=True)
class PushRequest:
    """Worker -> PS: gradients for ``keys`` at batch ``batch_id``.

    ``(worker_id, seq)`` is the at-most-once dedup identity: retried
    copies of one logical push carry the same header. ``seq == 0``
    opts out of dedup (callers that never retry).
    """

    TYPE = 0x03

    batch_id: int
    keys: np.ndarray  # u64[n]
    grads: np.ndarray  # f32[n, dim]
    worker_id: int = 0
    seq: int = 0

    def encode_body(self) -> bytes:
        keys = np.ascontiguousarray(self.keys, dtype="<u8")
        grads = np.ascontiguousarray(self.grads, dtype="<f4")
        if grads.ndim != 2 or grads.shape[0] != len(keys):
            raise MessageError(
                f"grads shape {grads.shape} inconsistent with {len(keys)} keys"
            )
        n, dim = grads.shape
        body = bytearray(28 + keys.nbytes + grads.nbytes)
        struct.pack_into(
            "<QIQII", body, 0, self.batch_id, self.worker_id, self.seq, n, dim
        )
        body[28 : 28 + keys.nbytes] = memoryview(keys).cast("B")
        body[28 + keys.nbytes :] = memoryview(grads).cast("B")
        return body

    @classmethod
    def decode_body(cls, body) -> "PushRequest":
        if len(body) < 28:
            raise MessageError("truncated PushRequest")
        batch_id, worker_id, seq, n, dim = struct.unpack_from("<QIQII", body)
        expected = 28 + 8 * n + 4 * n * dim
        if len(body) != expected:
            raise MessageError(f"PushRequest length {len(body)}, want {expected}")
        # Read-only views into the frame (ownership contract above): the
        # update path aggregates into fresh arrays and never writes back
        # through these.
        keys = np.frombuffer(body, dtype="<u8", count=n, offset=28)
        grads = np.frombuffer(body, dtype="<f4", count=n * dim, offset=28 + 8 * n)
        return cls(
            batch_id=batch_id,
            keys=keys,
            grads=grads.reshape(n, dim),
            worker_id=worker_id,
            seq=seq,
        )

    @property
    def dedup_key(self) -> tuple[int, int] | None:
        """The at-most-once identity, or None when dedup is opted out."""
        if self.seq == 0:
            return None
        return (self.worker_id, self.seq)


@dataclass(frozen=True)
class CheckpointRequest:
    """Trainer -> PS: snapshot the state as of ``batch_id``.

    ``batch_id`` is signed on the wire so an untrained cluster's ``-1``
    travels to the server and comes back as a typed
    :class:`~repro.errors.CheckpointError` through the error-coded
    response path instead of failing opaquely client-side.
    """

    TYPE = 0x04

    batch_id: int

    def encode_body(self) -> bytes:
        return struct.pack("<q", self.batch_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "CheckpointRequest":
        if len(body) != 8:
            raise MessageError(f"CheckpointRequest length {len(body)}, want 8")
        return cls(batch_id=struct.unpack("<q", body)[0])


@dataclass(frozen=True)
class MaintainRequest:
    """Worker -> PS: run the deferred maintenance round for a batch.

    In the paper's system the maintainer threads live inside the PS
    process; this message is the trainer's *trigger* for the round (the
    batch boundary), so the remote client can account maintenance work
    exactly like the in-process server does. The operation is
    state-idempotent: a duplicate or retried trigger finds the batch's
    access queue already drained and performs no work.
    """

    TYPE = 0x06

    batch_id: int

    def encode_body(self) -> bytes:
        return struct.pack("<Q", self.batch_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "MaintainRequest":
        if len(body) != 8:
            raise MessageError(f"MaintainRequest length {len(body)}, want 8")
        return cls(batch_id=struct.unpack("<Q", body)[0])


@dataclass(frozen=True)
class MaintainResponse:
    """PS -> worker: the maintenance round's counters.

    Mirrors :class:`~repro.core.cache.MaintainResult`, so the remote
    client reports the same per-shard maintenance accounting as the
    in-process server instead of losing it at the wire boundary.
    """

    TYPE = 0x07

    batch_id: int
    processed: int = 0
    loads: int = 0
    flushes: int = 0
    evictions: int = 0
    checkpoints_completed: int = 0

    def encode_body(self) -> bytes:
        return struct.pack(
            "<QIIIII",
            self.batch_id,
            self.processed,
            self.loads,
            self.flushes,
            self.evictions,
            self.checkpoints_completed,
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "MaintainResponse":
        if len(body) != 28:
            raise MessageError(f"MaintainResponse length {len(body)}, want 28")
        batch_id, processed, loads, flushes, evictions, completed = struct.unpack(
            "<QIIIII", body
        )
        return cls(
            batch_id=batch_id,
            processed=processed,
            loads=loads,
            flushes=flushes,
            evictions=evictions,
            checkpoints_completed=completed,
        )


@dataclass(frozen=True)
class StatusResponse:
    """PS -> caller: an ack carrying a status code, integer and detail.

    Non-``OK`` codes are the wire-error discipline: server-side
    exceptions never cross the link as raw Python exceptions — they
    arrive as one of these codes plus a human-readable ``detail``, and
    :class:`~repro.network.rpc.RpcChannel` re-raises the matching typed
    error client-side. ``ERR_MESSAGE`` (the frame was damaged in
    flight) is the one *retryable* code: the client still holds the
    pristine frame, so resending can succeed.
    """

    TYPE = 0x05

    OK = 0
    ERR_INTERNAL = 1
    #: Backwards-compatible alias for the generic error code.
    ERROR = 1
    ERR_SERVER = 2
    ERR_CHECKPOINT = 3
    ERR_KEY_NOT_FOUND = 4
    ERR_ROUTING = 5
    ERR_MESSAGE = 6
    ERR_UNHANDLED = 7
    #: Promotion impossible: double fault — both replicas of the shard
    #: are gone; the caller must fall back to checkpoint recovery.
    ERR_FAILOVER = 8
    #: Bounded-staleness admission rejected the pull: the caller's
    #: progress is more than the configured bound behind the slowest
    #: other admitted worker. Not retryable as-is — the same frame
    #: carries the same stale progress; the worker must fast-forward.
    ERR_STALENESS = 9

    code: int
    value: int = 0
    detail: str = ""

    def encode_body(self) -> bytes:
        detail = self.detail.encode("utf-8")
        if len(detail) > _MAX_DETAIL_BYTES:
            # Truncate at a character boundary: a raw byte slice can cut
            # a multibyte UTF-8 sequence in half, making the frame decode
            # to U+FFFD garbage. ``errors="ignore"`` drops only the
            # trailing partial sequence (the input is valid UTF-8).
            detail = (
                detail[:_MAX_DETAIL_BYTES]
                .decode("utf-8", errors="ignore")
                .encode("utf-8")
            )
        return struct.pack("<BqH", self.code, self.value, len(detail)) + detail

    @classmethod
    def decode_body(cls, body) -> "StatusResponse":
        if len(body) < 11:
            raise MessageError(f"StatusResponse length {len(body)}, want >= 11")
        code, value, detail_len = struct.unpack_from("<BqH", body)
        expected = 11 + detail_len
        if len(body) != expected:
            raise MessageError(f"StatusResponse length {len(body)}, want {expected}")
        detail = bytes(body[11:]).decode("utf-8", errors="replace")
        return cls(code=code, value=value, detail=detail)

    @property
    def ok(self) -> bool:
        return self.code == self.OK

    @property
    def retryable(self) -> bool:
        """True when resending the same (pristine) frame can succeed."""
        return self.code == self.ERR_MESSAGE


def _encode_entries(entries, width: int) -> bytes:
    """Pack ``[(key, [(batch_id, stored), ...]), ...]`` (migration payload).

    Columnar layout: ``keys u64[count]``, ``nversions u32[count]``,
    ``batch_ids i64[total]``, ``payload f32[total * width]`` — four raw
    buffers instead of per-key-per-version struct packing, so encoding
    a large transfer is four ``tobytes`` calls, not thousands.

    ``width`` is the float count of each stored array (weights +
    optimizer state); ``0`` means metadata-only (no payload floats).
    """
    count = len(entries)
    keys = np.empty(count, dtype="<u8")
    nversions = np.empty(count, dtype="<u4")
    batch_ids: list[int] = []
    payloads: list[np.ndarray] = []
    for i, (key, versions) in enumerate(entries):
        keys[i] = int(key)
        nversions[i] = len(versions)
        for batch_id, stored in versions:
            batch_ids.append(int(batch_id))
            if width:
                arr = np.ascontiguousarray(stored, dtype="<f4")
                if arr.shape != (width,):
                    raise MessageError(
                        f"stored entry shape {arr.shape}, want ({width},)"
                    )
                payloads.append(arr)
    parts = [
        keys.tobytes(),
        nversions.tobytes(),
        np.asarray(batch_ids, dtype="<i8").tobytes(),
    ]
    if payloads:
        parts.append(np.concatenate(payloads).tobytes())
    return b"".join(parts)


def _decode_entries(body, offset: int, count: int, width: int):
    """Inverse of :func:`_encode_entries`; returns ``(entries, offset)``.

    Decoded ``stored`` rows are read-only views into the frame's payload
    block (ownership contract in the module docstring); the PMem pool
    copies on write, so ingesting them is safe without a decode copy.
    """
    if len(body) < offset + 12 * count:
        raise MessageError("truncated migration entry table")
    keys = np.frombuffer(body, dtype="<u8", count=count, offset=offset)
    offset += 8 * count
    nversions = np.frombuffer(body, dtype="<u4", count=count, offset=offset)
    offset += 4 * count
    total = int(nversions.sum())
    if len(body) < offset + 8 * total:
        raise MessageError("truncated migration batch ids")
    batch_ids = np.frombuffer(body, dtype="<i8", count=total, offset=offset)
    offset += 8 * total
    payload = None
    if width:
        if len(body) < offset + 4 * total * width:
            raise MessageError("truncated migration payload")
        payload = np.frombuffer(
            body, dtype="<f4", count=total * width, offset=offset
        ).reshape(total, width)
        offset += 4 * total * width
    entries = []
    pos = 0
    for i in range(count):
        n = int(nversions[i])
        versions = [
            (int(batch_ids[j]), payload[j] if width else None)
            for j in range(pos, pos + n)
        ]
        pos += n
        entries.append((int(keys[i]), versions))
    return entries, offset


@dataclass(frozen=True)
class MigrateRequest:
    """Coordinator -> PS: one step of a live shard migration.

    Three ops share the frame:

    * ``OP_EXPORT`` — read all retained versions of ``keys`` (reply:
      :class:`MigrateResponse`). Read-only, naturally idempotent.
    * ``OP_PUT`` — ingest ``entries`` on the new owner (reply:
      :class:`StatusResponse` with ``value`` = keys ingested).
      Node-level ingest is idempotent, and the ``(source, seq)`` header
      additionally dedups retried frames exactly like pushes.
    * ``OP_DELETE`` — drop ``keys`` from the old owner at cleanup
      (reply: :class:`StatusResponse` with ``value`` = keys dropped).
      Unknown keys are ignored, so replays are absorbed.

    ``width`` is floats per stored array (weights + optimizer state);
    ``0`` means metadata-only.
    """

    TYPE = 0x08

    OP_EXPORT = 0
    OP_PUT = 1
    OP_DELETE = 2

    op: int
    source: int = 0
    seq: int = 0
    width: int = 0
    keys: tuple = ()
    entries: tuple = ()

    def encode_body(self) -> bytes:
        if self.op == self.OP_PUT:
            count = len(self.entries)
            payload = _encode_entries(self.entries, self.width)
        elif self.op in (self.OP_EXPORT, self.OP_DELETE):
            count = len(self.keys)
            keys = np.ascontiguousarray(np.asarray(self.keys, dtype="<u8"))
            payload = keys.tobytes()
        else:
            raise MessageError(f"unknown migrate op {self.op}")
        return (
            struct.pack("<BIQII", self.op, self.source, self.seq, self.width, count)
            + payload
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "MigrateRequest":
        if len(body) < 21:
            raise MessageError("truncated MigrateRequest")
        op, source, seq, width, count = struct.unpack_from("<BIQII", body)
        offset = 21
        if op == cls.OP_PUT:
            entries, offset = _decode_entries(body, offset, count, width)
            if offset != len(body):
                raise MessageError("trailing bytes in MigrateRequest")
            return cls(
                op=op, source=source, seq=seq, width=width,
                entries=tuple(entries),
            )
        if op in (cls.OP_EXPORT, cls.OP_DELETE):
            expected = offset + 8 * count
            if len(body) != expected:
                raise MessageError(
                    f"MigrateRequest length {len(body)}, want {expected}"
                )
            keys = np.frombuffer(body, dtype="<u8", count=count, offset=offset)
            return cls(
                op=op, source=source, seq=seq, width=width,
                keys=tuple(int(k) for k in keys),
            )
        raise MessageError(f"unknown migrate op {op}")

    @property
    def dedup_key(self) -> tuple[int, int] | None:
        """The at-most-once identity, or None when dedup is opted out."""
        if self.seq == 0:
            return None
        return (self.source, self.seq)


@dataclass(frozen=True)
class MigrateResponse:
    """PS -> coordinator: the exported entries (``OP_EXPORT`` reply)."""

    TYPE = 0x09

    width: int = 0
    entries: tuple = ()

    def encode_body(self) -> bytes:
        return (
            struct.pack("<II", self.width, len(self.entries))
            + _encode_entries(self.entries, self.width)
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "MigrateResponse":
        if len(body) < 8:
            raise MessageError("truncated MigrateResponse")
        width, count = struct.unpack_from("<II", body)
        entries, offset = _decode_entries(body, 8, count, width)
        if offset != len(body):
            raise MessageError("trailing bytes in MigrateResponse")
        return cls(width=width, entries=tuple(entries))


@dataclass(frozen=True)
class HeartbeatRequest:
    """Detector -> PS: prove you are alive.

    The reply is a :class:`StatusResponse` whose ``value`` is the
    shard's ``latest_completed_batch`` (free liveness + progress in one
    round trip). A shard whose primary replica has crashed answers with
    *silence* — the service raises
    :class:`~repro.network.rpc.Unresponsive`, the dispatcher delivers
    no reply, and the probe times out exactly like a dead process's
    socket would.
    """

    TYPE = 0x0B

    node_id: int
    requester: int = 0

    def encode_body(self) -> bytes:
        return struct.pack("<II", self.node_id, self.requester)

    @classmethod
    def decode_body(cls, body: bytes) -> "HeartbeatRequest":
        if len(body) != 8:
            raise MessageError(f"HeartbeatRequest length {len(body)}, want 8")
        node_id, requester = struct.unpack("<II", body)
        return cls(node_id=node_id, requester=requester)


@dataclass(frozen=True)
class PromoteRequest:
    """Detector -> PS: promote the backup replica to primary.

    Carries the coordinator's ``committed_epoch`` (the durable ring
    word's epoch) so the promoted replica reconciles its routing epoch
    at the commit point — a primary that died mid-migration cannot
    leave the promoted backup serving stale routing.

    The reply is a :class:`StatusResponse`: ``value`` = the shard's
    ``latest_completed_batch`` after promotion. Idempotent: promoting a
    shard whose primary is already alive (a duplicate or retried frame
    after a successful promotion) is a no-op acknowledged with
    ``value`` = current batch. A *double fault* (backup gone too)
    raises server-side and arrives as a typed wire error.
    """

    TYPE = 0x0C

    node_id: int
    committed_epoch: int = 0
    requester: int = 0

    def encode_body(self) -> bytes:
        return struct.pack("<IqI", self.node_id, self.committed_epoch, self.requester)

    @classmethod
    def decode_body(cls, body: bytes) -> "PromoteRequest":
        if len(body) != 16:
            raise MessageError(f"PromoteRequest length {len(body)}, want 16")
        node_id, committed_epoch, requester = struct.unpack("<IqI", body)
        return cls(
            node_id=node_id, committed_epoch=committed_epoch, requester=requester
        )


@dataclass(frozen=True)
class RingUpdateRequest:
    """Worker -> coordinator PS: fetch the committed ring state.

    The reply is a :class:`StatusResponse` whose ``value`` carries the
    packed ring word (:func:`repro.core.sharding.pack_ring_state` —
    epoch, num_nodes, vnodes). A client that hits a routing error after
    a migration refreshes its partitioner with this and retries.
    """

    TYPE = 0x0A

    requester: int = 0

    def encode_body(self) -> bytes:
        return struct.pack("<I", self.requester)

    @classmethod
    def decode_body(cls, body: bytes) -> "RingUpdateRequest":
        if len(body) != 4:
            raise MessageError(f"RingUpdateRequest length {len(body)}, want 4")
        return cls(requester=struct.unpack("<I", body)[0])


@dataclass(frozen=True)
class LookupRequest:
    """Serving client -> PS: snapshot-pinned batched read (inference).

    ``snapshot_id`` is the Checkpointed Batch ID the read is pinned to
    (``-1`` asks the shard to pin to its newest completed checkpoint and
    report the pin back in the response). ``replica`` picks the serving
    replica on a replicated shard (0 = primary, 1 = backup); plain
    shards ignore it. Lookups are pure reads — naturally idempotent, so
    unlike pushes they need no dedup identity: a retried frame simply
    reads the same snapshot again.
    """

    TYPE = 0x0D

    snapshot_id: int
    keys: np.ndarray  # u64[n]
    replica: int = 0

    def encode_body(self) -> bytes:
        keys = np.ascontiguousarray(self.keys, dtype="<u8")
        body = bytearray(16 + keys.nbytes)
        struct.pack_into(
            "<qBxxxI", body, 0, self.snapshot_id, self.replica, len(keys)
        )
        body[16:] = memoryview(keys).cast("B")
        return body

    @classmethod
    def decode_body(cls, body) -> "LookupRequest":
        if len(body) < 16:
            raise MessageError("truncated LookupRequest")
        snapshot_id, replica, nkeys = struct.unpack_from("<qBxxxI", body)
        expected = 16 + 8 * nkeys
        if len(body) != expected:
            raise MessageError(f"LookupRequest length {len(body)}, want {expected}")
        # Read-only view into the frame (ownership contract above).
        keys = np.frombuffer(body, dtype="<u8", count=nkeys, offset=16)
        return cls(snapshot_id=snapshot_id, keys=keys, replica=replica)


@dataclass(frozen=True)
class LookupResponse:
    """PS -> serving client: the snapshot-pinned weight rows.

    ``snapshot_id`` echoes the pin the shard actually served (resolving
    a ``-1`` request pin), so the client can enforce its staleness bound
    and record per-row provenance. ``hits`` / ``cold`` split rows served
    from durable versions vs the deterministic cold-key initializer.
    """

    TYPE = 0x0E

    snapshot_id: int
    weights: np.ndarray  # f32[n, dim]
    hits: int = 0
    cold: int = 0

    def encode_body(self) -> bytes:
        weights = np.ascontiguousarray(self.weights, dtype="<f4")
        if weights.ndim != 2:
            raise MessageError(f"weights must be 2-D, got shape {weights.shape}")
        n, dim = weights.shape
        body = bytearray(24 + weights.nbytes)
        struct.pack_into(
            "<qIIII", body, 0, self.snapshot_id, n, dim, self.hits, self.cold
        )
        body[24:] = memoryview(weights).cast("B")
        return body

    @classmethod
    def decode_body(cls, body) -> "LookupResponse":
        if len(body) < 24:
            raise MessageError("truncated LookupResponse")
        snapshot_id, n, dim, hits, cold = struct.unpack_from("<qIIII", body)
        expected = 24 + 4 * n * dim
        if len(body) != expected:
            raise MessageError(f"LookupResponse length {len(body)}, want {expected}")
        # Read-only view into the frame (ownership contract above).
        weights = np.frombuffer(body, dtype="<f4", count=n * dim, offset=24)
        return cls(
            snapshot_id=snapshot_id,
            weights=weights.reshape(n, dim),
            hits=hits,
            cold=cold,
        )


_MESSAGE_TYPES = {
    cls.TYPE: cls
    for cls in (
        PullRequest,
        PullResponse,
        PushRequest,
        CheckpointRequest,
        StatusResponse,
        MaintainRequest,
        MaintainResponse,
        MigrateRequest,
        MigrateResponse,
        RingUpdateRequest,
        HeartbeatRequest,
        PromoteRequest,
        LookupRequest,
        LookupResponse,
    )
}


CONTEXT_FLAG = 0x80
"""High bit of the type byte: frame carries a trace context prefix.

Context-bearing frames are ``[type|0x80][4-byte LE length of
ctx+body][4-byte CRC32 of ctx+body][17-byte ctx][body]`` where ctx is
``trace_id u64, parent_span_id u64, sampled u8``. The CRC covers the
context bytes, so a context corrupted in flight surfaces as
:class:`MessageError` (retryable) rather than a mis-parented span.
Frames without the flag are the original layout byte for byte — old
frames decode with ``context=None``, and senders only attach a context
when tracing is enabled, so obs-off wire traffic is bit-identical to
the pre-context protocol.
"""

_CONTEXT = struct.Struct("<QQB")


@dataclass(frozen=True)
class TraceContext:
    """Compact causal context carried on the wire ahead of the body."""

    trace_id: int
    parent_span_id: int
    sampled: bool = True

    def pack(self) -> bytes:
        return _CONTEXT.pack(
            self.trace_id & 0xFFFFFFFFFFFFFFFF,
            self.parent_span_id & 0xFFFFFFFFFFFFFFFF,
            1 if self.sampled else 0,
        )

    @classmethod
    def unpack(cls, raw) -> "TraceContext":
        trace_id, parent_span_id, sampled = _CONTEXT.unpack(raw)
        if sampled > 1:
            # Encoders only ever write 0 or 1. Anything else means the
            # CONTEXT_FLAG bit was set by corruption (the type byte is
            # outside the CRC) and these 17 bytes are really body data.
            raise MessageError(
                f"trace context sampled byte 0x{sampled:02x} is not a flag"
            )
        return cls(trace_id, parent_span_id, bool(sampled))


def encode_frame(msg_type: int, body, context: TraceContext | None = None) -> bytes:
    """Frame an already-encoded body (lets retry loops reuse one body)."""
    if context is None:
        return _HEADER.pack(msg_type, len(body), zlib.crc32(body)) + body
    payload = context.pack() + body
    return (
        _HEADER.pack(msg_type | CONTEXT_FLAG, len(payload), zlib.crc32(payload))
        + payload
    )


def encode_message(message, context: TraceContext | None = None) -> bytes:
    """Frame a message: type byte, length, CRC32, [context], body."""
    return encode_frame(message.TYPE, message.encode_body(), context)


def decode_envelope(data: bytes):
    """Decode one framed message plus its optional trace context.

    Returns ``(message, context)`` where ``context`` is ``None`` for
    frames without the :data:`CONTEXT_FLAG` bit (all pre-context
    senders, and context-free senders today).

    The body is handed to the per-message decoder as a ``memoryview``:
    no slice copy, and array fields of the result are read-only views
    into ``data`` (the ownership contract in the module docstring).

    Raises:
        MessageError: unknown type, truncation, trailing bytes, or a
            checksum mismatch (the frame was corrupted in flight).
    """
    if len(data) < _HEADER.size:
        raise MessageError(f"frame too short: {len(data)} bytes")
    msg_type, length, crc = _HEADER.unpack_from(data)
    payload = memoryview(data)[_HEADER.size :]
    if len(payload) != length:
        raise MessageError(f"frame body {len(payload)} bytes, header says {length}")
    if zlib.crc32(payload) != crc:
        raise MessageError(
            f"frame checksum mismatch (type 0x{msg_type:02x}, {length} bytes)"
        )
    context = None
    body = payload
    if msg_type & CONTEXT_FLAG:
        msg_type &= ~CONTEXT_FLAG
        if length < _CONTEXT.size:
            raise MessageError(
                f"context frame too short for trace context: {length} bytes"
            )
        context = TraceContext.unpack(payload[: _CONTEXT.size])
        body = payload[_CONTEXT.size :]
    if msg_type not in _MESSAGE_TYPES:
        raise MessageError(f"unknown message type 0x{msg_type:02x}")
    return _MESSAGE_TYPES[msg_type].decode_body(body), context


def decode_message(data: bytes):
    """Decode one framed message, discarding any trace context.

    See :func:`decode_envelope` for the zero-copy ownership contract
    and the error conditions.
    """
    return decode_envelope(data)[0]
