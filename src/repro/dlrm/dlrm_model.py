"""The DLRM architecture (Naumov et al. 2019) on numpy.

The paper's workload class is named after this model: dense features
through a bottom MLP, sparse features through embedding tables, pairwise
dot-product interactions among all the resulting vectors, and a top MLP
over the concatenation:

    b   = BottomMLP(x_dense)                      # (D,)
    u   = [b, v_1, ..., v_F]                      # F+1 vectors of dim D
    z   = [u_i . u_j for i < j]                   # pairwise interactions
    out = TopMLP(concat(b, z))                    # logit

Like :class:`~repro.dlrm.deepfm.DeepFM`, the model is stateless with
respect to the embeddings — they stream in per batch and gradients
stream back out to the PS — so it runs on any backend. Gradient
correctness is covered by numeric checks in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlrm.layers import MLP, binary_cross_entropy, stable_sigmoid
from repro.errors import ConfigError


@dataclass(frozen=True)
class DLRMGradients:
    """Backward-pass outputs of one DLRM batch."""

    loss: float
    #: gradient wrt each field embedding, shape (batch, fields, dim)
    embedding_grads: np.ndarray


class DLRM:
    """Deep Learning Recommendation Model: bottom MLP + interactions + top MLP.

    Args:
        num_fields: categorical fields (embedding lookups per sample).
        dim: embedding dimension; the bottom MLP projects the dense
            features to the same width so they can interact.
        num_dense: continuous features per sample (Criteo has 13).
        bottom_hidden / top_hidden: MLP layer sizes.
        seed: dense-parameter init seed.
    """

    uses_dense_features = True

    def __init__(
        self,
        num_fields: int,
        dim: int,
        num_dense: int = 13,
        bottom_hidden: tuple[int, ...] = (32,),
        top_hidden: tuple[int, ...] = (64, 32),
        seed: int = 0,
    ):
        if num_fields <= 0 or dim <= 0 or num_dense <= 0:
            raise ConfigError("num_fields, dim and num_dense must be positive")
        self.num_fields = num_fields
        self.dim = dim
        self.num_dense = num_dense
        self.num_vectors = num_fields + 1  # embeddings + the bottom output
        self.num_pairs = self.num_vectors * (self.num_vectors - 1) // 2
        rng = np.random.default_rng((seed, 0xD12A))
        self.bottom = MLP([num_dense, *bottom_hidden, dim], rng=rng)
        self.top = MLP([dim + self.num_pairs, *top_hidden, 1], rng=rng)
        self._pair_i, self._pair_j = np.triu_indices(self.num_vectors, k=1)
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------

    def forward(self, embeddings: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """Logits for a batch.

        Args:
            embeddings: (batch, fields, dim).
            dense: (batch, num_dense) continuous features.
        """
        batch = self._check_shapes(embeddings, dense)
        bottom_out = self.bottom.forward(dense.astype(np.float32))  # (B, D)
        vectors = np.concatenate(
            [bottom_out[:, None, :], embeddings], axis=1
        )  # (B, F+1, D)
        # z[b, p] = vectors[b, i_p] . vectors[b, j_p]
        interactions = np.einsum(
            "bpd,bpd->bp", vectors[:, self._pair_i, :], vectors[:, self._pair_j, :]
        )
        top_in = np.concatenate([bottom_out, interactions], axis=1).astype(np.float32)
        logits = self.top.forward(top_in).reshape(-1)
        self._cache = {"vectors": vectors, "batch": batch}
        return logits.astype(np.float32)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backprop; returns embedding grads (B, F, D) and accumulates
        both MLPs' parameter gradients."""
        if self._cache is None:
            raise ConfigError("backward called before forward")
        vectors = self._cache["vectors"]
        batch = self._cache["batch"]
        grad_top_in = self.top.backward(
            grad_logits.reshape(batch, 1).astype(np.float32)
        )  # (B, D + P)
        grad_bottom_direct = grad_top_in[:, : self.dim]
        grad_z = grad_top_in[:, self.dim :]  # (B, P)

        # d z_p / d u_{i_p} = u_{j_p} and vice versa: scatter-add both.
        grad_vectors = np.zeros_like(vectors)
        weighted_j = grad_z[:, :, None] * vectors[:, self._pair_j, :]
        weighted_i = grad_z[:, :, None] * vectors[:, self._pair_i, :]
        np.add.at(grad_vectors, (slice(None), self._pair_i), weighted_j)
        np.add.at(grad_vectors, (slice(None), self._pair_j), weighted_i)

        grad_bottom_out = grad_vectors[:, 0, :] + grad_bottom_direct
        self.bottom.backward(grad_bottom_out.astype(np.float32))
        return grad_vectors[:, 1:, :].astype(np.float32)

    def train_batch(
        self,
        embeddings: np.ndarray,
        labels: np.ndarray,
        dense: np.ndarray,
    ) -> DLRMGradients:
        """One forward+backward; parameters are NOT updated here."""
        logits = self.forward(embeddings, dense)
        loss, grad_logits = binary_cross_entropy(logits, labels)
        embedding_grads = self.backward(grad_logits)
        return DLRMGradients(loss=loss, embedding_grads=embedding_grads)

    def predict_proba(self, embeddings: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """Click probabilities for a batch."""
        return stable_sigmoid(self.forward(embeddings, dense))

    def zero_grad(self) -> None:
        self.bottom.zero_grad()
        self.top.zero_grad()

    # ------------------------------------------------------------------
    # dense-parameter access (checkpointing / optimizers)
    # ------------------------------------------------------------------

    @property
    def mlp(self) -> "_JointParams":
        """Both MLPs' parameters behind the trainer's ``model.mlp``
        interface (parameters / gradients / zero_grad / state)."""
        return _JointParams(self)

    def dense_state(self) -> list[np.ndarray]:
        return self.bottom.state() + self.top.state()

    def load_dense_state(self, state: list[np.ndarray]) -> None:
        split = len(self.bottom.parameters())
        self.bottom.load_state(state[:split])
        self.top.load_state(state[split:])

    @property
    def dense_parameter_count(self) -> int:
        return self.bottom.num_parameters + self.top.num_parameters

    def _check_shapes(self, embeddings: np.ndarray, dense: np.ndarray) -> int:
        if embeddings.ndim != 3 or embeddings.shape[1:] != (self.num_fields, self.dim):
            raise ConfigError(
                f"embeddings shape {embeddings.shape}, want "
                f"(B, {self.num_fields}, {self.dim})"
            )
        if dense.ndim != 2 or dense.shape[1] != self.num_dense:
            raise ConfigError(
                f"dense shape {dense.shape}, want (B, {self.num_dense})"
            )
        if embeddings.shape[0] != dense.shape[0]:
            raise ConfigError("embeddings and dense batch sizes differ")
        return embeddings.shape[0]


class _JointParams:
    """Adapter exposing both MLPs as one parameter group."""

    def __init__(self, model: DLRM):
        self._model = model

    def parameters(self) -> list[np.ndarray]:
        return self._model.bottom.parameters() + self._model.top.parameters()

    def gradients(self) -> list[np.ndarray]:
        return self._model.bottom.gradients() + self._model.top.gradients()

    def zero_grad(self) -> None:
        self._model.zero_grad()
