"""Check-N-Run-style quantized incremental checkpointing.

The paper's reliability discussion builds on Check-N-Run (Eisenman et
al., NSDI'22), Facebook's DLRM checkpointing system, which shrinks
checkpoints with (a) incremental dumps and (b) per-entry uniform
quantization. OpenEmbedding calls that work *complementary* — it
targets remote backup storage while OpenEmbedding persists locally.
This module implements the quantized variant so the size/accuracy
trade-off is measurable in this codebase.

Quantization: each entry's float32 vector is stored as uint8 codes with
a per-entry (min, scale) pair — 4 bytes/dim down to ~1 byte/dim. The
restore error per weight is bounded by ``scale / 2``; tests check the
bound and the size accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.errors import RecoveryError
from repro.pmem.persistence import Transaction
from repro.pmem.pool import PmemPool

_CKPT_BATCH_FIELD = "cnr_ckpt_batch_id"
_LEVELS = 255


@dataclass(frozen=True)
class QuantizedEntry:
    """One entry's quantized snapshot."""

    codes: np.ndarray  # uint8[dim]
    minimum: float
    scale: float

    @property
    def nbytes(self) -> int:
        # codes + the two float32 dequantization parameters
        return self.codes.nbytes + 8

    def dequantize(self) -> np.ndarray:
        return (
            self.codes.astype(np.float32) * self.scale + self.minimum
        ).astype(np.float32)


def quantize(weights: np.ndarray) -> QuantizedEntry:
    """Uniform 8-bit quantization with per-entry range.

    A constant vector quantizes exactly (scale 0); otherwise the max
    absolute reconstruction error is ``scale / 2``.
    """
    weights = np.asarray(weights, dtype=np.float32)
    minimum = float(weights.min())
    spread = float(weights.max()) - minimum
    scale = spread / _LEVELS
    if scale == 0.0:
        # Constant vector, or a spread so tiny the step underflows:
        # store as constant (error still bounded by the spread itself).
        return QuantizedEntry(
            codes=np.zeros(weights.shape, dtype=np.uint8), minimum=minimum, scale=0.0
        )
    codes = np.clip(np.round((weights - minimum) / scale), 0, _LEVELS)
    return QuantizedEntry(codes=codes.astype(np.uint8), minimum=minimum, scale=scale)


@dataclass(frozen=True)
class QuantizedCheckpointStats:
    """Footprint of one quantized incremental checkpoint."""

    batch_id: int
    entries_written: int
    bytes_written: int
    full_precision_bytes: int
    sim_seconds: float

    @property
    def compression_ratio(self) -> float:
        if self.bytes_written == 0:
            return 1.0
        return self.full_precision_bytes / self.bytes_written


class CheckNRunCheckpointer:
    """Incremental + quantized checkpoint dumps (Check-N-Run style).

    Same dirty-set protocol as
    :class:`~repro.baselines.incremental.IncrementalCheckpointer`, but
    each entry is stored quantized — roughly 3.5-4x smaller dumps at a
    bounded precision cost.
    """

    def __init__(
        self,
        pool: PmemPool,
        dim: int,
        read_state: Callable[[Iterable[int]], dict[int, np.ndarray]],
    ):
        self.pool = pool
        self.dim = dim
        self.read_state = read_state
        self._dirty: set[int] = set()
        #: volatile cache of dequant params; rebuilt on restore
        self._params: dict[int, tuple[float, float]] = {}
        self.stats_history: list[QuantizedCheckpointStats] = []

    def mark_dirty(self, keys: Iterable[int]) -> None:
        self._dirty.update(int(k) for k in keys)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def checkpoint(self, batch_id: int) -> QuantizedCheckpointStats:
        """Quantize and dump the dirty set as of ``batch_id``."""
        dirty = sorted(self._dirty)
        snapshot = self.read_state(dirty)
        elapsed = 0.0
        written = 0
        with Transaction(self.pool) as tx:
            for key in dirty:
                quantized = quantize(snapshot[key])
                elapsed += tx.write(
                    ("cnr", key), quantized.codes, nbytes=quantized.nbytes
                )
                self.pool.root.set(
                    f"cnr_min_{key}", int(np.float32(quantized.minimum).view(np.int32))
                )
                self.pool.root.set(
                    f"cnr_scale_{key}", int(np.float32(quantized.scale).view(np.int32))
                )
                self._params[key] = (quantized.minimum, quantized.scale)
                written += quantized.nbytes
        self.pool.root.set(_CKPT_BATCH_FIELD, batch_id)
        self._dirty.clear()
        stats = QuantizedCheckpointStats(
            batch_id=batch_id,
            entries_written=len(dirty),
            bytes_written=written,
            full_precision_bytes=len(dirty) * self.dim * 4,
            sim_seconds=elapsed,
        )
        self.stats_history.append(stats)
        return stats

    def restore(self) -> tuple[int, dict[int, np.ndarray]]:
        """Load and dequantize the latest checkpoint.

        Raises:
            RecoveryError: no checkpoint committed.
        """
        try:
            batch_id = self.pool.root.get(_CKPT_BATCH_FIELD)
        except KeyError:
            raise RecoveryError("no quantized checkpoint committed") from None
        state: dict[int, np.ndarray] = {}
        for pool_key, codes in self.pool.items():
            if not (isinstance(pool_key, tuple) and pool_key[0] == "cnr"):
                continue
            key = pool_key[1]
            minimum = np.int32(self.pool.root.get(f"cnr_min_{key}")).view(np.float32)
            scale = np.int32(self.pool.root.get(f"cnr_scale_{key}")).view(np.float32)
            entry = QuantizedEntry(
                codes=np.asarray(codes, dtype=np.uint8),
                minimum=float(minimum),
                scale=float(scale),
            )
            state[key] = entry.dequantize()
        return batch_id, state

    @classmethod
    def restore_from_pool(cls, pool: PmemPool, dim: int):
        """Restore without a live checkpointer (post-crash path)."""
        dummy = cls(pool, dim, read_state=lambda keys: {})
        return dummy.restore()
