"""Online inference tier: hierarchical read path QPS / tail latency.

The paper's deployments train *and serve* the same embedding tables
(Section II's online scenarios). This bench prices the serving
extension — :class:`repro.dlrm.hps.HierarchicalPS` in front of the
replicated RPC cluster — under the paper's own Table 2 access skew
(top 1% of keys -> 95.7% of accesses):

* **uncached vs cached**: the same closed-loop request stream against
  a tier with the hot-row cache disabled (every read pays wire + PMem)
  and enabled (hot rows answer from a client-local DRAM probe). The
  acceptance bar: the cached hit path's p99 must be at least 5x lower
  than the uncached p99.
* **flash crowd**: mid-run the hot set jumps to a disjoint key range;
  the p99 spike and recovery are reported.
* **train-while-serve chaos**: training pushes + checkpoint barriers
  land on the same cluster while reads flow, then one serving
  replica's primary is killed. Verdict: zero torn rows, zero rows
  staler than the k-checkpoint bound, and reads keep being served
  through the failover.

Run under pytest-benchmark for the full report, or standalone for CI:

    python benchmarks/bench_serving.py --smoke

Headline numbers land in ``benchmarks/results/BENCH_serving.json``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from repro.bench import Headline, Param, register
from repro.core.optimizers import PSAdagrad
from repro.dlrm.hps import HierarchicalPS
from repro.network.frontend import RemotePSClient
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOTracker
from repro.simulation.clock import SimClock
from repro.simulation.serving_sim import (
    ServingCostModel,
    ServingLoadDriver,
    TrainServeSoak,
)
from repro.workload.distributions import TABLE2_BANDS, BandedSkewDistribution

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

NUM_KEYS = 20_000
BATCH_KEYS = 64
CACHE_ROWS = 512
STALENESS_K = 1
#: Chaos-soak SLO targets: the failover window (one lease, 0.5 s) may
#: push a couple of requests past the latency threshold, so the budget
#: leaves room for the kill without masking a systemic regression.
SLO_P99_THRESHOLD_S = 0.05
SLO_P99_BUDGET = 0.02
SLO_AVAILABILITY_BUDGET = 0.001
#: Table 2: access mass on the top 1% of keys (bands 1+2+3).
TOP1PCT_SKEW = sum(mass for frac, mass in TABLE2_BANDS[:3])


def build_tier(seed: int, capacity_rows: int, policy: str = "round_robin", slo=None):
    """Replicated 3-shard RPC cluster + serving tier + closed-loop driver."""
    from tests.harness.chaos import replicated_config
    from tests.harness.crashpoints import cache_config

    config = dataclasses.replace(
        replicated_config(3, seed=seed, lease_s=0.5),
        serving_replica_policy=policy,
    )
    clock = SimClock()
    registry = MetricsRegistry()
    client = RemotePSClient(
        config, cache_config(), PSAdagrad(lr=0.05), clock=clock, registry=registry
    )
    client.enable_failover(registry)
    tier = HierarchicalPS(
        client,
        capacity_rows=capacity_rows,
        staleness_bound_k=STALENESS_K,
        registry=registry,
        slo=slo,
    )
    distribution = BandedSkewDistribution(NUM_KEYS, seed=seed)
    # The RPC channels charge the wire on the shared clock; the cost
    # model adds only the device side (DRAM probe / PMem burst read).
    driver = ServingLoadDriver(
        tier,
        distribution,
        ServingCostModel(network=None),
        clock,
        batch_keys=BATCH_KEYS,
        num_keys=NUM_KEYS,
        slo=slo,
    )
    return client, tier, driver


def build_slo_tracker() -> SLOTracker:
    """The serving objectives the chaos soak is gated on."""
    tracker = SLOTracker()
    tracker.latency("serving_p99", SLO_P99_THRESHOLD_S, budget=SLO_P99_BUDGET)
    tracker.availability("serving_availability", budget=SLO_AVAILABILITY_BUDGET)
    tracker.staleness("serving_staleness", STALENESS_K, budget=0.0)
    return tracker


def pretrain(client, batches: int, seed: int) -> None:
    """Train the hot keys and complete one checkpoint (the serving pin)."""
    rng = np.random.default_rng(seed)
    dim = client.server_config.embedding_dim
    distribution = BandedSkewDistribution(NUM_KEYS, seed=seed)
    for batch in range(batches):
        keys = distribution.sample_keys(256)
        grads = rng.normal(0, 0.01, size=(len(keys), dim)).astype(np.float32)
        client.pull(keys, batch)
        client.maintain(batch)
        client.push(keys, grads, batch)
    client.barrier_checkpoint()


def run_cached_vs_uncached(warm: int, measure: int) -> dict:
    """The headline comparison; returns the result dict."""
    # Uncached: every row of every request pays wire + shard device.
    client_u, __, driver_u = build_tier(seed=11, capacity_rows=0)
    pretrain(client_u, batches=6, seed=11)
    uncached = driver_u.run(measure)

    # Cached: identical stream; warm first, then measure steady state.
    client_c, tier_c, driver_c = build_tier(seed=11, capacity_rows=CACHE_ROWS)
    pretrain(client_c, batches=6, seed=11)
    driver_c.run(warm)
    cached = driver_c.run(measure)

    speedup = (
        uncached.latency.p99 / cached.hit_latency.p99
        if cached.hit_latency.p99
        else float("inf")
    )
    return {
        "skew_top1pct": TOP1PCT_SKEW,
        "uncached": uncached.summary(),
        "cached": cached.summary(),
        "hit_path_p99_speedup": speedup,
    }


def run_flash_crowd(warm: int, measure: int) -> dict:
    """Mid-run hot-set jump: p99 while the cache re-warms."""
    client, tier, driver = build_tier(seed=23, capacity_rows=CACHE_ROWS)
    pretrain(client, batches=6, seed=23)
    driver.run(warm)
    stationary = driver.run(measure)
    driver.key_offset = NUM_KEYS // 2  # disjoint hot set: the crowd moves
    crowd = driver.run(measure)
    recovered = driver.run(measure)
    return {
        "stationary_p99_us": stationary.latency.p99 * 1e6,
        "crowd_p99_us": crowd.latency.p99 * 1e6,
        "recovered_p99_us": recovered.latency.p99 * 1e6,
        "stationary_hit_rate": stationary.hit_rate,
    }


def run_chaos(requests: int) -> dict:
    """Train-while-serve soak with a mid-run primary kill, SLO-gated."""
    slo = build_slo_tracker()
    client, tier, driver = build_tier(seed=37, capacity_rows=CACHE_ROWS, slo=slo)
    soak = TrainServeSoak(
        tier,
        client,
        driver,
        rng_seed=37,
        train_every=3,
        checkpoint_every=2,
        kill_primary_at=requests // 2,
        kill_node=0,
        slo=slo,
    )
    verdict = soak.run(requests)
    return {
        "requests": verdict.requests,
        "rows_audited": verdict.rows_audited,
        "torn_rows": verdict.torn_rows,
        "stale_rows": verdict.stale_rows,
        "max_staleness": verdict.max_staleness,
        "staleness_bound_k": STALENESS_K,
        "kills": verdict.kills,
        "served_through_kill": verdict.served_through_kill,
        "p99_us": verdict.report.latency.p99 * 1e6,
        "slo": slo.verdict(),
    }


def check(results: dict) -> list[str]:
    """The acceptance bars; returns a list of failure strings."""
    failures = []
    headline = results["cached_vs_uncached"]
    if headline["hit_path_p99_speedup"] < 5.0:
        failures.append(
            f"hit-path p99 speedup {headline['hit_path_p99_speedup']:.1f}x < 5x"
        )
    chaos = results["chaos"]
    if chaos["torn_rows"]:
        failures.append(f"{chaos['torn_rows']} torn rows served")
    if chaos["stale_rows"]:
        failures.append(f"{chaos['stale_rows']} rows beyond the staleness bound")
    if chaos["kills"] and not chaos["served_through_kill"]:
        failures.append("no reads served after the primary kill")
    for row in chaos["slo"]["objectives"]:
        if not row["ok"]:
            failures.append(
                f"SLO {row['name']} error budget exhausted "
                f"(burn {row['burn_rate']:.2f})"
            )
    return failures


def run_all(warm: int, measure: int, chaos_requests: int) -> tuple[dict, list[str]]:
    results = {
        "cached_vs_uncached": run_cached_vs_uncached(warm, measure),
        "flash_crowd": run_flash_crowd(warm, measure),
        "chaos": run_chaos(chaos_requests),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    headline = results["cached_vs_uncached"]
    chaos = results["chaos"]
    # Headline numbers land in the repro-bench-v1 trajectory (the same
    # file the sweep runner and regression gate read).
    from repro.bench import RunRecord, Trajectory, derive_seed, environment_info

    params = {"warm": warm, "measure": measure, "chaos_requests": chaos_requests}
    record = RunRecord(
        bench="serving",
        params=params,
        seed=derive_seed(0, "serving", params),
        scale="full",
        env=environment_info(),
        metrics={
            "hit_path_p99_speedup": headline["hit_path_p99_speedup"],
            "hit_rate": headline["cached"]["hit_rate"],
            "qps_cached": headline["cached"]["qps"],
            "qps_uncached": headline["uncached"]["qps"],
            "hit_p99_us": headline["cached"]["hit_p99_us"],
            "uncached_p99_us": headline["uncached"]["p99_us"],
            "torn_rows": chaos["torn_rows"],
            "stale_rows": chaos["stale_rows"],
            "served_through_kill": bool(chaos["served_through_kill"]),
            "slo_ok": bool(chaos["slo"]["ok"]),
        },
    )
    trajectory = Trajectory.load_or_create(RESULTS_DIR, "serving")
    trajectory.append(record)
    trajectory.save(RESULTS_DIR)
    # Standalone machine-readable SLO verdict; render with `repro slo`.
    (RESULTS_DIR / "slo_serving.json").write_text(
        json.dumps(results["chaos"]["slo"], indent=2) + "\n"
    )
    return results, check(results)


def test_serving_tier(benchmark, report):
    from benchmarks.conftest import run_once

    results, failures = run_once(
        benchmark, lambda: run_all(warm=100, measure=300, chaos_requests=150)
    )
    headline = results["cached_vs_uncached"]
    crowd = results["flash_crowd"]
    chaos = results["chaos"]
    report.title(
        "serving", "Extension: hierarchical online serving tier (HPS-style)"
    )
    report.row(
        "access skew (top 1%)", "95.7% (Table 2)", f"{TOP1PCT_SKEW:.1%}"
    )
    report.row(
        "uncached p99", "-", f"{headline['uncached']['p99_us']:.1f} us"
    )
    report.row(
        "cached p99", "-", f"{headline['cached']['p99_us']:.1f} us",
        f"hit rate {headline['cached']['hit_rate']:.1%}",
    )
    report.row(
        "hit-path p99", ">= 5x lower",
        f"{headline['cached']['hit_p99_us']:.2f} us "
        f"({headline['hit_path_p99_speedup']:.0f}x)",
    )
    report.row(
        "QPS cached/uncached", "-",
        f"{headline['cached']['qps']:.0f} / {headline['uncached']['qps']:.0f}",
    )
    report.row(
        "flash crowd p99", "-",
        f"{crowd['stationary_p99_us']:.0f} -> {crowd['crowd_p99_us']:.0f} "
        f"-> {crowd['recovered_p99_us']:.0f} us",
    )
    report.row(
        "chaos torn/stale rows", "0 / 0",
        f"{chaos['torn_rows']} / {chaos['stale_rows']} "
        f"({chaos['rows_audited']} audited, k={chaos['staleness_bound_k']})",
    )
    report.row(
        "served through kill", "yes",
        "yes" if chaos["served_through_kill"] else "NO",
    )
    report.row(
        "SLO error budgets", "all within budget",
        "ok" if chaos["slo"]["ok"] else "EXHAUSTED",
    )
    assert not failures, "; ".join(failures)


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["hit_path_p99_speedup"] < 5.0:
        failures.append(
            f"hit-path p99 speedup {metrics['hit_path_p99_speedup']:.1f}x < 5x"
        )
    if metrics["torn_rows"]:
        failures.append(f"{metrics['torn_rows']:.0f} torn rows served")
    if metrics["stale_rows"]:
        failures.append(
            f"{metrics['stale_rows']:.0f} rows beyond the staleness bound"
        )
    if not metrics["served_through_kill"]:
        failures.append("no reads served after the primary kill")
    if not metrics["slo_ok"]:
        failures.append("an SLO error budget was exhausted")
    return failures


@register(
    "serving",
    params=[
        Param("warm", "int", 100, help="cache warm-up requests"),
        Param("measure", "int", 300, help="measured requests per phase"),
        Param("chaos_requests", "int", 150),
    ],
    smoke={"warm": 40, "measure": 100, "chaos_requests": 100},
    headline={
        # All SimClock-driven latencies: deterministic, gate tightly.
        "hit_path_p99_speedup": Headline(direction="higher", max_regression=0.10),
        "hit_rate": Headline(direction="higher", max_regression=0.05),
        "slo_ok": Headline(),
    },
    check=_check,
)
def entry(*, warm, measure, chaos_requests):
    """Serving-tier headline: cached-vs-uncached p99 speedup, hit rate,
    and the chaos soak's torn/stale/SLO verdict."""
    headline = run_cached_vs_uncached(warm, measure)
    chaos = run_chaos(chaos_requests)
    return {
        "hit_path_p99_speedup": headline["hit_path_p99_speedup"],
        "hit_rate": headline["cached"]["hit_rate"],
        "qps_cached": headline["cached"]["qps"],
        "qps_uncached": headline["uncached"]["qps"],
        "hit_p99_us": headline["cached"]["hit_p99_us"],
        "uncached_p99_us": headline["uncached"]["p99_us"],
        "torn_rows": chaos["torn_rows"],
        "stale_rows": chaos["stale_rows"],
        "served_through_kill": bool(chaos["served_through_kill"]),
        "slo_ok": bool(chaos["slo"]["ok"]),
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("serving"))
