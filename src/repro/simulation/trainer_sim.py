"""Synchronous DLRM training simulation (the evaluation's engine).

A :class:`TrainingSimulator` couples

* a **functional backend** — the real cache/PS data structures running
  in metadata-only mode, producing exact hit/miss/flush/eviction
  streams for the configured workload, and
* the **cost model** (:class:`repro.simulation.cluster.PSCostModel`) —
  which prices each phase of every iteration in simulated seconds,

plus checkpoint scheduling on the simulated clock. Epoch times,
overhead percentages and miss rates for Figures 3 and 6-13 all come out
of this class.

Scaling note: benchmarks run a scaled-down model (fewer keys, smaller
batches) with the paper's skew preserved; checkpoint intervals are
specified as a fraction of the measured epoch so that "a checkpoint
every 20 minutes of a 5-hour epoch" keeps its meaning at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    ClusterConfig,
    ServerConfig,
)
from repro.core.ps_node import PSNode
from repro.baselines.dram_ps import DRAMPSNode
from repro.baselines.pmem_hash import PMemHashNode
from repro.errors import ConfigError
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simulation.clock import PeriodicTimer, SimClock
from repro.simulation.cluster import IterationCounts, PSCostModel, SystemKind
from repro.simulation.device import PMEM_SPEC
from repro.simulation.metrics import RequestTrace
from repro.workload.generator import WorkloadGenerator


@dataclass
class TrainingRunResult:
    """Outcome of one simulated training run."""

    system: SystemKind
    num_workers: int
    iterations: int
    sim_seconds: float
    #: per-phase totals over the whole run
    net_seconds: float = 0.0
    pull_service_seconds: float = 0.0
    gpu_seconds: float = 0.0
    maintain_inline_seconds: float = 0.0
    maintain_deferred_seconds: float = 0.0
    push_service_seconds: float = 0.0
    checkpoint_pause_seconds: float = 0.0
    checkpoints_completed: int = 0
    miss_rate: float = 0.0
    total_requests: int = 0
    trace: RequestTrace | None = None

    @property
    def seconds_per_iteration(self) -> float:
        return self.sim_seconds / self.iterations if self.iterations else 0.0


class TrainingSimulator:
    """Simulates synchronous data-parallel DLRM training on one system.

    Args:
        system: which Table III system to simulate.
        cluster: workers / batch size / GPU time / threads / network.
        server: embedding dim, PS node count.
        cache: DRAM cache config (hybrids only).
        checkpoint: checkpoint mode and interval in *simulated seconds*
            (use :meth:`interval_for_epoch_fraction` to scale).
        workload: key-access generator.
        use_cache: Figure 9 ablation switch (hybrids only).
        record_trace: keep a per-request timestamp trace (Figure 2).
    """

    def __init__(
        self,
        system: SystemKind,
        cluster: ClusterConfig | None = None,
        server: ServerConfig | None = None,
        cache: CacheConfig | None = None,
        checkpoint: CheckpointConfig | None = None,
        workload: WorkloadGenerator | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        *,
        use_cache: bool = True,
        record_trace: bool = False,
    ):
        self.system = system
        self.cluster = cluster or ClusterConfig()
        self.server = server or ServerConfig()
        self.cache_config = cache or CacheConfig()
        self.checkpoint_config = checkpoint or CheckpointConfig.none()
        self.workload = workload or WorkloadGenerator()
        self.cal = calibration
        self.use_cache = use_cache
        self.clock = SimClock()
        self.trace = RequestTrace(enabled=record_trace)
        pipelined = self.cache_config.pipelined and system == SystemKind.PMEM_OE
        self.cost_model = PSCostModel(
            system,
            self.cluster,
            self.server,
            calibration,
            pipelined=pipelined,
            use_cache=use_cache,
            maintainer_threads=self.cache_config.maintainer_threads,
        )
        self.backend = self._build_backend()
        self._dirty_since_ckpt: set[int] = set()
        self._validate_checkpoint_mode()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, iterations: int) -> TrainingRunResult:
        """Simulate ``iterations`` synchronous steps and return totals."""
        if iterations <= 0:
            raise ConfigError(f"iterations must be >= 1, got {iterations}")
        result = TrainingRunResult(
            system=self.system,
            num_workers=self.cluster.num_workers,
            iterations=iterations,
            sim_seconds=0.0,
            trace=self.trace if self.trace.enabled else None,
        )
        timer = None
        if self.checkpoint_config.mode != CheckpointMode.NONE:
            timer = PeriodicTimer(self.checkpoint_config.interval_seconds)

        for batch_id in range(iterations):
            counts = self._run_functional_iteration(batch_id)
            timing = self.cost_model.price_iteration(counts)
            start = self.clock.now
            self.trace.record(start, RequestTrace.PULL, counts.requests)
            push_at = (
                start
                + timing.net_pull
                + timing.pull_service
                + max(timing.gpu, timing.maintain_deferred)
                + timing.maintain_inline
            )
            self.trace.record(push_at, RequestTrace.UPDATE, counts.requests)
            self.clock.advance(timing.total)

            result.net_seconds += timing.net_pull + timing.net_push
            result.pull_service_seconds += timing.pull_service
            result.gpu_seconds += timing.gpu
            result.maintain_inline_seconds += timing.maintain_inline
            result.maintain_deferred_seconds += timing.maintain_deferred
            result.push_service_seconds += timing.push_service
            result.total_requests += counts.requests

            if timer is not None and timer.due(self.clock.now):
                pause = self._execute_checkpoint(batch_id)
                self.clock.advance(pause)
                result.checkpoint_pause_seconds += pause
                result.checkpoints_completed += 1

        result.sim_seconds = self.clock.now
        result.miss_rate = self._miss_rate()
        return result

    @staticmethod
    def interval_for_epoch_fraction(
        epoch_seconds: float, paper_interval_minutes: float, paper_epoch_hours: float
    ) -> float:
        """Scale a paper checkpoint interval to a simulated epoch.

        "Every 20 minutes of a 5.33-hour epoch" becomes the same
        *fraction* of whatever the simulated epoch lasts.
        """
        if epoch_seconds <= 0 or paper_interval_minutes <= 0 or paper_epoch_hours <= 0:
            raise ConfigError("epoch/interval inputs must be positive")
        fraction = (paper_interval_minutes / 60.0) / paper_epoch_hours
        return epoch_seconds * fraction

    # ------------------------------------------------------------------
    # functional iteration
    # ------------------------------------------------------------------

    def _run_functional_iteration(self, batch_id: int) -> IterationCounts:
        worker_batches = self.workload.sample_worker_batches(
            self.cluster.num_workers, self.cluster.batch_size
        )
        keys: list[int] = []
        for batch in worker_batches:
            keys.extend(batch.tolist())
        pull = self.backend.pull(keys, batch_id)
        maintain = self.backend.maintain(batch_id)
        self.backend.push(keys, None, batch_id)
        if self.checkpoint_config.mode == CheckpointMode.INCREMENTAL:
            self._dirty_since_ckpt.update(keys)
        if maintain is None:
            loads = flushes = evictions = processed = 0
        else:
            loads = maintain.loads
            flushes = maintain.flushes
            evictions = maintain.evictions
            processed = maintain.processed
        if not self.use_cache and self.system in (
            SystemKind.PMEM_OE,
            SystemKind.ORI_CACHE,
        ):
            # Cache-disabled ablation: hit/miss accounting is moot; the
            # cost model treats every request as a PMem access.
            return IterationCounts(
                requests=len(keys),
                hits=0,
                misses=len(keys) - pull.created,
                created=pull.created,
                maintain_processed=processed,
                maintain_loads=0,
                maintain_flushes=0,
                maintain_evictions=0,
            )
        return IterationCounts(
            requests=len(keys),
            hits=pull.hits,
            misses=pull.misses,
            created=pull.created,
            maintain_processed=processed,
            maintain_loads=loads,
            maintain_flushes=flushes,
            maintain_evictions=evictions,
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def _execute_checkpoint(self, batch_id: int) -> float:
        """Fire one checkpoint; returns the training pause in seconds."""
        mode = self.checkpoint_config.mode
        pause = 0.0
        if mode in (CheckpointMode.BATCH_AWARE, CheckpointMode.SPARSE_ONLY):
            # The sparse snapshot piggybacks on cache maintenance: the
            # request is queued and completion happens inside later
            # maintain() rounds, whose flush traffic is priced in the
            # (overlapped) deferred slot -> no training pause at all.
            if isinstance(self.backend, PSNode):
                if batch_id > self.backend.coordinator.last_completed and (
                    self.backend.coordinator.max_pending() or -1
                ) < batch_id:
                    self.backend.coordinator.request(batch_id)
        elif mode == CheckpointMode.INCREMENTAL:
            # Synchronous incremental dump of the dirty set; when the
            # checkpoint device is the PMem the training system lives
            # on, the dump's writes contend with training I/O.
            dirty = len(self._dirty_since_ckpt)
            eb = self.server.entry_bytes
            dump = dirty * (
                eb / PMEM_SPEC.write_bw + self.cal.incremental_entry_dump_s
            )
            if self.system in (SystemKind.PMEM_OE, SystemKind.ORI_CACHE):
                dump *= self.cal.incremental_interference_factor
            else:
                dump *= self.cal.incremental_dram_ps_factor
            pause += dump
            self._dirty_since_ckpt.clear()
        if self.checkpoint_config.include_dense:
            pause += self._dense_pause()
        return pause

    def _dense_pause(self) -> float:
        """TensorFlow's dense-model checkpoint: one GPU dumps the MLP.

        The dense part is <1 % of the model (Section VI-A); its dump
        goes over the network to backup storage and pauses training,
        independent of worker count (only one GPU dumps).
        """
        dense_bytes = self.cal.dense_model_fraction * self._model_bytes()
        return dense_bytes / self.cal.dense_ckpt_bw

    def _model_bytes(self) -> int:
        return self.workload.config.num_keys * self.server.entry_bytes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build_backend(self):
        if self.system in (SystemKind.PMEM_OE, SystemKind.ORI_CACHE):
            return PSNode(
                0,
                self.server,
                self.cache_config,
                metadata_only=True,
            )
        if self.system in (SystemKind.DRAM_PS, SystemKind.TF_PS):
            return DRAMPSNode(self.server, metadata_only=True)
        if self.system == SystemKind.PMEM_HASH:
            return PMemHashNode(self.server, metadata_only=True)
        raise ConfigError(f"no backend for system {self.system}")

    def _validate_checkpoint_mode(self) -> None:
        mode = self.checkpoint_config.mode
        if mode in (CheckpointMode.BATCH_AWARE, CheckpointMode.SPARSE_ONLY):
            if self.system not in (SystemKind.PMEM_OE,):
                raise ConfigError(
                    f"{mode.value} checkpointing requires the PMem-OE system "
                    f"(co-designed with its pipelined cache), got {self.system}"
                )

    def _miss_rate(self) -> float:
        metrics = self.backend.metrics
        accesses = metrics.cache.hits + metrics.cache.misses
        if accesses == 0:
            return 0.0
        return metrics.cache.misses / accesses
