"""Synthetic Criteo-like CTR dataset.

The paper's Section VI-F experiment uses the Criteo Kaggle display-ads
dataset (26 categorical fields); the proprietary production trace of
Section III is not available. This generator produces a deterministic
stand-in with the properties that matter:

* 26 categorical fields with per-field vocabularies and skewed
  (exponential-rank) popularity, so embedding-access patterns look like
  real CTR traffic;
* labels from a hidden ground-truth model (random field/interaction
  effects through a logistic link), so models can genuinely *learn* —
  training loss decreases — rather than fitting noise.

Keys are globally unique: field ``f``'s vocabulary occupies the id
range ``[field_offsets[f], field_offsets[f+1])``, matching how DLRMs
concatenate per-field tables into one PS key space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class CriteoBatch:
    """One mini-batch: categorical keys, dense features, click labels."""

    keys: np.ndarray  # (batch, fields) int64 global key ids
    labels: np.ndarray  # (batch,) float32 in {0, 1}
    dense: np.ndarray  # (batch, num_dense) float32 continuous features


class CriteoSynthetic:
    """Deterministic synthetic CTR dataset.

    Args:
        num_fields: categorical fields per sample (Criteo has 26).
        vocab_per_field: vocabulary size of each field.
        skew_rate: exponential-decay rate of per-field key popularity
            (larger = hotter heads).
        seed: dataset seed; the same seed always yields the same
            samples, labels and ground truth.
    """

    def __init__(
        self,
        num_fields: int = 26,
        vocab_per_field: int = 1000,
        skew_rate: float = 8.0,
        num_dense: int = 0,
        seed: int = 0,
    ):
        if num_fields <= 0 or vocab_per_field <= 0:
            raise ConfigError("num_fields and vocab_per_field must be positive")
        if skew_rate <= 0:
            raise ConfigError("skew_rate must be positive")
        if num_dense < 0:
            raise ConfigError("num_dense must be non-negative")
        self.num_fields = num_fields
        self.vocab_per_field = vocab_per_field
        self.skew_rate = skew_rate
        self.num_dense = num_dense
        self.seed = seed
        self.field_offsets = np.arange(num_fields + 1) * vocab_per_field
        gt_rng = np.random.default_rng((seed, 0x6707))
        # Hidden ground truth: a per-key effect plus pairwise field
        # interactions through a low-rank factor, plus a linear dense
        # effect, pushed through a logistic link. Effects are scaled
        # for label balance ~40-60 %.
        self._key_effect = gt_rng.normal(0.0, 0.8, num_fields * vocab_per_field)
        self._key_factor = gt_rng.normal(0.0, 0.35, (num_fields * vocab_per_field, 4))
        self._dense_effect = gt_rng.normal(0.0, 0.6, num_dense)
        self._bias = 0.0

    @property
    def num_keys(self) -> int:
        """Total key-space size across all fields."""
        return self.num_fields * self.vocab_per_field

    def batch(self, batch_size: int, batch_index: int) -> CriteoBatch:
        """The ``batch_index``-th mini-batch (deterministic).

        The same (seed, batch_index) always yields identical data, which
        is what lets recovery tests replay training exactly.
        """
        if batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {batch_size}")
        rng = np.random.default_rng((self.seed, 0xDA7A, batch_index))
        # Per-field skewed categorical draw via truncated exponential.
        u = rng.random((batch_size, self.num_fields))
        norm = 1.0 - np.exp(-self.skew_rate)
        x = -np.log1p(-u * norm) / self.skew_rate
        local = np.minimum(
            (x * self.vocab_per_field).astype(np.int64), self.vocab_per_field - 1
        )
        keys = local + self.field_offsets[:-1][None, :]
        dense = rng.normal(0.0, 1.0, (batch_size, self.num_dense)).astype(np.float32)
        labels = self._label(keys, dense, rng)
        return CriteoBatch(keys=keys, labels=labels, dense=dense)

    def batches(self, batch_size: int, num_batches: int):
        """Iterate ``num_batches`` consecutive mini-batches."""
        for index in range(num_batches):
            yield self.batch(batch_size, index)

    def _label(
        self, keys: np.ndarray, dense: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        effect = self._key_effect[keys].sum(axis=1)
        factors = self._key_factor[keys]  # (B, F, 4)
        sum_fac = factors.sum(axis=1)
        inter = 0.5 * ((sum_fac**2).sum(axis=1) - (factors**2).sum(axis=(1, 2)))
        logits = self._bias + effect + inter
        if self.num_dense:
            logits = logits + dense @ self._dense_effect
        probs = 1.0 / (1.0 + np.exp(-logits))
        return (rng.random(len(probs)) < probs).astype(np.float32)
