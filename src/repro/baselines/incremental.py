"""CheckFreq-style incremental checkpointing (the paper's baseline).

"Incremental Checkpoint" in Table IV: the state-of-the-art scheme of
Mohan et al. (FAST'21) applied to the sparse features — on every
trigger, synchronously dump the entries *changed since the last
checkpoint* to the checkpoint device. The dump is transactional: a
crash mid-dump leaves the previous checkpoint intact.

Unlike OpenEmbedding's batch-aware scheme, this pauses training for the
duration of the dump and, when the checkpoint device is the same PMem
the training system lives on, its writes contend with training I/O —
the effect Figure 12 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.errors import RecoveryError
from repro.pmem.persistence import Transaction
from repro.pmem.pool import PmemPool

_CKPT_BATCH_FIELD = "incremental_ckpt_batch_id"
_CKPT_EPOCH_FIELD = "incremental_ckpt_epoch"


@dataclass(frozen=True)
class CheckpointStats:
    """One incremental checkpoint's footprint."""

    batch_id: int
    entries_written: int
    bytes_written: int
    sim_seconds: float


class IncrementalCheckpointer:
    """Dumps dirty entries to a checkpoint pool, transactionally.

    Args:
        pool: the checkpoint device (a PMem or SSD-backed pool,
            dedicated — this is a *backup copy*, separate from any live
            training state).
        entry_bytes: payload size per entry.
        read_state: callback ``keys -> {key: weights-or-None}`` reading
            the live state to snapshot. Called while training is paused
            (synchronous checkpointing), so the snapshot is
            batch-consistent by construction.
    """

    def __init__(
        self,
        pool: PmemPool,
        entry_bytes: int,
        read_state: Callable[[Iterable[int]], dict[int, np.ndarray | None]],
    ):
        self.pool = pool
        self.entry_bytes = entry_bytes
        self.read_state = read_state
        self._dirty: set[int] = set()
        self.stats_history: list[CheckpointStats] = []

    def mark_dirty(self, keys: Iterable[int]) -> None:
        """Record keys updated since the last checkpoint."""
        self._dirty.update(int(k) for k in keys)

    @property
    def last_checkpoint_batch(self) -> int:
        """Batch id of the latest committed checkpoint (-1 if none)."""
        return self.pool.root.get(_CKPT_BATCH_FIELD, -1)

    @property
    def checkpoint_epoch(self) -> int:
        """Monotone count of committed checkpoints (durable; survives
        restore — the epoch root field advances with each commit)."""
        return self.pool.root.get(_CKPT_EPOCH_FIELD, 0)

    def read_entry(self, key: int) -> np.ndarray | None:
        """One key's durable checkpointed payload.

        Raises:
            KeyError: the key was never checkpointed.
        """
        return self.pool.read(("ckpt", key))

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def checkpoint(self, batch_id: int) -> CheckpointStats:
        """Synchronously dump the dirty set as of ``batch_id``.

        The dump is one transaction: the commit also bumps the durable
        checkpoint batch id, so a crash mid-dump recovers the *previous*
        checkpoint in full.
        """
        dirty = sorted(self._dirty)
        snapshot = self.read_state(dirty)
        elapsed = 0.0
        with Transaction(self.pool) as tx:
            for key in dirty:
                elapsed += tx.write(
                    ("ckpt", key), snapshot[key], nbytes=self.entry_bytes
                )
        # Root updates are atomic; ordering after the data drain makes
        # the new batch id visible only with its data.
        self.pool.root.set(_CKPT_BATCH_FIELD, batch_id)
        self.pool.root.set(
            _CKPT_EPOCH_FIELD, self.pool.root.get(_CKPT_EPOCH_FIELD, 0) + 1
        )
        self._dirty.clear()
        stats = CheckpointStats(
            batch_id=batch_id,
            entries_written=len(dirty),
            bytes_written=len(dirty) * self.entry_bytes,
            sim_seconds=elapsed,
        )
        self.stats_history.append(stats)
        return stats

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def restore(self) -> tuple[int, dict[int, np.ndarray | None]]:
        """Load the latest durable checkpoint.

        Returns ``(batch_id, {key: weights})``.

        Raises:
            RecoveryError: no checkpoint was ever committed.
        """
        try:
            batch_id = self.pool.root.get(_CKPT_BATCH_FIELD)
        except KeyError:
            raise RecoveryError("no incremental checkpoint committed") from None
        state: dict[int, np.ndarray | None] = {}
        for pool_key, value in self.pool.items():
            if isinstance(pool_key, tuple) and pool_key and pool_key[0] == "ckpt":
                state[pool_key[1]] = None if value is None else np.array(value)
        return batch_id, state

    @classmethod
    def restore_from_pool(
        cls, pool: PmemPool
    ) -> tuple[int, dict[int, np.ndarray | None]]:
        """Restore without a live checkpointer (post-crash path)."""
        dummy = cls(pool, entry_bytes=1, read_state=lambda keys: {})
        return dummy.restore()
