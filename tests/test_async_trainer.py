"""Asynchronous training: staleness effects and checkpoint caveats."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSSGD
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.async_trainer import AsynchronousTrainer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.errors import ConfigError

FIELDS, DIM = 5, 8


def build_async(dataset, workers=2, staleness=1, seed=11):
    server = OpenEmbeddingServer(
        ServerConfig(
            num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=seed
        ),
        CacheConfig(capacity_bytes=64 << 10),
        PSSGD(lr=0.05),
    )
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed)
    return AsynchronousTrainer(
        server,
        model,
        dataset,
        num_workers=workers,
        batch_size=16,
        staleness=staleness,
        dense_optimizer=Adam(1e-2),
    )


@pytest.fixture
def dataset():
    return CriteoSynthetic(num_fields=FIELDS, vocab_per_field=60, seed=2)


class TestScheduling:
    def test_workers_consume_disjoint_batches(self, dataset):
        trainer = build_async(dataset, workers=2)
        trainer.run_steps(4)
        assert trainer._next_batch_per_worker == [4, 5]

    def test_staleness_delays_pushes(self, dataset):
        trainer = build_async(dataset, workers=2, staleness=3)
        trainer.run_steps(2)
        assert trainer.pending_pushes == 2  # nothing old enough yet
        trainer.run_steps(3)
        assert trainer.pending_pushes <= 3

    def test_zero_staleness_applies_immediately(self, dataset):
        trainer = build_async(dataset, workers=2, staleness=0)
        trainer.run_steps(3)
        assert trainer.pending_pushes == 0

    def test_losses_finite_and_learning(self, dataset):
        trainer = build_async(dataset, workers=4, staleness=2)
        losses = trainer.run_steps(120)
        assert all(np.isfinite(l) for l in losses)
        assert np.mean(losses[-20:]) < np.mean(losses[:20])

    def test_invalid_args(self, dataset):
        with pytest.raises(ConfigError):
            build_async(dataset, staleness=-1)


class TestSyncVsAsync:
    def test_async_differs_from_sync(self, dataset):
        """Stale multi-worker updates produce a different model than
        synchronous training over the same data."""
        async_trainer = build_async(dataset, workers=2, staleness=2)
        async_trainer.run_steps(20)
        async_trainer.checkpoint(quiesce=True)
        async_state = async_trainer.server.state_snapshot()

        sync_server = OpenEmbeddingServer(
            ServerConfig(
                num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=11
            ),
            CacheConfig(capacity_bytes=64 << 10),
            PSSGD(lr=0.05),
        )
        sync_model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=11)
        sync = SynchronousTrainer(
            sync_server, sync_model, dataset,
            num_workers=2, batch_size=16, dense_optimizer=Adam(1e-2),
        )
        sync.train(10)  # same number of worker-batches
        sync_state = sync_server.state_snapshot()
        shared = set(async_state) & set(sync_state)
        assert shared
        differing = sum(
            0 if np.array_equal(async_state[k], sync_state[k]) else 1 for k in shared
        )
        assert differing > 0

    def test_single_worker_zero_staleness_tracks_sync(self, dataset):
        """One worker with no staleness is synchronous training."""
        async_trainer = build_async(dataset, workers=1, staleness=0)
        async_trainer.run_steps(6)
        sync_server = OpenEmbeddingServer(
            ServerConfig(
                num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=11
            ),
            CacheConfig(capacity_bytes=64 << 10),
            PSSGD(lr=0.05),
        )
        sync_model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=11)
        sync = SynchronousTrainer(
            sync_server, sync_model, dataset,
            num_workers=1, batch_size=16, dense_optimizer=Adam(1e-2),
        )
        sync.train(6)
        a = async_trainer.server.state_snapshot()
        b = sync_server.state_snapshot()
        assert set(a) == set(b)
        for key in a:
            assert np.allclose(a[key], b[key], atol=1e-6)


class TestAsyncCheckpoints:
    def test_quiesced_checkpoint_captures_everything(self, dataset):
        trainer = build_async(dataset, workers=2, staleness=3)
        trainer.run_steps(10)
        missed = trainer.checkpoint(quiesce=True)
        assert missed == 0
        assert trainer.pending_pushes == 0

    def test_non_quiesced_checkpoint_misses_in_flight(self, dataset):
        """The asynchronous-checkpoint caveat: in-flight gradients are
        not part of the snapshot."""
        trainer = build_async(dataset, workers=2, staleness=4)
        trainer.run_steps(10)
        in_flight_before = trainer.pending_pushes
        assert in_flight_before > 0
        missed = trainer.checkpoint(quiesce=False)
        assert missed == in_flight_before
        # The in-flight updates land AFTER the checkpoint: the durable
        # snapshot and the live state diverge.
        snapshot = {
            k: np.array(v, copy=True)
            for k, v in trainer.server.state_snapshot().items()
        }
        trainer.run_steps(4)  # applies the stale pushes
        live = trainer.server.state_snapshot()
        assert any(
            not np.array_equal(snapshot[k], live[k]) for k in snapshot
        )
