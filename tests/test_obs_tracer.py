"""Tracer: nesting, clock domains, zero-overhead disabled mode."""

import pytest

from repro.errors import ConfigError
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Tracer
from repro.simulation.clock import SimClock


class TestSpans:
    def test_span_records_interval(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", keys=3) as span:
            clock.advance(0.5)
        assert span.end is not None
        assert span.duration == pytest.approx(0.5)
        assert span.attrs == {"keys": 3}

    def test_nesting_sets_parent(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_set_attaches_result_attrs(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("pull") as span:
            span.set(hits=7, misses=1)
        assert span.attrs["hits"] == 7

    def test_exception_closes_abandoned_children(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.span("leaked").__enter__()  # never exited
                clock.advance(1.0)
                raise RuntimeError("boom")
        leaked = tracer.spans_named("leaked")[0]
        assert leaked.end is not None
        assert tracer._stack == []

    def test_add_span_explicit_interval_on_track(self):
        tracer = Tracer(clock=SimClock())
        tracer.add_span("gpu.compute", start=1.0, duration=2.0, track="gpu")
        (span,) = tracer.spans_named("gpu.compute")
        assert span.track == "gpu"
        assert span.start == 1.0 and span.end == 3.0
        assert span.parent_id is None

    def test_add_span_rejects_negative_duration(self):
        tracer = Tracer(clock=SimClock())
        with pytest.raises(ConfigError):
            tracer.add_span("bad", start=0.0, duration=-1.0)

    def test_instant_recorded_at_now(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        clock.advance(4.0)
        tracer.instant("node.crash", track="failure", node=1)
        (event,) = tracer.instants
        assert event.timestamp == pytest.approx(4.0)
        assert event.track == "failure"

    def test_wall_clock_domain_is_monotone(self):
        tracer = Tracer()  # no SimClock -> perf_counter
        with tracer.span("a"):
            pass
        (span,) = tracer.closed_spans()
        assert span.end >= span.start >= 0.0


class TestIntrospection:
    def test_by_name_and_total_time(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        for __ in range(3):
            with tracer.span("round"):
                clock.advance(0.25)
        count, total = tracer.by_name()["round"]
        assert count == 3
        assert total == pytest.approx(0.75)
        assert tracer.total_time("round") == pytest.approx(0.75)

    def test_clear_resets_everything(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("x"):
            tracer.instant("mark")
        tracer.clear()
        assert tracer.spans == [] and tracer.instants == []


class TestDisabledMode:
    def test_disabled_span_is_shared_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("anything") as span:
            span.set(ignored=True)  # must be a no-op, not an error
        assert tracer.spans == []

    def test_disabled_add_span_and_instant_record_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.add_span("x", start=0.0, duration=1.0)
        tracer.instant("y")
        assert tracer.spans == [] and tracer.instants == []

    def test_null_tracer_singleton_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_event_cap_drops_and_counts(self):
        tracer = Tracer(clock=SimClock(), max_events=2)
        for __ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 2

    def test_zero_cap_rejected(self):
        with pytest.raises(ConfigError):
            Tracer(max_events=0)
