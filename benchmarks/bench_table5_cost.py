"""Table V: price of the parameter servers.

Reproduces the deployment sizing (2 DRAM machines vs 1 PMem machine for
500 GB), the hourly PS price, and the cost per epoch. Machine counts and
$/hour come from the pricing model; epoch hours combine the paper's
DRAM-PS baseline with OUR measured relative epoch times, so the
$-per-epoch column is a genuine model output, not a transcription.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.config import CheckpointConfig, CheckpointMode
from repro.cost.pricing import (
    R6E_13XLARGE,
    RE6P_13XLARGE,
    cost_per_epoch,
    deployment_for_model,
)
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator

GB = 1 << 30
PAPER = {
    "DRAM-PS": (2, 6.07, 5.75, 34.9),
    "PMem-OE": (1, 3.80, 5.33, 20.3),
    "Ori-Cache": (1, 3.80, 7.01, 26.6),
}
PAPER_DRAM_EPOCH_HOURS = 5.75


def test_table5_ps_cost(benchmark, report):
    def run():
        base = simulate_epoch(SystemKind.DRAM_PS, 4)
        interval = TrainingSimulator.interval_for_epoch_fraction(
            base.sim_seconds, 20, PAPER_DRAM_EPOCH_HOURS
        )
        dram = simulate_epoch(
            SystemKind.DRAM_PS, 4,
            checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
        ).sim_seconds
        oe = simulate_epoch(
            SystemKind.PMEM_OE, 4,
            checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
        ).sim_seconds
        ori = simulate_epoch(
            SystemKind.ORI_CACHE, 4,
            checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
        ).sim_seconds
        hours = {
            "DRAM-PS": PAPER_DRAM_EPOCH_HOURS,
            "PMem-OE": PAPER_DRAM_EPOCH_HOURS * oe / dram,
            "Ori-Cache": PAPER_DRAM_EPOCH_HOURS * ori / dram,
        }
        deployments = {
            "DRAM-PS": deployment_for_model(500 * GB, R6E_13XLARGE, "DRAM-PS"),
            "PMem-OE": deployment_for_model(500 * GB, RE6P_13XLARGE, "PMem-OE"),
            "Ori-Cache": deployment_for_model(500 * GB, RE6P_13XLARGE, "Ori-Cache"),
        }
        return hours, deployments

    hours, deployments = run_once(benchmark, run)
    report.title("table5_cost", "Table V: parameter-server cost for the 500 GB model")
    for name, (paper_machines, paper_rate, paper_hours, paper_epoch) in PAPER.items():
        deployment = deployments[name]
        epoch_cost = cost_per_epoch(deployment, hours[name])
        report.row(f"{name} machines", paper_machines, deployment.machines)
        report.row(
            f"{name} $/hour", f"{paper_rate:.2f}", f"{deployment.dollars_per_hour:.2f}"
        )
        report.row(
            f"{name} epoch hours", f"{paper_hours:.2f}", f"{hours[name]:.2f}"
        )
        report.row(f"{name} $/epoch", f"{paper_epoch:.1f}", f"{epoch_cost:.1f}")
        assert deployment.machines == paper_machines
        assert abs(deployment.dollars_per_hour - paper_rate) < 0.01

    oe_cost = cost_per_epoch(deployments["PMem-OE"], hours["PMem-OE"])
    dram_cost = cost_per_epoch(deployments["DRAM-PS"], hours["DRAM-PS"])
    ori_cost = cost_per_epoch(deployments["Ori-Cache"], hours["Ori-Cache"])
    report.line()
    report.row("PMem-OE saving vs DRAM-PS", "42%", f"{1 - oe_cost / dram_cost:.0%}")
    report.row("PMem-OE saving vs Ori-Cache", "24%", f"{1 - oe_cost / ori_cost:.0%}")
    assert 0.30 < 1 - oe_cost / dram_cost < 0.50
    assert 0.05 < 1 - oe_cost / ori_cost < 0.35


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not 0.30 < metrics["oe_saving_vs_dram"] < 0.50:
        failures.append(
            f"PMem-OE saving vs DRAM-PS "
            f"{metrics['oe_saving_vs_dram']:.0%} outside 30-50%"
        )
    if metrics["dram_machines"] != 2 or metrics["oe_machines"] != 1:
        failures.append("deployment sizing drifted from 2 DRAM / 1 PMem")
    return failures


@register(
    "table5_cost",
    params=[Param("workers", "int", 4)],
    headline={
        "oe_saving_vs_dram": Headline(direction="higher", max_regression=0.05),
        "oe_saving_vs_ori": Headline(direction="higher", max_regression=0.10),
    },
    check=_check,
)
def entry(*, workers):
    """Cost-per-epoch of the 500 GB deployment: PMem-OE's savings over
    DRAM-PS and Ori-Cache from the pricing model + measured ratios."""
    base = simulate_epoch(SystemKind.DRAM_PS, workers)
    interval = TrainingSimulator.interval_for_epoch_fraction(
        base.sim_seconds, 20, PAPER_DRAM_EPOCH_HOURS
    )
    dram = simulate_epoch(
        SystemKind.DRAM_PS, workers,
        checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
    ).sim_seconds
    oe = simulate_epoch(
        SystemKind.PMEM_OE, workers,
        checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
    ).sim_seconds
    ori = simulate_epoch(
        SystemKind.ORI_CACHE, workers,
        checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
    ).sim_seconds
    dram_dep = deployment_for_model(500 * GB, R6E_13XLARGE, "DRAM-PS")
    oe_dep = deployment_for_model(500 * GB, RE6P_13XLARGE, "PMem-OE")
    ori_dep = deployment_for_model(500 * GB, RE6P_13XLARGE, "Ori-Cache")
    dram_cost = cost_per_epoch(dram_dep, PAPER_DRAM_EPOCH_HOURS)
    oe_cost = cost_per_epoch(oe_dep, PAPER_DRAM_EPOCH_HOURS * oe / dram)
    ori_cost = cost_per_epoch(ori_dep, PAPER_DRAM_EPOCH_HOURS * ori / dram)
    return {
        "oe_saving_vs_dram": 1 - oe_cost / dram_cost,
        "oe_saving_vs_ori": 1 - oe_cost / ori_cost,
        "dram_machines": dram_dep.machines,
        "oe_machines": oe_dep.machines,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("table5_cost"))
