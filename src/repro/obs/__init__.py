"""Observability: span tracing, latency histograms, metrics export.

The cross-layer measurement surface of the reproduction (see
``docs/OBSERVABILITY.md``):

* :class:`Tracer` — nested, clock-timestamped spans with a
  zero-overhead disabled mode (:data:`NULL_TRACER`).
* :class:`Histogram` — log-bucketed, mergeable latency distributions
  (p50/p95/p99/max).
* :class:`MetricsRegistry` — labeled, mergeable named metrics unifying
  the per-layer stat bundles (:func:`collect_bundle`).
* Exporters — Prometheus text, JSON snapshot, Chrome ``trace_event``
  JSON (open in Perfetto to see the Figure 7 pipeline overlap).
"""

from repro.obs.exporters import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    render_snapshot,
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.histogram import Histogram
from repro.obs.registry import Counter, Gauge, MetricsRegistry, collect_bundle
from repro.obs.tracer import NULL_TRACER, InstantEvent, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "collect_bundle",
    "render_snapshot",
    "to_chrome_trace",
    "to_json_snapshot",
    "to_prometheus",
    "write_chrome_trace",
    "write_metrics",
]
