"""Access queue and checkpoint request queue semantics."""

import pytest

from repro.core.entry import EmbeddingEntry
from repro.core.queues import AccessQueue, CheckpointRequestQueue
from repro.errors import CheckpointError, ServerError


def entries(*keys):
    return [EmbeddingEntry(k) for k in keys]


class TestAccessQueue:
    def test_append_pop_batch(self):
        queue = AccessQueue()
        batch = entries(1, 2, 3)
        queue.append(0, batch)
        assert [e.key for e in queue.pop_batch(0)] == [1, 2, 3]
        assert len(queue) == 0

    def test_multiple_tasks_same_batch_drain_together(self):
        """Each worker's pull appends its own task; the maintainer for
        batch n consumes them all."""
        queue = AccessQueue()
        queue.append(0, entries(1))
        queue.append(0, entries(2))
        assert [e.key for e in queue.pop_batch(0)] == [1, 2]

    def test_stale_tasks_drain_with_later_round(self):
        queue = AccessQueue()
        queue.append(0, entries(1))
        queue.append(1, entries(2))
        assert [e.key for e in queue.pop_batch(1)] == [1, 2]

    def test_future_batch_at_head_rejected(self):
        queue = AccessQueue()
        queue.append(5, entries(1))
        with pytest.raises(ServerError):
            queue.pop_batch(3)

    def test_pending_counters(self):
        queue = AccessQueue()
        queue.append(0, entries(1, 2))
        queue.append(0, entries(3))
        assert queue.pending_entries == 3
        assert queue.total_entries_enqueued == 3

    def test_pop_empty_returns_nothing(self):
        assert AccessQueue().pop_batch(0) == []


class TestCheckpointRequestQueue:
    def test_head_none_when_idle(self):
        assert CheckpointRequestQueue().head() is None

    def test_fifo_order(self):
        queue = CheckpointRequestQueue()
        queue.push(5)
        queue.push(9)
        assert queue.head() == 5
        assert queue.pop() == 5
        assert queue.head() == 9

    def test_non_monotone_request_rejected(self):
        queue = CheckpointRequestQueue()
        queue.push(5)
        with pytest.raises(CheckpointError):
            queue.push(5)
        with pytest.raises(CheckpointError):
            queue.push(3)

    def test_pop_empty_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointRequestQueue().pop()

    def test_pending_snapshot(self):
        queue = CheckpointRequestQueue()
        queue.push(1)
        queue.push(2)
        assert queue.pending() == [1, 2]
        assert queue.total_requested == 2
