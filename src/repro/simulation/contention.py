"""Concurrency-contention cost models.

The paper's central scaling observation (Figures 3 and 7) is that
fine-grained cache structures maintained *inline* on the request path
degrade sharply as GPU workers multiply: every access takes a write
lock to update the LRU list, so the serialized section becomes the
bottleneck. OpenEmbedding's pull path is read-locked and the LRU
maintenance is deferred, so it scales.

These helpers turn "k concurrent requesters each needing an s-second
serialized section" into elapsed simulated time.
"""

from __future__ import annotations

from repro.errors import SimulationError


def serialized_section_time(
    ops: int,
    section_seconds: float,
    *,
    contenders: int = 1,
    contention_factor: float = 0.0,
) -> float:
    """Elapsed time for ``ops`` critical sections executed serially.

    A lock admits one holder at a time, so the base cost is
    ``ops * section_seconds`` regardless of thread count. Real locks
    degrade further under contention (cache-line bouncing, futex wakes);
    that is modelled as a per-op surcharge growing linearly with the
    number of contending threads:

    ``ops * section_seconds * (1 + contention_factor * (contenders - 1))``

    Args:
        ops: number of critical-section executions.
        section_seconds: duration of one uncontended section.
        contenders: threads competing for the lock.
        contention_factor: surcharge per extra contender (0 = ideal lock).
    """
    if ops < 0:
        raise SimulationError(f"negative op count {ops}")
    if section_seconds < 0:
        raise SimulationError(f"negative section time {section_seconds}")
    if contenders < 1:
        raise SimulationError(f"contenders must be >= 1, got {contenders}")
    if contention_factor < 0:
        raise SimulationError("contention_factor must be non-negative")
    penalty = 1.0 + contention_factor * (contenders - 1)
    return ops * section_seconds * penalty


def parallel_section_time(ops: int, section_seconds: float, threads: int) -> float:
    """Elapsed time for ``ops`` independent sections over ``threads``.

    Used for read-locked (shared) paths that scale with thread count,
    e.g. OpenEmbedding's pull handler (Algorithm 1 outside entry
    creation).
    """
    if ops < 0:
        raise SimulationError(f"negative op count {ops}")
    if section_seconds < 0:
        raise SimulationError(f"negative section time {section_seconds}")
    if threads < 1:
        raise SimulationError(f"threads must be >= 1, got {threads}")
    return -(-ops // threads) * section_seconds


def shared_bandwidth_time(nbytes: int, bandwidth: float, streams: int = 1) -> float:
    """Time to move ``nbytes`` through a resource shared by ``streams``.

    Each stream sees ``bandwidth / streams``; the call returns the time
    for ONE stream's ``nbytes`` under that share.
    """
    if nbytes < 0:
        raise SimulationError(f"negative transfer size {nbytes}")
    if bandwidth <= 0:
        raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
    if streams < 1:
        raise SimulationError(f"streams must be >= 1, got {streams}")
    return nbytes / (bandwidth / streams)
