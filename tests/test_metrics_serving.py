"""CTR metrics and the export/serving path."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.metrics import calibration_ratio, evaluate_model, log_loss, roc_auc
from repro.dlrm.optimizers import Adam
from repro.dlrm.serving import InferenceSession, export_model
from repro.dlrm.trainer import SynchronousTrainer
from repro.errors import ConfigError, ServerError

FIELDS, DIM = 5, 8


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_perfectly_wrong(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_average(self):
        # Two pairs with equal scores: AUC = 0.5 by symmetry.
        assert roc_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_invariant_to_monotone_transform(self):
        labels = np.array([0, 1, 0, 1, 1, 0])
        scores = np.array([0.1, 0.6, 0.3, 0.9, 0.5, 0.2])
        assert roc_auc(labels, scores) == pytest.approx(
            roc_auc(labels, scores * 10 - 3)
        )

    def test_single_class_rejected(self):
        with pytest.raises(ConfigError):
            roc_auc([1, 1], [0.5, 0.6])


class TestLogLossCalibration:
    def test_log_loss_at_half(self):
        assert log_loss([0, 1], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_log_loss_penalises_confident_errors(self):
        good = log_loss([1], [0.9])
        bad = log_loss([1], [0.1])
        assert bad > good

    def test_log_loss_clipping(self):
        assert np.isfinite(log_loss([1, 0], [1.0, 0.0]))

    def test_calibration_perfect(self):
        assert calibration_ratio([1, 0, 1, 0], [0.5, 0.5, 0.5, 0.5]) == 1.0

    def test_calibration_overprediction(self):
        assert calibration_ratio([1, 0, 0, 0], [0.5, 0.5, 0.5, 0.5]) == 2.0

    def test_calibration_no_positives(self):
        with pytest.raises(ConfigError):
            calibration_ratio([0, 0], [0.5, 0.5])


@pytest.fixture(scope="module")
def trained():
    dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=100, seed=8)
    server = OpenEmbeddingServer(
        ServerConfig(
            num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=4
        ),
        CacheConfig(capacity_bytes=128 << 10),
        PSAdagrad(lr=0.05),
    )
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=4)
    trainer = SynchronousTrainer(
        server, model, dataset,
        num_workers=2, batch_size=32, dense_optimizer=Adam(1e-2),
    )
    trainer.train(80)
    return trainer, server, model, dataset


class TestEvaluateModel:
    def test_trained_model_beats_chance(self, trained):
        trainer, server, model, dataset = trained
        metrics = evaluate_model(
            model, trainer.embedding, dataset, batches=8, batch_size=64
        )
        assert metrics["auc"] > 0.55
        assert metrics["logloss"] < np.log(2)
        assert 0.5 < metrics["calibration"] < 2.0


class TestExportServe:
    def test_roundtrip_predictions_identical(self, trained, tmp_path):
        trainer, server, model, dataset = trained
        path = tmp_path / "model.npz"
        exported = export_model(path, server, model)
        assert exported == server.num_entries

        fresh = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=99)
        session = InferenceSession(path, fresh)
        assert session.num_entries == exported

        batch = dataset.batch(16, 50_000)
        live_emb = trainer.embedding.pull(batch.keys, 50_000)
        server.maintain(50_000)
        live = model.predict_proba(live_emb)
        served = session.predict_proba(batch.keys)
        assert np.array_equal(live, served)

    def test_cold_keys_match_live_initialisation(self, trained, tmp_path):
        """Unseen keys serve the exact vector the live PS would create."""
        trainer, server, model, __ = trained
        path = tmp_path / "model.npz"
        export_model(path, server, model)
        fresh = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=0)
        session = InferenceSession(path, fresh)
        unseen_key = 10_000_000
        out = session.lookup(np.full((1, FIELDS), unseen_key))
        live = server.pull([unseen_key], 90_000).weights[0]
        assert np.array_equal(out[0, 0], live)
        assert session.cold_lookups == FIELDS

    def test_explicit_default_weight_override(self, trained, tmp_path):
        trainer, server, model, __ = trained
        path = tmp_path / "model.npz"
        export_model(path, server, model)
        fresh = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=0)
        session = InferenceSession(
            path, fresh, default_weight=np.zeros(DIM, dtype=np.float32)
        )
        out = session.lookup(np.full((1, FIELDS), 20_000_000))
        assert np.array_equal(out, np.zeros((1, FIELDS, DIM), dtype=np.float32))

    def test_model_kind_checked(self, trained, tmp_path):
        from repro.dlrm.dlrm_model import DLRM

        trainer, server, model, __ = trained
        path = tmp_path / "model.npz"
        export_model(path, server, model)
        wrong = DLRM(FIELDS, DIM, num_dense=3, bottom_hidden=(4,), top_hidden=(4,))
        with pytest.raises(ConfigError):
            InferenceSession(path, wrong)

    def test_empty_server_rejected(self, tmp_path):
        server = OpenEmbeddingServer(
            ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 22)
        )
        model = DeepFM(FIELDS, DIM, use_first_order=False)
        with pytest.raises(ServerError):
            export_model(tmp_path / "m.npz", server, model)

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, junk=np.arange(3))
        model = DeepFM(FIELDS, DIM, use_first_order=False)
        with pytest.raises(ConfigError):
            InferenceSession(path, model)
