"""Figure 9: individual improvement of cache and pipeline (16 GPUs).

Four PMem-OE configurations (2 GB-equivalent cache where enabled):
both disabled / cache only / pipeline only / both enabled. Paper:
cache alone cuts 42.1 % of training time, the pipeline on top of the
cache cuts another 54.9 %, and together they remove 73.9 %.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind

PAPER_CACHE_ONLY = 1 - 0.421  # 0.579 of the all-disabled time
PAPER_BOTH = 1 - 0.739  # 0.261


def test_fig9_cache_pipeline_ablation(benchmark, report):
    def run():
        return {
            "none": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=False, pipelined=False
            ).sim_seconds,
            "cache_only": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=True, pipelined=False
            ).sim_seconds,
            "pipeline_only": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=False, pipelined=True
            ).sim_seconds,
            "both": simulate_epoch(
                SystemKind.PMEM_OE, 16, use_cache=True, pipelined=True
            ).sim_seconds,
        }

    times = run_once(benchmark, run)
    base = times["none"]
    report.title("fig9_ablation", "Figure 9: cache x pipeline ablation (norm. to both-off)")
    report.row("cache + pipeline disabled", "1.000", "1.000")
    report.row("cache only", f"{PAPER_CACHE_ONLY:.3f}", f"{times['cache_only'] / base:.3f}")
    report.row("pipeline only", "(not quoted)", f"{times['pipeline_only'] / base:.3f}")
    report.row("cache + pipeline", f"{PAPER_BOTH:.3f}", f"{times['both'] / base:.3f}")
    cache_cut = 1 - times["cache_only"] / base
    pipeline_cut = 1 - times["both"] / times["cache_only"]
    total_cut = 1 - times["both"] / base
    report.line()
    report.row("reduction from cache", "42.1%", f"{cache_cut:.1%}")
    report.row("reduction from pipeline", "54.9%", f"{pipeline_cut:.1%}")
    report.row("combined reduction", "73.9%", f"{total_cut:.1%}")

    assert times["both"] < times["cache_only"] < base
    assert times["both"] < times["pipeline_only"] < base
    assert 0.2 < cache_cut < 0.6
    assert 0.3 < pipeline_cut < 0.7
    assert 0.55 < total_cut < 0.85


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not 0.2 < metrics["cache_cut"] < 0.6:
        failures.append(f"cache cut {metrics['cache_cut']:.1%} outside 20-60%")
    if not 0.55 < metrics["total_cut"] < 0.85:
        failures.append(f"total cut {metrics['total_cut']:.1%} outside 55-85%")
    return failures


@register(
    "fig9_ablation",
    params=[Param("workers", "int", 16)],
    headline={
        "cache_cut": Headline(direction="higher", max_regression=0.10),
        "pipeline_cut": Headline(direction="higher", max_regression=0.10),
        "total_cut": Headline(direction="higher", max_regression=0.05),
    },
    check=_check,
)
def entry(*, workers):
    """Training-time reductions attributable to the cache, the pipeline,
    and both together (four-configuration ablation)."""
    none = simulate_epoch(
        SystemKind.PMEM_OE, workers, use_cache=False, pipelined=False
    ).sim_seconds
    cache_only = simulate_epoch(
        SystemKind.PMEM_OE, workers, use_cache=True, pipelined=False
    ).sim_seconds
    pipeline_only = simulate_epoch(
        SystemKind.PMEM_OE, workers, use_cache=False, pipelined=True
    ).sim_seconds
    both = simulate_epoch(
        SystemKind.PMEM_OE, workers, use_cache=True, pipelined=True
    ).sim_seconds
    return {
        "cache_cut": 1 - cache_only / none,
        "pipeline_cut": 1 - both / cache_only,
        "pipeline_only_cut": 1 - pipeline_only / none,
        "total_cut": 1 - both / none,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig9_ablation"))
