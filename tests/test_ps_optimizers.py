"""PS-side optimizers: SGD and Adagrad update rules."""

import numpy as np
import pytest

from repro.core.optimizers import PSAdagrad, PSSGD
from repro.errors import ConfigError


class TestPSSGD:
    def test_update_rule(self):
        opt = PSSGD(lr=0.1)
        weights = np.ones(4, dtype=np.float32)
        opt.apply(weights, None, np.full(4, 2.0, dtype=np.float32))
        assert np.allclose(weights, 0.8)

    def test_stateless(self):
        opt = PSSGD()
        assert opt.state_width(8) == 0
        assert opt.init_state(8) is None

    def test_invalid_lr(self):
        with pytest.raises(ConfigError):
            PSSGD(lr=0.0)


class TestPSAdagrad:
    def test_state_width_matches_dim(self):
        opt = PSAdagrad()
        assert opt.state_width(8) == 8
        assert opt.init_state(8).shape == (8,)

    def test_update_rule(self):
        opt = PSAdagrad(lr=1.0, eps=1e-12, initial_accumulator=0.0)
        weights = np.zeros(2, dtype=np.float32)
        state = opt.init_state(2)
        grad = np.array([3.0, 4.0], dtype=np.float32)
        opt.apply(weights, state, grad)
        # acc = g^2; step = lr * g / sqrt(acc) = sign(g)
        assert np.allclose(weights, [-1.0, -1.0])
        assert np.allclose(state, [9.0, 16.0])

    def test_steps_shrink_over_time(self):
        opt = PSAdagrad(lr=0.1)
        weights = np.zeros(1, dtype=np.float32)
        state = opt.init_state(1)
        grad = np.ones(1, dtype=np.float32)
        opt.apply(weights, state, grad)
        first = abs(float(weights[0]))
        before = float(weights[0])
        opt.apply(weights, state, grad)
        second = abs(float(weights[0]) - before)
        assert second < first

    def test_accumulator_required(self):
        opt = PSAdagrad()
        with pytest.raises(AssertionError):
            opt.apply(np.zeros(1, dtype=np.float32), None, np.ones(1, dtype=np.float32))

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            PSAdagrad(lr=-1)
        with pytest.raises(ConfigError):
            PSAdagrad(eps=0)
        with pytest.raises(ConfigError):
            PSAdagrad(initial_accumulator=-0.1)
