"""Remote PS frontend: the server protocol over wire messages.

:class:`PSNodeService` wraps one :class:`~repro.core.ps_node.PSNode`
behind an :class:`~repro.network.rpc.RpcServer`; :class:`RemotePSClient`
exposes the familiar ``pull`` / ``maintain`` / ``push`` /
``request_checkpoint`` surface, but every operation round-trips through
encoded bytes on a simulated link — a faithful stand-in for the paper's
TensorFlow-operator <-> PS RPC.

``RemotePSClient`` is protocol-compatible with
:class:`~repro.core.server.OpenEmbeddingServer`, so the functional
trainer runs over it unchanged; tests assert the trained weights are
identical to the in-process path.

Fault tolerance: pass a :class:`~repro.config.NetworkFaultConfig` and
the client's channels ride a
:class:`~repro.failure.network_faults.FaultyLink` — dropped, delayed,
duplicated and corrupted frames are retried transparently. Pushes are
non-idempotent, so each carries a ``(worker_id, seq)`` header and the
service keeps a dedup window: a retried push whose first copy actually
applied is absorbed, never double-applied. Retries and dedup are
therefore *semantics-free* — trained weights are bit-identical to a
clean wire.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.config import CacheConfig, NetworkFaultConfig, RetryConfig, ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.failover import FailoverManager, NodeState
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer
from repro.core.replication import ReplicatedPSNode
from repro.core.sharding import (
    RING_STATE_FIELD,
    HashPartitioner,
    make_partitioner,
    pack_ring_state,
    unpack_ring_state,
)
from repro.errors import (
    NodeDeadError,
    PoolClosedError,
    RpcTimeoutError,
    ServerError,
    ShardRoutingError,
)
from repro.failure.network_faults import FaultyLink, LinkFaultStats
from repro.core.serving_backend import LookupResult, ReplicaSelector
from repro.network.messages import (
    CheckpointRequest,
    HeartbeatRequest,
    LookupRequest,
    LookupResponse,
    MaintainRequest,
    MaintainResponse,
    MigrateRequest,
    MigrateResponse,
    PromoteRequest,
    PullRequest,
    PullResponse,
    PushRequest,
    RingUpdateRequest,
    StatusResponse,
)
from repro.network.rpc import RpcChannel, RpcServer, Unresponsive
from repro.obs.registry import MetricsRegistry, collect_bundle
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.clock import SimClock
from repro.simulation.metrics import RpcReliabilityStats
from repro.simulation.network import NetworkModel

DEFAULT_DEDUP_WINDOW = 1024
"""Replayed pushes older than this many pushes are no longer absorbed."""


class PSNodeService:
    """One PS node's RPC surface.

    Args:
        node: the wrapped shard.
        dedup_window: how many recent ``(worker_id, seq)`` push
            identities to remember (and whose cached replies to
            replay). A retried push inside the window is suppressed —
            at-most-once gradient application; its original reply is
            returned verbatim.
        tracer: span sink; every handler invocation becomes a
            ``ps.pull`` / ``ps.push`` / ``ps.maintain`` /
            ``ps.checkpoint`` span carrying its request counts.
    """

    def __init__(
        self,
        node: PSNode,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        tracer: Tracer | None = None,
    ):
        if dedup_window < 1:
            raise ServerError(f"dedup_window must be >= 1, got {dedup_window}")
        self.node = node
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.dedup_window = dedup_window
        self.dup_suppressed = 0
        self._push_replies: OrderedDict[tuple[int, int], StatusResponse] = (
            OrderedDict()
        )
        self._maintain_replies: OrderedDict[int, MaintainResponse] = OrderedDict()
        self._checkpoint_replies: OrderedDict[int, StatusResponse] = OrderedDict()
        self._migrate_replies: OrderedDict[tuple[int, int], StatusResponse] = (
            OrderedDict()
        )
        self.server = RpcServer()
        self.server.register(PullRequest.TYPE, self._handle_pull)
        self.server.register(PushRequest.TYPE, self._handle_push)
        self.server.register(CheckpointRequest.TYPE, self._handle_checkpoint)
        self.server.register(MaintainRequest.TYPE, self._handle_maintain)
        self.server.register(MigrateRequest.TYPE, self._handle_migrate)
        self.server.register(RingUpdateRequest.TYPE, self._handle_ring_update)
        self.server.register(HeartbeatRequest.TYPE, self._handle_heartbeat)
        self.server.register(PromoteRequest.TYPE, self._handle_promote)
        self.server.register(LookupRequest.TYPE, self._handle_lookup)

    def _span(self, name: str, track: str = "main", **attrs):
        """Open a handler span parented to the requesting client.

        When the dispatched frame carried a wire
        :class:`~repro.network.messages.TraceContext`, the span is
        stamped with ``trace_id``/``parent_span_id`` so
        :mod:`repro.obs.merge` can flow-link it back to the exact
        client attempt that caused it.
        """
        context = self.server.current_context
        if context is not None and context.sampled:
            attrs["trace_id"] = context.trace_id
            attrs["parent_span_id"] = context.parent_span_id
        return self.tracer.span(name, track=track, **attrs)

    def _check_alive(self) -> None:
        """A dead primary answers nothing, not an error frame.

        When the wrapped shard is a :class:`ReplicatedPSNode` whose
        primary was killed, every data-plane handler raises
        :class:`~repro.network.rpc.Unresponsive` — the dispatcher drops
        the request silently, so from the client's side the node looks
        exactly like a vanished machine: the attempt times out, the
        retry ladder runs dry, and only the failure detector (via the
        lease table) can say *why*.
        """
        if isinstance(self.node, ReplicatedPSNode) and not self.node.primary_alive:
            raise Unresponsive(f"node {self.node.node_id} primary is dead")

    def _handle_heartbeat(self, request: HeartbeatRequest) -> StatusResponse:
        """Answer a lease-renewal probe (silence when the primary died).

        The reply carries the node's newest completed batch so the
        detector doubles as a liveness *and* progress probe. While a
        promoted node is re-replicating, each heartbeat also advances
        the background rebuild one chunk — re-replication literally
        rides the heartbeat cadence, the way the paper's asynchronous
        recovery rides training traffic.
        """
        self._check_alive()
        if isinstance(self.node, ReplicatedPSNode) and self.node.degraded:
            self.node.rebuild_tick()
        return StatusResponse(
            code=StatusResponse.OK, value=self.node.latest_completed_batch
        )

    def _handle_promote(self, request: PromoteRequest) -> StatusResponse:
        """Client-driven replica promotion; idempotent on a live primary.

        A client whose lease on this node expired asks the replica pair
        to fail over. If the primary is in fact alive (a false positive:
        the probe frames were dropped, not the node), the request is an
        acknowledged no-op — promotion must be safe to request twice or
        on mere suspicion. A genuinely dead primary hands the shard to
        its synchronously-maintained backup; with no backup standing
        (double fault) a typed :class:`~repro.errors.FailoverError`
        travels back as ``ERR_FAILOVER`` and the client falls through to
        checkpoint recovery.
        """
        if not isinstance(self.node, ReplicatedPSNode):
            raise ServerError(
                f"node {self.node.node_id} is unreplicated; promotion "
                "requires replicas=2"
            )
        with self._span(
            "ps.promote", track="failover", node=self.node.node_id
        ) as span:
            if self.node.primary_alive:
                span.set(noop=True)
                return StatusResponse(
                    code=StatusResponse.OK,
                    value=self.node.latest_completed_batch,
                )
            committed = int(request.committed_epoch)
            self.node.failover(committed_epoch=committed if committed >= 0 else None)
            span.set(epoch=self.node.ring_epoch)
            return StatusResponse(
                code=StatusResponse.OK, value=self.node.latest_completed_batch
            )

    def _handle_pull(self, request: PullRequest) -> PullResponse:
        self._check_alive()
        with self._span(
            "ps.pull", node=self.node.node_id, keys=len(request.keys)
        ) as span:
            # The decoded key array goes straight through: the cache
            # normalizes it once, instead of a per-key int() loop here.
            # worker_id/progress feed the bounded-staleness admission
            # check; -1 on the wire means anonymous (no admission).
            worker_id = int(request.worker_id)
            result = self.node.pull(
                request.keys,
                int(request.batch_id),
                worker_id=worker_id if worker_id >= 0 else None,
                progress=int(request.progress),
            )
            if result.weights is None:
                raise ServerError("remote pull requires a value-mode node")
            span.set(hits=result.hits, misses=result.misses, created=result.created)
            return PullResponse(
                batch_id=request.batch_id,
                weights=result.weights,
                hits=result.hits,
                misses=result.misses,
                created=result.created,
            )

    def _handle_lookup(self, request: LookupRequest) -> LookupResponse:
        """Serve a snapshot-pinned batched read (the inference path).

        Lookups are pure reads — idempotent by construction, so unlike
        pushes they carry no dedup identity and need no replay cache: a
        retried frame reads the same snapshot again. A dead primary
        answers with silence (the failover machinery reroutes the
        reader); a ``-1`` request pin resolves to the shard's newest
        completed checkpoint, echoed back in the response.
        """
        self._check_alive()
        with self._span(
            "ps.lookup",
            track="serving",
            node=self.node.node_id,
            keys=len(request.keys),
        ) as span:
            snapshot = int(request.snapshot_id)
            pin = None if snapshot < 0 else snapshot
            if isinstance(self.node, ReplicatedPSNode):
                result = self.node.lookup(
                    request.keys, pin, replica=int(request.replica)
                )
            else:
                result = self.node.lookup(request.keys, pin)
            span.set(
                snapshot=result.snapshot_id, hits=result.hits, cold=result.cold
            )
            return LookupResponse(
                snapshot_id=result.snapshot_id,
                weights=result.weights,
                hits=result.hits,
                cold=result.cold,
            )

    def _handle_push(self, request: PushRequest) -> StatusResponse:
        self._check_alive()
        with self._span(
            "ps.push", node=self.node.node_id, keys=len(request.keys)
        ) as span:
            dedup_key = request.dedup_key
            if dedup_key is not None:
                cached = self._push_replies.get(dedup_key)
                if cached is not None:
                    self.dup_suppressed += 1
                    self.node.metrics.rpc.dup_suppressed += 1
                    span.set(dup_suppressed=True)
                    return cached
            # Keys and grads flow in as zero-copy decode views; the
            # update path aggregates into fresh arrays, never mutating
            # the (read-only) request payload.
            updated = self.node.push(
                request.keys,
                request.grads,
                int(request.batch_id),
                worker_id=int(request.worker_id),
                seq=int(request.seq),
            )
            span.set(updated=updated)
            response = StatusResponse(code=StatusResponse.OK, value=updated)
            if dedup_key is not None:
                self._push_replies[dedup_key] = response
                while len(self._push_replies) > self.dedup_window:
                    self._push_replies.popitem(last=False)
            return response

    def _handle_checkpoint(self, request: CheckpointRequest) -> StatusResponse:
        """Queue a batch-aware checkpoint; idempotent per batch id.

        ``request_checkpoint`` rejects re-queuing the same batch, so a
        duplicated or retried request frame replays the cached OK
        instead of surfacing a spurious ``CheckpointError`` to a client
        whose first copy already landed.
        """
        batch_id = int(request.batch_id)
        self._check_alive()
        with self._span(
            "ps.checkpoint", node=self.node.node_id, batch=batch_id
        ) as span:
            cached = self._checkpoint_replies.get(batch_id)
            if cached is not None:
                self.dup_suppressed += 1
                self.node.metrics.rpc.dup_suppressed += 1
                span.set(dup_suppressed=True)
                return cached
            self.node.request_checkpoint(batch_id)
            response = StatusResponse(code=StatusResponse.OK, value=batch_id)
            self._checkpoint_replies[batch_id] = response
            while len(self._checkpoint_replies) > self.dedup_window:
                self._checkpoint_replies.popitem(last=False)
            return response

    def _handle_maintain(self, request: MaintainRequest) -> MaintainResponse:
        """Run the deferred maintenance round for one batch.

        Maintenance is state-idempotent — a retried trigger (first reply
        lost on the wire) pops an already-drained access queue and does
        no work — but its *counters* are not: the retry would report
        zeros. So the last few rounds' replies are cached per batch id
        and replayed when a re-trigger finds nothing to do, keeping the
        client's maintenance accounting exact under retries.
        """
        batch_id = int(request.batch_id)
        self._check_alive()
        with self._span(
            "ps.maintain", node=self.node.node_id, batch=batch_id
        ) as span:
            result = self.node.maintain(batch_id)
            span.set(processed=result.processed, flushes=result.flushes)
            if result.processed == 0 and batch_id in self._maintain_replies:
                self.dup_suppressed += 1
                self.node.metrics.rpc.dup_suppressed += 1
                return self._maintain_replies[batch_id]
        response = MaintainResponse(
            batch_id=batch_id,
            processed=result.processed,
            loads=result.loads,
            flushes=result.flushes,
            evictions=result.evictions,
            checkpoints_completed=result.checkpoints_completed,
        )
        self._maintain_replies[batch_id] = response
        while len(self._maintain_replies) > self.dedup_window:
            self._maintain_replies.popitem(last=False)
        return response

    def _handle_migrate(self, request: MigrateRequest):
        """One live-migration op against this shard.

        ``EXPORT`` is read-only and replays harmlessly. ``PUT`` and
        ``DELETE`` mutate ownership, so — exactly like pushes — they
        carry a ``(source, seq)`` identity whose cached reply is
        replayed when a retried frame arrives after the first copy
        already applied. (Both ops are *also* state-idempotent at the
        node level; the dedup cache additionally keeps the coordinator's
        moved-key accounting exact under retries.)
        """
        self._check_alive()
        with self._span(
            "ps.migrate", track="migration", node=self.node.node_id, op=request.op
        ) as span:
            if request.op == MigrateRequest.OP_EXPORT:
                entries = self.node.export_entries(list(request.keys))
                width = (
                    0 if self.node.metadata_only
                    else self.node.store.entry_bytes // 4
                )
                span.set(keys=len(entries))
                return MigrateResponse(
                    width=width,
                    entries=tuple((k, tuple(v)) for k, v in entries),
                )
            dedup_key = request.dedup_key
            if dedup_key is not None:
                cached = self._migrate_replies.get(dedup_key)
                if cached is not None:
                    self.dup_suppressed += 1
                    self.node.metrics.rpc.dup_suppressed += 1
                    span.set(dup_suppressed=True)
                    return cached
            if request.op == MigrateRequest.OP_PUT:
                count = self.node.ingest_entries(
                    [(k, list(v)) for k, v in request.entries]
                )
            elif request.op == MigrateRequest.OP_DELETE:
                count = self.node.drop_keys(list(request.keys))
            else:
                raise ServerError(f"unknown migrate op {request.op}")
            span.set(keys=count)
            response = StatusResponse(code=StatusResponse.OK, value=count)
            if dedup_key is not None:
                self._migrate_replies[dedup_key] = response
                while len(self._migrate_replies) > self.dedup_window:
                    self._migrate_replies.popitem(last=False)
            return response

    def _handle_ring_update(self, request: RingUpdateRequest) -> StatusResponse:
        """Serve the committed ring state (coordinator shard only).

        The packed ring word travels back in ``StatusResponse.value``;
        a shard whose pool holds no ring state answers ``ERR_ROUTING``
        so a misdirected refresh fails typed, not silently.
        """
        self._check_alive()
        fields = self.node.pool.root.fields()
        if RING_STATE_FIELD not in fields:
            raise ShardRoutingError(
                f"node {self.node.node_id} holds no ring state "
                "(ask the coordinator, node 0)"
            )
        return StatusResponse(
            code=StatusResponse.OK, value=fields[RING_STATE_FIELD]
        )


class RpcMigrationTransport:
    """Move migration payloads through framed RPCs with retry + dedup.

    The :class:`~repro.core.migration.ShardMigrator` calls this instead
    of touching node objects, so every entry transferred during a live
    reshard crosses the (possibly faulty) simulated wire: drops,
    duplicates and corruption are retried/absorbed by the exact same
    discipline the training path uses — which the crash-point sweep
    runs with fault injection enabled to prove.
    """

    def __init__(self, client: "RemotePSClient"):
        self.client = client

    def provision(self, node_id: int, server_config):
        return self.client.provision_node(node_id, server_config)

    def export(self, node, keys):
        if not keys:
            return []
        response = self._call(
            node,
            MigrateRequest(
                op=MigrateRequest.OP_EXPORT,
                source=self.client.worker_id,
                seq=self.client.next_migrate_seq(),
                width=self._width(node),
                keys=tuple(int(k) for k in keys),
            ),
        )
        return [(key, list(versions)) for key, versions in response.entries]

    def put(self, node, entries) -> int:
        if not entries:
            return 0
        response = self._call(
            node,
            MigrateRequest(
                op=MigrateRequest.OP_PUT,
                source=self.client.worker_id,
                seq=self.client.next_migrate_seq(),
                width=self._width(node),
                entries=tuple((k, tuple(v)) for k, v in entries),
            ),
        )
        if not response.ok:
            raise ServerError(f"migrate put rejected with code {response.code}")
        return response.value

    def delete(self, node, keys) -> int:
        if not keys:
            return 0
        response = self._call(
            node,
            MigrateRequest(
                op=MigrateRequest.OP_DELETE,
                source=self.client.worker_id,
                seq=self.client.next_migrate_seq(),
                keys=tuple(int(k) for k in keys),
            ),
        )
        if not response.ok:
            raise ServerError(f"migrate delete rejected with code {response.code}")
        return response.value

    def _width(self, node) -> int:
        return 0 if node.metadata_only else node.store.entry_bytes // 4

    def _call(self, node, request):
        return self.client.channel_for(node.node_id).call(request)


PROBE_CHANNEL_BASE = 1000
"""Probe channels get ``PROBE_CHANNEL_BASE + node_id`` identities so
their RPC spans/metrics never collide with the data-plane channels."""

PROBE_RETRY = RetryConfig(
    max_attempts=3,
    attempt_timeout_s=0.05,
    call_timeout_s=0.5,
    base_backoff_s=1e-3,
    max_backoff_s=0.02,
    jitter=0.0,
)
"""Short-fused policy for heartbeats and promotions.

A probe exists to *measure* liveness, so it must not hide death behind
a long retry ladder: three quick attempts, then the prober reports the
silence to the failure detector and lets the lease decide.
"""


class RpcFailoverTransport:
    """Failure detection + promotion over the wire, for
    :class:`~repro.core.failover.FailoverManager`.

    Satisfies :class:`~repro.core.failover.FailoverTransport` with real
    framed RPCs: probes are :class:`HeartbeatRequest` frames on
    dedicated short-retry channels (sharing the client's — possibly
    faulty — link), promotion is a :class:`PromoteRequest` whose
    ``ERR_FAILOVER`` reply decodes back into a typed
    :class:`~repro.errors.FailoverError` on a double fault.

    The probe channels deliberately have **no** ``node_dead`` callback:
    they must keep reaching a node the detector already declared dead —
    that is how an idempotent promotion (or a false-positive recheck)
    gets through.
    """

    def __init__(self, client: "RemotePSClient"):
        self.client = client
        self._probe_channels: dict[int, RpcChannel] = {}

    def num_nodes(self) -> int:
        return len(self.client.nodes)

    def probe_channel(self, node_id: int) -> RpcChannel:
        """The (lazily built) dedicated heartbeat channel to ``node_id``."""
        channel = self._probe_channels.get(node_id)
        if channel is None:
            service = None
            for candidate in self.client.services:
                if candidate.node.node_id == node_id:
                    service = candidate
                    break
            if service is None:
                raise ShardRoutingError(f"no service for node {node_id}")
            channel = RpcChannel(
                service.server,
                self.client.link,
                self.client.clock,
                retry=PROBE_RETRY,
                channel_id=PROBE_CHANNEL_BASE + node_id,
                tracer=self.client.tracer,
                registry=self.client.registry,
            )
            self._probe_channels[node_id] = channel
        return channel

    def probe(self, node_id: int) -> bool:
        """One heartbeat round-trip; ``False`` means *silence*, which the
        detector converts into lease expiry, never directly into death."""
        try:
            response = self.probe_channel(node_id).call(
                HeartbeatRequest(node_id=node_id, requester=self.client.worker_id)
            )
        except RpcTimeoutError:
            return False
        return response.ok

    def committed_epoch(self) -> int:
        """The durably committed ring epoch, read from the coordinator
        shard's surviving replica pool (promotion must install the
        *committed* routing state, not the client's possibly-stale
        view). Falls back to the client's epoch for modulo clusters."""
        for pool in self.client.ring_pools():
            try:
                fields = pool.root.fields()
            except PoolClosedError:
                continue
            if RING_STATE_FIELD in fields:
                epoch, _, _ = unpack_ring_state(fields[RING_STATE_FIELD])
                return epoch
        return self.client.ring_epoch

    def promote(self, node_id: int, committed_epoch: int) -> float:
        """Ask ``node_id`` to fail over; returns the modeled promotion
        cost. :class:`~repro.errors.FailoverError` (double fault)
        propagates to the caller after crossing the wire as
        ``ERR_FAILOVER``."""
        from repro.core.replication import FAILOVER_SECONDS

        response = self.probe_channel(node_id).call(
            PromoteRequest(
                node_id=node_id,
                committed_epoch=committed_epoch,
                requester=self.client.worker_id,
            )
        )
        if not response.ok:
            raise ServerError(f"promotion rejected with code {response.code}")
        return FAILOVER_SECONDS

    def rebuild_tick(self, node_id: int, max_keys: int = 64) -> str:
        node = self.client.node_for(node_id)
        tick = getattr(node, "rebuild_tick", None)
        return tick(max_keys) if tick is not None else "idle"

    def rebuild_progress(self, node_id: int) -> float:
        node = self.client.node_for(node_id)
        report = getattr(node, "rebuild_report", None)
        if report is None:
            return 1.0
        return 1.0 if report.finished else report.progress


class RemotePSClient:
    """Sharded PS access over RPC channels, one per node.

    Implements both :class:`~repro.core.backend.TrainBackend` and
    :class:`~repro.core.backend.ReadBackend`, drop-in for
    :class:`OpenEmbeddingServer`. ``maintain``
    sends a :class:`MaintainRequest` trigger per shard — the work runs
    node-side (the maintainer threads live in the PS process) but the
    round's counters travel back over the wire, so remote and
    in-process backends report identical ``list[MaintainResult]``.

    Args:
        retry: channel retry/timeout policy (defaults applied when
            None).
        faults: when given, all channels share one seeded
            :class:`FaultyLink` over ``network``.
        worker_id: this client's identity in push dedup headers.
        dedup_window: per-node service replay window.
        tracer: span sink shared by every channel (client-side
            call/attempt/backoff spans), every node service (handler
            spans) and every node's cache.
        registry: when given, channels observe per-kind RPC round-trip
            latency histograms into it.
        node_tracers: optional per-node span sinks, indexed by node id.
            When given, each node's service handlers and cache write to
            *its own* tracer — one Chrome trace per node, mergeable
            into a causally-linked multi-process timeline via
            :mod:`repro.obs.merge`. Nodes beyond the list (elastic
            growth) fall back to the shared ``tracer``.
        recorder: optional
            :class:`~repro.obs.flightrec.FlightRecorder`; picked up by
            :meth:`enable_failover` and the shard migrator so failure
            windows are dumped automatically.
    """

    def __init__(
        self,
        server_config: ServerConfig | None = None,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
        retry: RetryConfig | None = None,
        faults: NetworkFaultConfig | None = None,
        worker_id: int = 0,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        node_tracers: list[Tracer] | None = None,
        recorder=None,
    ):
        self.server_config = server_config or ServerConfig()
        self.partitioner = make_partitioner(
            self.server_config.partitioner,
            self.server_config.num_nodes,
            self.server_config.ring_vnodes,
        )
        self.cache_config = cache_config
        self.optimizer = optimizer
        self.retry = retry
        self.dedup_window = dedup_window
        self.clock = clock or SimClock()
        self.worker_id = worker_id
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.node_tracers = node_tracers
        self.recorder = recorder
        self.registry = registry
        self._op_seq = 0
        network = network or NetworkModel()
        self.link = (
            FaultyLink(network, faults)
            if faults is not None and faults.any_faults
            else network
        )
        self.nodes = [
            self._build_node(node_id, self.server_config)
            for node_id in range(self.server_config.num_nodes)
        ]
        self.services = [
            PSNodeService(
                node,
                dedup_window=dedup_window,
                tracer=self._node_tracer(node.node_id),
            )
            for node in self.nodes
        ]
        self.channels = [
            RpcChannel(
                service.server,
                self.link,
                self.clock,
                retry=retry,
                channel_id=node_id,
                tracer=self.tracer,
                registry=registry,
            )
            for node_id, service in enumerate(self.services)
        ]
        self._push_seq = 0
        self._migrate_seq = 0
        # Serving lookups fan out across replicated shards' replicas.
        self.replica_selector = ReplicaSelector(
            policy=self.server_config.serving_replica_policy
        )
        self._pending_members: dict[int, tuple[PSNodeService, RpcChannel]] = {}
        self.ring_epoch = 0
        self.failover: FailoverManager | None = None
        if self.server_config.partitioner == "ring":
            # Same durable ring seeding as the in-process server: the
            # coordinator (node 0) pool records epoch 0 so a crashed
            # cluster can be recovered onto the committed ring. Writing
            # through the node (not the pool) mirrors the word onto both
            # replica pools when the shard is replicated.
            self.nodes[0].set_root_field(
                RING_STATE_FIELD,
                pack_ring_state(
                    0,
                    self.server_config.num_nodes,
                    self.server_config.ring_vnodes,
                ),
            )

    def _node_tracer(self, node_id: int) -> Tracer:
        """The span sink for one node: its own tracer when per-node
        tracing is on, else the shared one."""
        if self.node_tracers is not None and 0 <= node_id < len(self.node_tracers):
            return self.node_tracers[node_id]
        return self.tracer

    def _build_node(
        self, node_id: int, server_config: ServerConfig
    ) -> PSNode | ReplicatedPSNode:
        """One shard: plain when ``replicas=1``, primary/backup pair when
        ``replicas=2`` (hot failover instead of checkpoint recovery)."""
        if server_config.replicas == 2:
            return ReplicatedPSNode(
                node_id,
                server_config,
                self.cache_config,
                self.optimizer,
                tracer=self._node_tracer(node_id),
            )
        return PSNode(
            node_id,
            server_config,
            self.cache_config,
            self.optimizer,
            tracer=self._node_tracer(node_id),
        )

    # ------------------------------------------------------------------
    # failure detection + hot failover
    # ------------------------------------------------------------------

    def enable_failover(
        self,
        registry: MetricsRegistry | None = None,
        recorder=None,
    ) -> FailoverManager:
        """Arm lease-based failure detection and client-driven promotion.

        Builds a :class:`~repro.core.failover.FailoverManager` over an
        :class:`RpcFailoverTransport` and hooks every data channel's
        ``node_dead`` callback into the detector's lease table: once a
        lease expired and the node was declared dead, in-flight calls
        fail *fast* with :class:`~repro.errors.NodeDeadError` instead of
        burning their whole retry budget against a corpse. Data-plane
        calls then reroute through :meth:`_ha_call`.
        """
        manager = FailoverManager(
            RpcFailoverTransport(self),
            self.clock,
            self.server_config,
            registry=registry if registry is not None else self.registry,
            tracer=self.tracer,
            recorder=recorder if recorder is not None else self.recorder,
        )
        self.failover = manager
        self._arm_channel_death_checks()
        return manager

    def _arm_channel_death_checks(self) -> None:
        if self.failover is None:
            return
        detector = self.failover.detector
        for channel in self.channels:
            node_id = channel.channel_id
            channel.node_dead = (
                lambda nid=node_id: detector.state_of(nid) is NodeState.DEAD
            )

    def node_for(self, node_id: int) -> PSNode | ReplicatedPSNode:
        """The shard object with ``node_id`` (pending members included)."""
        pending = self._pending_members.get(node_id)
        if pending is not None:
            return pending[0].node
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ShardRoutingError(f"no node {node_id}")

    def ring_pools(self):
        """Every pool that may hold the durable ring word, in preference
        order: the coordinator shard's primary pool first, then — when
        replicated — its backup's (the mirror that survives a primary
        kill)."""
        coordinator = self.nodes[0]
        pools = [coordinator.pool]
        backup = getattr(coordinator, "backup", None)
        if backup is not None:
            pools.append(backup.pool)
        return pools

    def _ha_call(self, channel: RpcChannel, request, concurrent_flows: int = 1):
        """One data-plane RPC with failover-aware rerouting.

        Without a manager this is a plain ``channel.call``. With one, a
        silent shard (``RpcTimeoutError`` after the retry budget, or a
        fast-fail ``NodeDeadError`` from the channel's death check) is
        reported to :meth:`FailoverManager.handle_timeout`: the manager
        re-probes, waits out the lease on the shared clock, declares the
        node dead and promotes its backup — after which the *same*
        request (same ``(worker_id, seq)`` identity) is re-issued, so
        the service dedup window keeps retried mutations exactly-once
        across the promotion. A double fault surfaces as
        :class:`~repro.errors.FailoverError` for checkpoint recovery.

        Tracing: the whole operation shares one trace id across every
        re-issue, so the merged trace shows the timed-out attempts
        against the dead primary, the promotion, and the re-routed
        attempt that finally landed as *one* causal story.
        """
        trace_id = self._next_trace_id()
        if self.failover is None:
            return channel.call(
                request, concurrent_flows=concurrent_flows, trace_id=trace_id
            )
        attempts = 0
        while True:
            try:
                return channel.call(
                    request, concurrent_flows=concurrent_flows, trace_id=trace_id
                )
            except (RpcTimeoutError, NodeDeadError):
                attempts += 1
                if attempts > 3:
                    raise
                self.failover.handle_timeout(channel.channel_id)

    def _next_trace_id(self) -> int | None:
        """Deterministic per-operation trace id (no wall clock, no RNG):
        high bits identify the worker, low bits count its operations."""
        if not self.tracer.enabled:
            return None
        self._op_seq += 1
        return ((self.worker_id + 1) << 40) | self._op_seq

    # ------------------------------------------------------------------
    # PS protocol over the wire
    # ------------------------------------------------------------------

    def pull(
        self,
        keys,
        batch_id: int,
        *,
        worker_id: int | None = None,
        progress: int | None = None,
    ) -> PullResult:
        """Pull via per-node RPC; responses gathered in request order.

        Per-shard cache statistics travel back in each
        :class:`PullResponse` and are aggregated here, so the remote
        path reports the same hit/miss/created accounting as the
        in-process server. ``worker_id`` / ``progress`` travel in the
        request frame for the server-side bounded-staleness admission
        check (``-1`` on the wire = anonymous); a rejection arrives
        back as a typed :class:`~repro.errors.StalenessError`.
        """
        per_node_keys, per_node_positions = self.partitioner.split(keys)
        dim = self.server_config.embedding_dim
        out = np.empty((len(keys), dim), dtype=np.float32)
        flows = sum(1 for node_keys in per_node_keys if len(node_keys))
        hits = misses = created = 0
        for channel, node_keys, positions in zip(
            self.channels, per_node_keys, per_node_positions
        ):
            if len(node_keys) == 0:
                continue
            response = self._ha_call(
                channel,
                PullRequest(
                    batch_id=batch_id,
                    keys=np.asarray(node_keys),
                    worker_id=-1 if worker_id is None else int(worker_id),
                    progress=-1 if progress is None else int(progress),
                ),
                concurrent_flows=max(1, flows),
            )
            out[positions] = response.weights
            hits += response.hits
            misses += response.misses
            created += response.created
        return PullResult(weights=out, hits=hits, misses=misses, created=created)

    def lookup(self, keys, snapshot_id: int | None = None) -> LookupResult:
        """Snapshot-pinned batched read over the wire (the serving path).

        Every per-shard :class:`LookupRequest` carries the same pinned
        Checkpointed Batch ID (default: the cluster-wide
        :attr:`latest_serving_snapshot`), so a multi-shard read is
        consistent even while training pushes land between the RPCs. On
        replicated shards the request's ``replica`` field fans reads out
        across primary/backup per the configured selector policy; a
        shard whose primary died answers with silence and the read
        reroutes through the standard failover machinery
        (:meth:`_ha_call`) — the re-issued request is idempotent, so no
        dedup identity is needed.
        """
        if snapshot_id is None:
            snapshot_id = self.latest_serving_snapshot
        per_node_keys, per_node_positions = self.partitioner.split(keys)
        dim = self.server_config.embedding_dim
        out = np.empty((len(keys), dim), dtype=np.float32)
        row_snapshots = np.empty(len(keys), dtype=np.int64)
        flows = sum(1 for node_keys in per_node_keys if len(node_keys))
        hits = cold = 0
        for node, channel, node_keys, positions in zip(
            self.nodes, self.channels, per_node_keys, per_node_positions
        ):
            if len(node_keys) == 0:
                continue
            replicas = ReplicaSelector.replica_count(node)
            replica = (
                self.replica_selector.pick(node.node_id, replicas)
                if replicas > 1
                else 0
            )
            response = self._ha_call(
                channel,
                LookupRequest(
                    snapshot_id=snapshot_id,
                    keys=np.asarray(node_keys),
                    replica=replica,
                ),
                concurrent_flows=max(1, flows),
            )
            out[positions] = response.weights
            row_snapshots[positions] = response.snapshot_id
            hits += response.hits
            cold += response.cold
        return LookupResult(
            weights=out,
            snapshot_id=snapshot_id,
            hits=hits,
            cold=cold,
            row_snapshots=row_snapshots,
        )

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """Trigger the maintenance round on every shard; one result each.

        The trigger is a real RPC (:class:`MaintainRequest`): the wire
        carries the round's counters back, so the remote backend reports
        the same per-shard :class:`MaintainResult` accounting as the
        in-process :class:`OpenEmbeddingServer` — this used to return
        ``None``, an API drift the protocol now forbids.
        """
        results: list[MaintainResult] = []
        for channel in self.channels:
            response = self._ha_call(channel, MaintainRequest(batch_id=batch_id))
            results.append(
                MaintainResult(
                    processed=response.processed,
                    loads=response.loads,
                    flushes=response.flushes,
                    evictions=response.evictions,
                    checkpoints_completed=response.checkpoints_completed,
                )
            )
        return results

    def push(
        self,
        keys,
        grads: np.ndarray | None,
        batch_id: int,
        *,
        worker_id: int | None = None,
        seq: int = 0,
    ) -> int:
        """Push via per-node RPC.

        By default each shard RPC carries this client's ``worker_id``
        and a fresh auto-incremented ``seq`` (the wire-retry dedup
        identity). An async trainer simulating several logical workers
        over one client passes explicit ``worker_id``/``seq`` overrides
        so the server-side aggregation buffer attributes contributions
        to the right worker — and so an *intentionally duplicated* push
        reuses its seq and is absorbed exactly-once everywhere.
        """
        if grads is None:
            raise ServerError("remote push requires gradients")
        per_node_keys, per_node_positions = self.partitioner.split(keys)
        flows = sum(1 for node_keys in per_node_keys if len(node_keys))
        updated = 0
        for channel, node_keys, positions in zip(
            self.channels, per_node_keys, per_node_positions
        ):
            if len(node_keys) == 0:
                continue
            if worker_id is None:
                self._push_seq += 1
            response = self._ha_call(
                channel,
                PushRequest(
                    batch_id=batch_id,
                    keys=np.asarray(node_keys),
                    grads=grads[positions],
                    worker_id=(
                        self.worker_id if worker_id is None else int(worker_id)
                    ),
                    seq=self._push_seq if worker_id is None else int(seq),
                ),
                concurrent_flows=max(1, flows),
            )
            if not response.ok:
                raise ServerError(f"push rejected with code {response.code}")
            updated += response.value
        return updated

    # ------------------------------------------------------------------
    # checkpoint control
    # ------------------------------------------------------------------

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """Checkpoint every shard as of ``batch_id``.

        On an untrained cluster the derived batch id is ``-1``; the
        server rejects it with a typed
        :class:`~repro.errors.CheckpointError` through the error-coded
        response path (regression: this used to escape the dispatcher
        as a raw in-process exception).
        """
        if batch_id is None:
            batch_id = max(node.latest_completed_batch for node in self.nodes)
        for channel in self.channels:
            response = self._ha_call(channel, CheckpointRequest(batch_id=batch_id))
            if not response.ok:
                raise ServerError("checkpoint request rejected")
        return batch_id

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Checkpoint every shard and synchronously complete (parity
        with :meth:`OpenEmbeddingServer.barrier_checkpoint`)."""
        requested = self.request_checkpoint(batch_id)
        self.complete_pending_checkpoints()
        return requested

    def complete_pending_checkpoints(self) -> None:
        for node in self.nodes:
            node.complete_pending_checkpoints()

    def flush_aggregation(self) -> int:
        """Fold every shard's buffered contributions now (quiesce).

        Like :meth:`complete_pending_checkpoints`, this is a training
        barrier executed in-process on the shard objects, not a
        data-plane RPC (``request_checkpoint`` over the wire also
        flushes server-side before snapshotting).
        """
        return sum(node.flush_aggregation() for node in self.nodes)

    # ------------------------------------------------------------------
    # elasticity (repro.core.migration over the wire)
    # ------------------------------------------------------------------

    @property
    def coordinator_pool(self):
        """Node 0's pool — where the committed ring state lives."""
        return self.nodes[0].pool

    @property
    def global_completed_checkpoint(self) -> int:
        """Newest checkpoint durably completed by ALL shards (-1 if none),
        parity with :meth:`OpenEmbeddingServer.global_completed_checkpoint`."""
        return min(node.coordinator.last_completed for node in self.nodes)

    def next_migrate_seq(self) -> int:
        """Fresh dedup sequence number for one migration RPC."""
        self._migrate_seq += 1
        return self._migrate_seq

    def channel_for(self, node_id: int) -> RpcChannel:
        """The RPC channel reaching ``node_id`` — including a node that
        is being provisioned by an in-flight scale-out."""
        pending = self._pending_members.get(node_id)
        if pending is not None:
            return pending[1]
        for service, channel in zip(self.services, self.channels):
            if service.node.node_id == node_id:
                return channel
        raise ShardRoutingError(f"no channel for node {node_id}")

    def provision_node(self, node_id: int, server_config: ServerConfig) -> PSNode:
        """Build the node + service + channel for a joining shard.

        The artifacts stay in a pending set (reachable via
        :meth:`channel_for`) until :meth:`commit_ring` adds them to the
        membership — a crash before commit discards them with the
        uncommitted migration.
        """
        node = self._build_node(node_id, server_config)
        service = PSNodeService(
            node, dedup_window=self.dedup_window, tracer=self._node_tracer(node_id)
        )
        channel = RpcChannel(
            service.server,
            self.link,
            self.clock,
            retry=self.retry,
            channel_id=node_id,
            tracer=self.tracer,
            registry=self.registry,
        )
        self._pending_members[node_id] = (service, channel)
        return node

    def commit_ring(
        self,
        partitioner: HashPartitioner,
        server_config: ServerConfig,
        nodes: list[PSNode],
    ) -> int:
        """Atomically commit a new ring epoch and re-route (see
        :meth:`OpenEmbeddingServer.commit_ring`)."""
        new_epoch = self.ring_epoch + 1
        self.nodes[0].set_root_field(
            RING_STATE_FIELD,
            pack_ring_state(
                new_epoch, server_config.num_nodes, server_config.ring_vnodes
            ),
        )
        by_id = {
            service.node.node_id: (service, channel)
            for service, channel in zip(self.services, self.channels)
        }
        by_id.update(self._pending_members)
        self.partitioner = partitioner
        self.server_config = server_config
        self.nodes = nodes
        self.services = [by_id[node.node_id][0] for node in nodes]
        self.channels = [by_id[node.node_id][1] for node in nodes]
        self._pending_members = {}
        self.ring_epoch = new_epoch
        for node in nodes:
            follow = getattr(node, "follow_ring", None)
            if follow is not None:
                follow(new_epoch)
        if self.failover is not None:
            # New members enter the lease table; channel death checks
            # re-arm over the post-commit membership.
            for node in nodes:
                if node.node_id not in self.failover.detector.watched():
                    self.failover.detector.watch(node.node_id)
            self._arm_channel_death_checks()
        self.tracer.instant(
            "migration.ring_commit",
            track="migration",
            epoch=new_epoch,
            nodes=server_config.num_nodes,
        )
        return new_epoch

    def scale_out(self, on_step=None):
        """Live-grow the cluster by one node, entries moving over RPC."""
        from repro.core.migration import ShardMigrator

        return ShardMigrator(
            self,
            transport=RpcMigrationTransport(self),
            on_step=on_step,
            tracer=self.tracer,
            recorder=self.recorder,
        ).scale_out()

    def scale_in(self, on_step=None):
        """Live-shrink the cluster by one node, entries moving over RPC."""
        from repro.core.migration import ShardMigrator

        return ShardMigrator(
            self,
            transport=RpcMigrationTransport(self),
            on_step=on_step,
            tracer=self.tracer,
            recorder=self.recorder,
        ).scale_in()

    def refresh_ring(self) -> int:
        """Re-sync the partitioner with the committed ring over the wire.

        Sends a :class:`RingUpdateRequest` to the coordinator (node 0)
        and rebuilds the partitioner from the packed reply. This is the
        stale-client path of the dual-ownership window: after a routing
        error a worker refreshes and retries. Returns the epoch.

        Raises:
            ShardRoutingError: the committed membership differs from
                this client's node set (the client missed a scale
                event it cannot reconstruct locally).
        """
        response = self.channels[0].call(
            RingUpdateRequest(requester=self.worker_id)
        )
        if not response.ok:
            raise ServerError(f"ring update rejected with code {response.code}")
        epoch, num_nodes, vnodes = unpack_ring_state(response.value)
        if num_nodes != len(self.nodes):
            raise ShardRoutingError(
                f"committed ring has {num_nodes} nodes, client holds "
                f"{len(self.nodes)}; rejoin via scale_out/scale_in"
            )
        if epoch != self.ring_epoch:
            self.partitioner = make_partitioner("ring", num_nodes, vnodes)
            self.ring_epoch = epoch
        return self.ring_epoch

    def crash(self):
        """Kill every node process; the pools survive (parity with
        :meth:`OpenEmbeddingServer.crash`)."""
        return [node.crash() for node in self.nodes]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def latest_completed_batch(self) -> int:
        """Newest batch whose updates reached every shard it touched
        (parity with the in-process server's property)."""
        return max(node.latest_completed_batch for node in self.nodes)

    @property
    def latest_serving_snapshot(self) -> int:
        """Newest checkpoint completed by ALL shards — the serving pin
        (parity with the in-process server's property). Read from the
        local node objects, like the other watermark properties."""
        return self.global_completed_checkpoint

    @property
    def checkpoints_completed(self) -> int:
        """Monotone count of checkpoints completed by ALL shards (parity
        with :attr:`OpenEmbeddingServer.checkpoints_completed`)."""
        return min(node.checkpoints_completed for node in self.nodes)

    @property
    def num_entries(self) -> int:
        return sum(node.num_entries for node in self.nodes)

    def owned_keys(self) -> list[int]:
        """Every key the cluster currently holds, across all shards."""
        keys: list[int] = []
        for node in self.nodes:
            keys.extend(node.owned_keys())
        return keys

    def state_snapshot(self) -> dict[int, np.ndarray]:
        """Live weights of every key (training/debug-only — not
        checkpoint-consistent; serving uses :meth:`lookup`)."""
        snapshot: dict[int, np.ndarray] = {}
        for node in self.nodes:
            snapshot.update(node.state_snapshot())
        return snapshot

    def wire_bytes(self) -> int:
        """Total request+response bytes moved over all channels.

        Counts both successful and failed exchanges — a request whose
        reply was lost still crossed the wire.
        """
        return sum(channel.stats.total_bytes for channel in self.channels)

    def reliability(self) -> RpcReliabilityStats:
        """Aggregate retry/timeout/dedup counters across the client.

        Channel-side: retries, timeouts, wire errors and backoff time.
        Server-side: dedup-window suppressions. Link-side: total
        injected faults (zero on a perfect wire).
        """
        total = RpcReliabilityStats()
        for channel in self.channels:
            total.retries += channel.stats.retries
            total.timeouts += channel.stats.timeouts
            total.wire_errors += channel.stats.wire_errors
            total.backoff_seconds += channel.stats.backoff_seconds
        total.dup_suppressed = sum(
            service.dup_suppressed for service in self.services
        )
        total.faults_injected = self.fault_stats().total
        return total

    def fault_stats(self) -> LinkFaultStats:
        """Injected-fault counters (all zero when no faults configured)."""
        if isinstance(self.link, FaultyLink):
            return self.link.stats
        return LinkFaultStats()

    def collect_metrics(self, registry: MetricsRegistry) -> None:
        """Hoist per-node bundles plus client RPC totals into ``registry``.

        Mirrors :meth:`OpenEmbeddingServer.collect_metrics` — each node
        contributes under a ``node=<id>`` label — and adds the client's
        aggregated reliability counters under ``{"node": "client"}``
        (channel retries/backoff are a client-side cost, not a shard's).
        """
        for node in self.nodes:
            collect_bundle(registry, node.metrics, {"node": str(node.node_id)})
        rel = self.reliability()
        labels = {"node": "client"}
        for name, value in (
            ("repro_rpc_retries_total", rel.retries),
            ("repro_rpc_timeouts_total", rel.timeouts),
            ("repro_rpc_wire_errors_total", rel.wire_errors),
            ("repro_rpc_dup_suppressed_total", rel.dup_suppressed),
            ("repro_rpc_backoff_seconds_total", rel.backoff_seconds),
            ("repro_rpc_faults_injected_total", rel.faults_injected),
        ):
            if value:
                registry.counter(name, labels).add(value)
