"""Extension: expected epoch completion time under failures.

The paper evaluates checkpoint overhead (Fig. 12/13) and recovery time
(Fig. 14) separately. This bench composes them into the quantity an
operator actually cares about — expected wall time to finish one epoch
on a fleet with a given MTTF:

    E[total] = epoch_with_checkpoints
             + E[#failures] * (E[lost work] + recovery time)

using this repo's measured epoch times (20-min-equivalent checkpoints)
and each system's recovery model at paper scale, scaled into the
simulated epoch. PMem-OE wins on all three terms at once: cheaper
checkpoints, same lost work, and ~4x faster recovery.

A second ablation makes the *network* the failure domain: the same
functional training is run over ``RemotePSClient`` under seeded
message drop/duplicate/delay/corrupt schedules, reporting the retry,
timeout and wire-byte overhead the fault-tolerant RPC layer pays —
while asserting the trained weights stay bit-identical to a clean
wire (retries and dedup are semantics-free).
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    NetworkFaultConfig,
    RetryConfig,
    ServerConfig,
)
from repro.network.frontend import RemotePSClient
from repro.core.recovery import (
    estimate_dram_ps_recovery_seconds,
    estimate_recovery_seconds,
)
from repro.failure.mttf import expected_lost_work_seconds
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE, PAPER_EPOCH_HOURS
from repro.simulation.trainer_sim import TrainingSimulator

PAPER_ENTRIES = 2_100_000_000
ENTRY_BYTES = 256
MTTF_HOURS = 12.0


def test_ablation_reliability_composite(benchmark, report):
    def run():
        iters = DEFAULT_PROFILE.iterations(16)
        base = simulate_epoch(SystemKind.PMEM_OE, 16, iterations=iters)
        interval = TrainingSimulator.interval_for_epoch_fraction(
            base.sim_seconds, 20, PAPER_EPOCH_HOURS
        )
        oe = simulate_epoch(
            SystemKind.PMEM_OE, 16, iterations=iters,
            checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
        ).sim_seconds
        dram = simulate_epoch(
            SystemKind.DRAM_PS, 16, iterations=iters,
            checkpoint=CheckpointConfig(CheckpointMode.INCREMENTAL, interval),
        ).sim_seconds

        # Scale paper-scale recovery and MTTF into the simulated epoch:
        # one simulated epoch stands for PAPER_EPOCH_HOURS of wall time.
        scale = base.sim_seconds / (PAPER_EPOCH_HOURS * 3600)
        recovery = {
            "PMem-OE": estimate_recovery_seconds(
                entries=PAPER_ENTRIES, versions=PAPER_ENTRIES,
                entry_bytes=ENTRY_BYTES,
            ) * scale,
            "DRAM-PS": estimate_dram_ps_recovery_seconds(
                entries=PAPER_ENTRIES, entry_bytes=ENTRY_BYTES,
                checkpoint_device="pmem",
            ) * scale,
        }
        mttf = MTTF_HOURS * 3600 * scale
        failures_per_epoch = {
            "PMem-OE": oe / mttf,
            "DRAM-PS": dram / mttf,
        }
        lost = expected_lost_work_seconds(interval, mttf)
        totals = {
            "PMem-OE": oe + failures_per_epoch["PMem-OE"] * (lost + recovery["PMem-OE"]),
            "DRAM-PS": dram
            + failures_per_epoch["DRAM-PS"] * (lost + recovery["DRAM-PS"]),
        }
        return {
            "epochs": {"PMem-OE": oe, "DRAM-PS": dram},
            "recovery": recovery,
            "lost": lost,
            "totals": totals,
        }

    data = run_once(benchmark, run)
    report.title(
        "ablation_reliability",
        f"Extension: expected epoch completion, MTTF {MTTF_HOURS:.0f} h "
        "(simulated-epoch units)",
    )
    for name in ("PMem-OE", "DRAM-PS"):
        report.row(
            f"{name} epoch w/ checkpoints", "-", f"{data['epochs'][name]:.2f} s"
        )
        report.row(
            f"{name} recovery (scaled)", "-", f"{data['recovery'][name]:.3f} s"
        )
        report.row(
            f"{name} expected total", "-", f"{data['totals'][name]:.2f} s"
        )
    advantage = 1 - data["totals"]["PMem-OE"] / data["totals"]["DRAM-PS"]
    report.line()
    report.row(
        "PMem-OE end-to-end advantage",
        "> its checkpoint-only win",
        f"{advantage:.1%}",
    )

    # PMem-OE's composite advantage must meet or beat its
    # checkpoint-only advantage: recovery can only widen the gap.
    ckpt_only = 1 - data["epochs"]["PMem-OE"] / data["epochs"]["DRAM-PS"]
    assert data["recovery"]["PMem-OE"] < data["recovery"]["DRAM-PS"]
    assert advantage >= ckpt_only - 1e-6


# ----------------------------------------------------------------------
# network-fault ablation
# ----------------------------------------------------------------------

FAULT_DIM = 8
FAULT_BATCHES = 25
FAULT_LEVELS = (0.0, 0.02, 0.08)


def _remote_training_run(fault_rate: float, batches: int = FAULT_BATCHES):
    """Functional remote training under a seeded fault schedule."""
    server_config = ServerConfig(
        num_nodes=2, embedding_dim=FAULT_DIM, pmem_capacity_bytes=1 << 24, seed=4
    )
    cache_config = CacheConfig(capacity_bytes=32 * FAULT_DIM * 4)
    faults = (
        NetworkFaultConfig(
            drop_rate=fault_rate,
            duplicate_rate=fault_rate / 2,
            corrupt_rate=fault_rate / 2,
            delay_rate=fault_rate,
            delay_mean_s=2e-3,
            seed=13,
        )
        if fault_rate > 0
        else None
    )
    client = RemotePSClient(
        server_config,
        cache_config,
        faults=faults,
        retry=RetryConfig(
            max_attempts=12, attempt_timeout_s=0.02, call_timeout_s=2.0, seed=1
        ),
    )
    rng = np.random.default_rng(0)
    for batch in range(batches):
        keys = sorted(rng.choice(200, size=10, replace=False).tolist())
        grads = rng.normal(0, 0.1, (10, FAULT_DIM)).astype(np.float32)
        client.pull(keys, batch)
        client.maintain(batch)
        client.push(keys, grads, batch)
    return client


def test_ablation_network_faults(benchmark, report):
    def run():
        rows = {}
        baseline_state = None
        for rate in FAULT_LEVELS:
            client = _remote_training_run(rate)
            state = client.state_snapshot()
            if baseline_state is None:
                baseline_state = state
            identical = set(state) == set(baseline_state) and all(
                np.array_equal(state[key], baseline_state[key])
                for key in baseline_state
            )
            reliability = client.reliability()
            rows[rate] = {
                "retries": reliability.retries,
                "timeouts": reliability.timeouts,
                "dup_suppressed": reliability.dup_suppressed,
                "faults": reliability.faults_injected,
                "wire_bytes": client.wire_bytes(),
                "sim_seconds": client.clock.now,
                "identical": identical,
            }
        return rows

    data = run_once(benchmark, run)
    report.title(
        "ablation_network_faults",
        f"Extension: RPC fault tolerance, {FAULT_BATCHES} remote batches "
        "(drop/dup/corrupt/delay schedule, seeded)",
    )
    clean = data[0.0]
    for rate, row in data.items():
        overhead = row["wire_bytes"] / clean["wire_bytes"] - 1
        report.row(
            f"fault rate {rate:.0%}",
            "bit-identical",
            f"retries {row['retries']:3d}, dedup {row['dup_suppressed']:2d}, "
            f"wire +{overhead:.1%}, {row['sim_seconds'] * 1e3:.1f} ms",
        )
    report.line()
    report.row(
        "weights vs clean wire",
        "identical at every fault level",
        str(all(row["identical"] for row in data.values())),
    )

    # Retries are semantics-free at every fault level, and a lossy wire
    # must actually cost retries + bytes + time.
    assert all(row["identical"] for row in data.values())
    assert all(row["timeouts"] == 0 for row in data.values())
    worst = data[max(FAULT_LEVELS)]
    assert worst["retries"] > 0
    assert worst["wire_bytes"] > clean["wire_bytes"]
    assert worst["sim_seconds"] > clean["sim_seconds"]


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["identical"]:
        failures.append("faulty-wire weights diverged from the clean wire")
    if params["fault_rate"] > 0 and metrics["retries"] == 0:
        failures.append("a lossy wire must cost retries")
    return failures


@register(
    "ablation_reliability",
    params=[
        Param("fault_rate", "float", 0.08, help="drop/delay rate; dup and "
              "corrupt run at half this"),
        Param("batches", "int", FAULT_BATCHES),
    ],
    smoke={"batches": 15},
    headline={
        "identical": Headline(),
        "wire_overhead_frac": Headline(direction="lower", max_regression=0.25),
    },
    check=_check,
)
def entry(*, fault_rate, batches):
    """Retry/wire/time overhead of remote training on a lossy wire vs a
    clean one, plus the bit-identical-weights invariant."""
    clean = _remote_training_run(0.0, batches)
    faulty = _remote_training_run(fault_rate, batches)
    clean_state = clean.state_snapshot()
    faulty_state = faulty.state_snapshot()
    identical = set(clean_state) == set(faulty_state) and all(
        np.array_equal(faulty_state[key], clean_state[key])
        for key in clean_state
    )
    reliability = faulty.reliability()
    return {
        "identical": identical,
        "retries": reliability.retries,
        "dup_suppressed": reliability.dup_suppressed,
        "wire_overhead_frac": faulty.wire_bytes() / clean.wire_bytes() - 1,
        "sim_ms": faulty.clock.now * 1e3,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_reliability"))
