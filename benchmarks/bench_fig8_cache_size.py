"""Figure 8: impact of DRAM cache size (16 GPUs).

Sweeps the cache from the 10 MB-equivalent to the 20 GB-equivalent of a
500 GB model. Paper: training time falls 14.4/18/24.9/32.2/38.2 % by
2 GB, then flattens (20 GB is only ~1 % better than 2 GB) — the skew
means a small cache already captures the hot set.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE

#: paper-normalised training time at each cache size (10 MB = 1.0)
PAPER = {10: 1.0, 20: 0.856, 40: 0.82, 100: 0.751, 400: 0.678, 2048: 0.618, 20480: 0.612}


def test_fig8_cache_size(benchmark, report):
    def run():
        rows = {}
        for paper_mb in PAPER:
            cache = DEFAULT_PROFILE.cache_config(paper_mb=paper_mb)
            rows[paper_mb] = simulate_epoch(SystemKind.PMEM_OE, 16, cache=cache)
        return rows

    rows = run_once(benchmark, run)
    base = rows[10].sim_seconds
    report.title("fig8_cache_size", "Figure 8: cache-size sweep (normalised to 10 MB)")
    for paper_mb, result in rows.items():
        measured = result.sim_seconds / base
        report.row(
            f"{paper_mb:>6} MB-equivalent",
            f"{PAPER[paper_mb]:.3f}",
            f"{measured:.3f}",
            note=f"miss rate {result.miss_rate:.1%}",
        )

    ratios = [rows[mb].sim_seconds / base for mb in PAPER]
    # Monotone improvement with diminishing returns past 2 GB.
    assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-2] < 0.75  # 2 GB well below the 10 MB baseline
    assert ratios[-2] - ratios[-1] < 0.06  # 2 GB -> 20 GB nearly flat
    misses = [rows[mb].miss_rate for mb in PAPER]
    assert all(a >= b for a, b in zip(misses, misses[1:]))


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    if params["cache_mb"] > 10 and metrics["ratio_vs_10mb"] >= 1.0:
        return [
            f"{params['cache_mb']} MB cache no faster than the 10 MB baseline"
        ]
    return []


@register(
    "fig8_cache_size",
    params=[
        Param("cache_mb", "float", 2048.0, help="paper-equivalent cache size"),
        Param("workers", "int", 16),
    ],
    headline={
        "ratio_vs_10mb": Headline(direction="lower", max_regression=0.05),
        "miss_rate": Headline(direction="lower", max_regression=0.10),
    },
    check=_check,
)
def entry(*, cache_mb, workers):
    """Training time at one cache size normalised to the 10 MB-equivalent
    baseline, plus the cache miss rate."""
    base = simulate_epoch(
        SystemKind.PMEM_OE, workers,
        cache=DEFAULT_PROFILE.cache_config(paper_mb=10),
    ).sim_seconds
    result = simulate_epoch(
        SystemKind.PMEM_OE, workers,
        cache=DEFAULT_PROFILE.cache_config(paper_mb=cache_mb),
    )
    return {
        "ratio_vs_10mb": result.sim_seconds / base,
        "miss_rate": result.miss_rate,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig8_cache_size"))
