"""Crash-schedule generation and injection for recovery testing.

A :class:`FailureInjector` wraps a trainer-like object (anything with
``step()`` and ``crash()``) and kills it at scheduled batch boundaries,
which is where the paper's synchronous-training crash model puts
process deaths: between two atomic simulator calls. Property-based
tests drive it with hypothesis-generated schedules to show recovery
restores the checkpointed batch bit-for-bit at *any* crash point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, CrashError


@dataclass(frozen=True)
class CrashSchedule:
    """Batch ids after which a crash fires (sorted, each fires once)."""

    crash_after_batches: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(b < 0 for b in self.crash_after_batches):
            raise ConfigError("crash batch ids must be non-negative")
        ordered = tuple(sorted(self.crash_after_batches))
        object.__setattr__(self, "crash_after_batches", ordered)

    @classmethod
    def random(
        cls, num_batches: int, failures: int, seed: int = 0
    ) -> "CrashSchedule":
        """Uniformly random distinct crash points in ``[0, num_batches)``."""
        if num_batches <= 0:
            raise ConfigError("num_batches must be positive")
        if failures < 0 or failures > num_batches:
            raise ConfigError("failures must be in [0, num_batches]")
        rng = np.random.default_rng((seed, 0xFA11))
        points = rng.choice(num_batches, size=failures, replace=False)
        return cls(tuple(int(p) for p in points))

    @classmethod
    def poisson(
        cls, num_batches: int, mttf_batches: float, seed: int = 0
    ) -> "CrashSchedule":
        """Memoryless failures with a mean of ``mttf_batches`` between them."""
        if mttf_batches <= 0:
            raise ConfigError("mttf_batches must be positive")
        rng = np.random.default_rng((seed, 0xFA22))
        points = []
        t = 0.0
        while True:
            t += rng.exponential(mttf_batches)
            if t >= num_batches:
                break
            points.append(int(t))
        return cls(tuple(sorted(set(points))))


class FailureInjector:
    """Runs a trainer under a crash schedule.

    Usage::

        injector = FailureInjector(schedule)
        for batch in range(n):
            if injector.should_crash(batch):
                survivors = trainer.crash()
                trainer = recover(survivors, ...)
            trainer.step()
    """

    def __init__(self, schedule: CrashSchedule):
        self.schedule = schedule
        self._pending = list(schedule.crash_after_batches)
        self.crashes_fired = 0

    def should_crash(self, batch_id: int) -> bool:
        """True exactly once for each scheduled crash point <= batch_id."""
        if self._pending and batch_id >= self._pending[0]:
            self._pending.pop(0)
            self.crashes_fired += 1
            return True
        return False

    def raise_if_scheduled(self, batch_id: int) -> None:
        """Alternative style: raise :class:`CrashError` at crash points."""
        if self.should_crash(batch_id):
            raise CrashError(f"injected crash after batch {batch_id}", batch_id=batch_id)

    @property
    def remaining(self) -> int:
        return len(self._pending)


@dataclass(frozen=True)
class NodeKillSchedule:
    """Simulated-time instants at which one PS node dies.

    Unlike :class:`CrashSchedule` (whole-process deaths at batch
    boundaries), this targets *single PS shards* at arbitrary points in
    continuous simulated time — the chaos soak polls
    :class:`NodeKillInjector` between protocol operations, so a kill
    lands mid-batch: after a pull but before the matching push, or
    between the push hitting the primary and the reply reaching the
    worker.

    ``kill_times`` are seconds on the shared
    :class:`~repro.simulation.clock.SimClock`; ``victims`` names the
    shard that dies at each instant (same length).
    """

    kill_times: tuple[float, ...]
    victims: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.kill_times) != len(self.victims):
            raise ConfigError("kill_times and victims must have equal length")
        if any(t < 0 for t in self.kill_times):
            raise ConfigError("kill times must be non-negative")
        if any(v < 0 for v in self.victims):
            raise ConfigError("victim node ids must be non-negative")
        order = sorted(range(len(self.kill_times)), key=lambda i: self.kill_times[i])
        object.__setattr__(
            self, "kill_times", tuple(self.kill_times[i] for i in order)
        )
        object.__setattr__(self, "victims", tuple(self.victims[i] for i in order))

    @classmethod
    def poisson(
        cls,
        mttf_seconds: float,
        horizon_seconds: float,
        num_nodes: int,
        seed: int = 0,
        max_kills: int | None = None,
    ) -> "NodeKillSchedule":
        """MTTF-driven kills with seeded uniform victim choice."""
        from repro.failure.mttf import sample_failure_times

        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        times = sample_failure_times(mttf_seconds, horizon_seconds, seed)
        if max_kills is not None:
            times = times[:max_kills]
        rng = np.random.default_rng((seed, 0xFA44))
        victims = tuple(int(rng.integers(0, num_nodes)) for _ in times)
        return cls(times, victims)

    def __len__(self) -> int:
        return len(self.kill_times)


class NodeKillInjector:
    """Clock-polled dispenser of due node kills.

    The soak calls :meth:`due` with the current simulated time between
    operations; each scheduled kill is returned exactly once, in time
    order. The injector never touches the cluster itself — the caller
    owns the kill (``node.fail_primary()`` or a full ``crash()``) so
    local, remote, and faulty-wire soaks share one schedule.
    """

    def __init__(self, schedule: NodeKillSchedule):
        self.schedule = schedule
        self._next = 0
        self.kills_fired = 0

    def due(self, now: float) -> list[tuple[float, int]]:
        """All ``(kill_time, victim)`` pairs with ``kill_time <= now``
        not yet dispensed."""
        fired: list[tuple[float, int]] = []
        while (
            self._next < len(self.schedule.kill_times)
            and self.schedule.kill_times[self._next] <= now
        ):
            fired.append(
                (
                    self.schedule.kill_times[self._next],
                    self.schedule.victims[self._next],
                )
            )
            self._next += 1
            self.kills_fired += 1
        return fired

    def peek_next(self) -> tuple[float, int] | None:
        """The next scheduled kill, or ``None`` when exhausted."""
        if self._next >= len(self.schedule.kill_times):
            return None
        return (
            self.schedule.kill_times[self._next],
            self.schedule.victims[self._next],
        )

    @property
    def remaining(self) -> int:
        return len(self.schedule.kill_times) - self._next
