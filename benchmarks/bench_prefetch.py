"""Lookahead prefetch ablation: depth x cache size x fault rate.

The tentpole claim: peeking ``lookahead`` batches ahead, deduplicating
keys across the window and overlapping the pulls (plus the deferred
``maintain()``) with GPU compute hides nearly the whole PS round-trip —
>= 1.3x simulated epoch throughput at lookahead >= 2 on the default
Zipfian workload — while the weights stay bit-identical to the serial
pull protocol, even over a faulty RPC wire.

Two halves:

* the **simulated** ablation sweeps lookahead depth and cache size at
  the shared benchmark operating point and reports epoch speedups;
* the **functional** ablation trains a real DeepFM against local and
  remote (fault-injected) backends with and without the pipeline and
  byte-compares every final embedding, dense parameter, and loss.

Run under pytest-benchmark for the full ablation, or standalone for CI:

    python benchmarks/bench_prefetch.py --smoke

The smoke mode exits non-zero on any pipelined/serial divergence.
"""

from __future__ import annotations

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from repro.bench import Headline, Param, register
from repro.config import (
    CacheConfig,
    NetworkFaultConfig,
    PrefetchConfig,
    RetryConfig,
    ServerConfig,
)
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.network.frontend import RemotePSClient

LOOKAHEADS = (0, 1, 2, 4, 8)
CACHE_PAPER_MB = (512.0, 2048.0, 8192.0)
FAULT_RATES = (0.0, 0.02, 0.05)

WORKERS = 16
ITERATIONS = 80

# --- functional (bit-identicality) half ---------------------------------

FIELDS, DIM, BATCHES = 6, 8, 10


def _functional_backend(kind: str, seed: int, fault_rate: float = 0.0):
    server = ServerConfig(
        num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=seed
    )
    cache = CacheConfig(capacity_bytes=48 * DIM * 4 * 2)
    optimizer = PSAdagrad(lr=0.05)
    if kind == "local":
        return OpenEmbeddingServer(server, cache, optimizer)
    faults = None
    retry = None
    if fault_rate > 0.0:
        faults = NetworkFaultConfig(
            drop_rate=fault_rate,
            duplicate_rate=fault_rate / 2,
            corrupt_rate=fault_rate / 2,
            seed=seed,
        )
        retry = RetryConfig(
            max_attempts=12, attempt_timeout_s=0.05, call_timeout_s=30.0, seed=seed
        )
    return RemotePSClient(server, cache, optimizer, faults=faults, retry=retry)


def _train_functional(kind: str, seed: int, prefetch, fault_rate: float = 0.0):
    backend = _functional_backend(kind, seed, fault_rate)
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=seed)
    dataset = CriteoSynthetic(num_fields=FIELDS, vocab_per_field=150, seed=seed)
    trainer = SynchronousTrainer(
        backend,
        model,
        dataset,
        num_workers=2,
        batch_size=12,
        dense_optimizer=Adam(1e-2),
        checkpoint_every=4,
        prefetch=prefetch,
    )
    results = trainer.train(BATCHES)
    if trainer.pipeline is not None:
        trainer.pipeline.validate()
    return backend, model, [r.loss for r in results]


def _bitwise_identical(reference, candidate) -> bool:
    ref_backend, ref_model, ref_losses = reference
    cand_backend, cand_model, cand_losses = candidate
    ref_state = ref_backend.state_snapshot()
    cand_state = cand_backend.state_snapshot()
    if set(ref_state) != set(cand_state) or ref_losses != cand_losses:
        return False
    if any(
        not np.array_equal(ref_state[key], cand_state[key]) for key in ref_state
    ):
        return False
    return all(
        np.array_equal(a, b)
        for a, b in zip(ref_model.dense_state(), cand_model.dense_state())
    )


def functional_sweep(seed: int = 7):
    """lookahead x backend x fault rate -> (identical?, faults injected)."""
    reference = _train_functional("local", seed, None)
    rows = []
    for lookahead in (2, 4):
        prefetch = PrefetchConfig(lookahead=lookahead)
        for fault_rate in FAULT_RATES:
            kind = "local" if fault_rate == 0.0 else "remote"
            candidate = _train_functional(kind, seed, prefetch, fault_rate)
            identical = _bitwise_identical(reference, candidate)
            injected = (
                candidate[0].reliability().faults_injected
                if kind == "remote"
                else 0
            )
            rows.append((lookahead, kind, fault_rate, identical, injected))
    # the clean remote wire, serial vs pipelined
    remote = _train_functional("remote", seed, PrefetchConfig(lookahead=2))
    rows.append((2, "remote", 0.0, _bitwise_identical(reference, remote), 0))
    return rows


# --- simulated (throughput) half ----------------------------------------


def simulated_sweep():
    from benchmarks.conftest import DEFAULT_PROFILE, simulate_epoch
    from repro.simulation.cluster import SystemKind

    profile = DEFAULT_PROFILE
    results = {}
    for lookahead in LOOKAHEADS:
        results[("depth", lookahead)] = simulate_epoch(
            SystemKind.PMEM_OE,
            WORKERS,
            iterations=ITERATIONS,
            prefetch=PrefetchConfig(lookahead=lookahead),
        )
    for paper_mb in CACHE_PAPER_MB:
        for lookahead in (0, 2):
            results[("cache", paper_mb, lookahead)] = simulate_epoch(
                SystemKind.PMEM_OE,
                WORKERS,
                iterations=ITERATIONS,
                cache=profile.cache_config(paper_mb=paper_mb),
                prefetch=PrefetchConfig(lookahead=lookahead),
            )
    return results


def test_prefetch_ablation(benchmark, report):
    from benchmarks.conftest import run_once

    def run():
        return simulated_sweep(), functional_sweep()

    simulated, functional = run_once(benchmark, run)

    report.title(
        "prefetch_ablation",
        "Lookahead prefetch: depth x cache size x fault rate",
    )
    base = simulated[("depth", 0)].sim_seconds
    report.line("simulated epoch speedup vs lookahead 0 "
                f"({WORKERS} workers, default Zipfian workload):")
    for lookahead in LOOKAHEADS:
        result = simulated[("depth", lookahead)]
        speedup = base / result.sim_seconds
        report.row(
            f"lookahead {lookahead}",
            ">=1.3x" if lookahead >= 2 else "--",
            f"{speedup:.3f}x",
            f"{result.total_requests} demand / "
            f"{result.prefetch_requests} prefetched pulls",
        )
    report.line()
    report.line("cache-size sensitivity (speedup of lookahead 2 vs 0):")
    for paper_mb in CACHE_PAPER_MB:
        serial = simulated[("cache", paper_mb, 0)].sim_seconds
        pipelined = simulated[("cache", paper_mb, 2)].sim_seconds
        report.row(
            f"cache {paper_mb:.0f} paper-MB", "--", f"{serial / pipelined:.3f}x"
        )
    report.line()
    report.line("bit-identicality vs serial (DeepFM, 2 workers, 10 batches):")
    for lookahead, kind, fault_rate, identical, injected in functional:
        note = f"{injected} wire faults injected" if fault_rate else ""
        report.row(
            f"L={lookahead} {kind} faults={fault_rate:.0%}",
            "identical",
            "identical" if identical else "DIVERGED",
            note,
        )
        assert identical, (lookahead, kind, fault_rate)

    # Acceptance: >= 1.3x at every lookahead >= 2, and the faulty wire
    # actually exercised retries.
    for lookahead in LOOKAHEADS:
        if lookahead >= 2:
            speedup = base / simulated[("depth", lookahead)].sim_seconds
            assert speedup >= 1.3, (lookahead, speedup)
    assert any(injected > 0 for *_, injected in functional)


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["identical"]:
        failures.append("pipelined weights diverged from the serial protocol")
    if params["lookahead"] >= 2 and metrics["speedup"] < 1.3:
        failures.append(
            f"speedup {metrics['speedup']:.3f}x below the 1.3x acceptance floor"
        )
    return failures


@register(
    "prefetch",
    params=[
        Param("lookahead", "int", 2, help="prefetch window depth (batches)"),
        Param("workers", "int", WORKERS),
        Param("iterations", "int", ITERATIONS),
        Param("fault_rate", "float", 0.04, help="remote wire fault rate"),
        Param("seed", "int", 7),
    ],
    smoke={"iterations": 40},
    headline={
        # SimClock-driven: the speedup is deterministic, gate it tightly.
        "speedup": Headline(direction="higher", max_regression=0.05),
        "identical": Headline(),
    },
    check=_check,
)
def entry(*, lookahead, workers, iterations, fault_rate, seed):
    """Simulated epoch speedup at one lookahead depth, plus the functional
    bit-identicality of the pipelined remote path over a faulty wire."""
    from benchmarks.conftest import simulate_epoch
    from repro.simulation.cluster import SystemKind

    serial = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iterations,
        prefetch=PrefetchConfig(lookahead=0),
    )
    pipelined = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iterations,
        prefetch=PrefetchConfig(lookahead=lookahead),
    )
    reference = _train_functional("local", seed, None)
    prefetch = PrefetchConfig(lookahead=lookahead) if lookahead else None
    candidate = _train_functional("remote", seed, prefetch, fault_rate)
    return {
        "speedup": serial.sim_seconds / pipelined.sim_seconds,
        "identical": _bitwise_identical(reference, candidate),
        "faults_injected": candidate[0].reliability().faults_injected,
        "prefetch_requests": pipelined.prefetch_requests,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("prefetch"))
