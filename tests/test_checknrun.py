"""Check-N-Run quantized checkpointing: precision bounds and size."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.checknrun import (
    CheckNRunCheckpointer,
    quantize,
)
from repro.errors import RecoveryError
from repro.pmem.pool import PmemPool

DIM = 8


class TestQuantize:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 1, DIM).astype(np.float32)
        quantized = quantize(weights)
        restored = quantized.dequantize()
        assert np.max(np.abs(restored - weights)) <= quantized.scale / 2 + 1e-6

    def test_constant_vector_exact(self):
        weights = np.full(DIM, 3.25, dtype=np.float32)
        restored = quantize(weights).dequantize()
        assert np.array_equal(restored, weights)

    def test_extremes_preserved(self):
        weights = np.array([-2.0, 0.0, 5.0], dtype=np.float32)
        quantized = quantize(weights)
        restored = quantized.dequantize()
        assert restored[0] == pytest.approx(-2.0, abs=1e-5)
        assert restored[2] == pytest.approx(5.0, abs=1e-5)

    def test_size_reduction(self):
        weights = np.random.default_rng(1).normal(0, 1, 64).astype(np.float32)
        quantized = quantize(weights)
        assert quantized.nbytes < weights.nbytes / 3

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=32))
    @settings(max_examples=80, deadline=None)
    def test_error_bound_holds_for_any_vector(self, values):
        weights = np.array(values, dtype=np.float32)
        quantized = quantize(weights)
        restored = quantized.dequantize()
        bound = quantized.scale / 2 + 1e-3 * max(1.0, float(np.abs(weights).max()))
        assert np.max(np.abs(restored - weights)) <= bound


class TestCheckpointer:
    @pytest.fixture
    def live_state(self):
        return {}

    @pytest.fixture
    def checkpointer(self, live_state):
        return CheckNRunCheckpointer(
            PmemPool(1 << 20),
            dim=DIM,
            read_state=lambda keys: {k: live_state[k] for k in keys},
        )

    def _weights(self, seed):
        return np.random.default_rng(seed).normal(0, 1, DIM).astype(np.float32)

    def test_checkpoint_and_restore(self, checkpointer, live_state):
        live_state.update({1: self._weights(1), 2: self._weights(2)})
        checkpointer.mark_dirty([1, 2])
        stats = checkpointer.checkpoint(0)
        assert stats.entries_written == 2
        batch_id, state = checkpointer.restore()
        assert batch_id == 0
        for key in (1, 2):
            assert np.allclose(state[key], live_state[key], atol=0.02)

    def test_compression_ratio_dim64(self):
        """At the paper's dim 64, quantization shrinks dumps ~3.5x
        (the per-entry params amortize over the vector)."""
        dim = 64
        state = {
            k: np.random.default_rng(k).normal(0, 1, dim).astype(np.float32)
            for k in range(20)
        }
        checkpointer = CheckNRunCheckpointer(
            PmemPool(1 << 20), dim, lambda keys: {k: state[k] for k in keys}
        )
        checkpointer.mark_dirty(range(20))
        stats = checkpointer.checkpoint(0)
        assert stats.full_precision_bytes == 20 * dim * 4
        assert stats.compression_ratio > 3.0

    def test_incremental_delta(self, checkpointer, live_state):
        live_state.update({1: self._weights(1), 2: self._weights(2)})
        checkpointer.mark_dirty([1, 2])
        checkpointer.checkpoint(0)
        live_state[1] = self._weights(10)
        checkpointer.mark_dirty([1])
        stats = checkpointer.checkpoint(1)
        assert stats.entries_written == 1
        batch_id, state = checkpointer.restore()
        assert batch_id == 1
        assert np.allclose(state[1], live_state[1], atol=0.02)
        assert np.allclose(state[2], live_state[2], atol=0.02)

    def test_restore_survives_crash(self, checkpointer, live_state):
        live_state[5] = self._weights(5)
        checkpointer.mark_dirty([5])
        checkpointer.checkpoint(3)
        pool = checkpointer.pool
        pool.crash()
        batch_id, state = CheckNRunCheckpointer.restore_from_pool(pool, DIM)
        assert batch_id == 3
        assert np.allclose(state[5], live_state[5], atol=0.02)

    def test_restore_without_checkpoint(self, checkpointer):
        with pytest.raises(RecoveryError):
            checkpointer.restore()

    def test_smaller_than_full_precision_incremental(self):
        """Head-to-head with the full-precision incremental dump at
        the paper's dim 64."""
        from repro.baselines.incremental import IncrementalCheckpointer

        dim = 64
        state = {
            k: np.random.default_rng(k).normal(0, 1, dim).astype(np.float32)
            for k in range(50)
        }
        quantized = CheckNRunCheckpointer(
            PmemPool(1 << 20), dim, lambda keys: {k: state[k] for k in keys}
        )
        full = IncrementalCheckpointer(
            PmemPool(1 << 20), dim * 4, lambda keys: {k: state[k] for k in keys}
        )
        quantized.mark_dirty(range(50))
        full.mark_dirty(range(50))
        q_stats = quantized.checkpoint(0)
        f_stats = full.checkpoint(0)
        assert q_stats.bytes_written < f_stats.bytes_written / 3
