"""Discrete/simulated-time substrate.

Everything performance-related in this reproduction runs on simulated
time: devices charge latency+bandwidth costs, the network charges
transfer costs, and the training loop composes them per batch. The
functional (weights) layer is independent of this package.

The training-loop simulator lives in :mod:`repro.simulation.trainer_sim`
and the per-system cost model in :mod:`repro.simulation.cluster`; they
are imported directly (not re-exported here) because they sit *above*
the core PS package in the dependency order.
"""

from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simulation.clock import PeriodicTimer, SimClock
from repro.simulation.device import DRAM_SPEC, PMEM_SPEC, SSD_SPEC, DeviceSpec, MemoryDevice
from repro.simulation.metrics import (
    Counter,
    Metrics,
    PrefetchStats,
    RequestTrace,
    RpcReliabilityStats,
)
from repro.simulation.network import Delivery, NetworkModel
from repro.simulation.contention import serialized_section_time, shared_bandwidth_time

__all__ = [
    "SimClock",
    "PeriodicTimer",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "DeviceSpec",
    "MemoryDevice",
    "DRAM_SPEC",
    "PMEM_SPEC",
    "SSD_SPEC",
    "Metrics",
    "Counter",
    "RequestTrace",
    "RpcReliabilityStats",
    "PrefetchStats",
    "NetworkModel",
    "Delivery",
    "serialized_section_time",
    "shared_bandwidth_time",
]
