"""Stateful property testing of a PS node (hypothesis RuleBasedStateMachine).

The machine interleaves every operation a node supports — pulls,
maintenance, pushes, checkpoint requests, forced completions, crashes
with recovery — against a plain-dict reference model, checking after
every step that:

* live weights match the reference exactly,
* structural invariants (index/LRU/tag bits) hold,
* after any crash, recovery lands on the exact reference snapshot of
  the last completed checkpoint.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.config import CacheConfig, ServerConfig
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSSGD
from repro.core.recovery import recover_node

DIM = 2
KEYS = st.lists(st.integers(0, 9), min_size=1, max_size=4, unique=True)
SERVER_CONFIG = ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=23)
CACHE_CONFIG = CacheConfig(capacity_bytes=3 * DIM * 4)
LR = 0.25


def initial_weights(key: int) -> np.ndarray:
    rng = np.random.default_rng((SERVER_CONFIG.seed, key))
    return rng.uniform(-0.01, 0.01, DIM).astype(np.float32)


class NodeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.node = PSNode(0, SERVER_CONFIG, CACHE_CONFIG, PSSGD(lr=LR))
        self.reference: dict[int, np.ndarray] = {}
        self.snapshots: dict[int, dict[int, np.ndarray]] = {}
        self.batch = 0
        self.pulled_this_batch: list[int] | None = None

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    @precondition(lambda self: self.pulled_this_batch is None)
    @rule(keys=KEYS)
    def pull_and_maintain(self, keys):
        self.node.pull(keys, self.batch)
        self.node.maintain(self.batch)
        for key in keys:
            if key not in self.reference:
                self.reference[key] = initial_weights(key)
        self.pulled_this_batch = keys

    @precondition(lambda self: self.pulled_this_batch is not None)
    @rule(grad=st.floats(-1.0, 1.0, allow_nan=False, width=32))
    def push(self, grad):
        keys = self.pulled_this_batch
        grads = np.full((len(keys), DIM), grad, dtype=np.float32)
        self.node.push(keys, grads, self.batch)
        for key in keys:
            self.reference[key] = self.reference[key] - np.float32(LR) * grads[0]
        self.batch += 1
        self.pulled_this_batch = None

    @precondition(
        lambda self: self.pulled_this_batch is None
        and self.batch - 1 > self.node.coordinator.last_completed
        and (
            not self.node.coordinator.queue.pending()
            or self.node.coordinator.queue.pending()[-1] < self.batch - 1
        )
    )
    @rule()
    def request_checkpoint(self):
        batch_id = self.batch - 1
        self.node.coordinator.request(batch_id)
        self.snapshots[batch_id] = {
            key: np.array(weights, copy=True)
            for key, weights in self.reference.items()
        }

    @precondition(lambda self: self.node.coordinator.head() is not None)
    @rule()
    def force_complete(self):
        self.node.cache.complete_pending_checkpoints()

    @precondition(lambda self: self.pulled_this_batch is None)
    @rule()
    def crash_and_recover(self):
        durable = self.node.store.checkpointed_batch_id()
        pool = self.node.crash()
        if durable < 0:
            # No completed checkpoint: a real deployment restarts from
            # scratch; the machine rebuilds both sides.
            self.node = PSNode(0, SERVER_CONFIG, CACHE_CONFIG, PSSGD(lr=LR))
            self.reference = {}
            self.snapshots = {}
            self.batch = 0
            return
        self.node, report = recover_node(
            pool, SERVER_CONFIG, CACHE_CONFIG, PSSGD(lr=LR)
        )
        assert report.checkpoint_batch_id == durable
        expected = self.snapshots[durable]
        got = self.node.state_snapshot()
        assert set(got) == set(expected)
        for key, weights in expected.items():
            assert np.array_equal(got[key], weights)
        self.reference = {
            key: np.array(weights, copy=True) for key, weights in expected.items()
        }
        self.batch = durable + 1
        self.snapshots = {
            b: snap for b, snap in self.snapshots.items() if b <= durable
        }

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    @invariant()
    def weights_match_reference(self):
        for key, expected in self.reference.items():
            got = self.node.read_weights(key)
            assert np.array_equal(got, expected), key

    @invariant()
    def structures_consistent(self):
        self.node.cache.validate()
        assert self.node.cache.cached_entries <= self.node.cache.capacity_entries


NodeMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestNodeMachine = NodeMachine.TestCase
