"""Robust-aggregation math and the quorum-fold buffer."""

import numpy as np
import pytest

from repro.core.aggregators import (
    AGGREGATOR_NAMES,
    AggregationBuffer,
    Krum,
    Mean,
    Median,
    TrimmedMean,
    _segment_sum,
    default_byzantine_tolerance,
    make_aggregator,
)
from repro.errors import ConfigError

DIM = 4


def rows(*vectors):
    return np.asarray(vectors, dtype=np.float32)


class TestFoldMath:
    def test_mean_is_plain_average(self):
        out = Mean().fold(rows([1, 1, 1, 1], [3, 3, 3, 3]))
        assert np.array_equal(out, np.full(DIM, 2, dtype=np.float32))

    def test_single_row_is_bitwise_identity(self):
        g = np.array([[0.1, -0.2, 0.3, 7e-8]], dtype=np.float32)
        for agg in (Mean(), TrimmedMean(1), Median(), Krum(1)):
            assert Mean().fold(g) is g[0] or np.array_equal(agg.fold(g), g[0])

    def test_trimmed_mean_removes_one_outlier_per_end(self):
        honest = rows([1, 1, 1, 1], [2, 2, 2, 2], [3, 3, 3, 3])
        poisoned = np.vstack([honest, rows([100, -100, 100, -100])])
        out = TrimmedMean(1).fold(poisoned)
        # f=1 trims the max and min per coordinate; the outlier never
        # survives regardless of its sign pattern.
        assert np.all(np.abs(out) <= 3)

    def test_trimmed_mean_clamps_trim_to_keep_rows(self):
        two = rows([0, 0, 0, 0], [4, 4, 4, 4])
        # trim = min(f, (m-1)//2) = 0 -> plain mean, never empty
        assert np.array_equal(
            TrimmedMean(3).fold(two), np.full(DIM, 2, dtype=np.float32)
        )

    def test_median_ignores_minority_corruption(self):
        out = Median().fold(
            rows([1, 1, 1, 1], [1, 1, 1, 1], [-50, 50, -50, 50])
        )
        assert np.array_equal(out, np.ones(DIM, dtype=np.float32))

    def test_krum_picks_from_the_honest_cluster(self):
        honest = [
            np.full(DIM, 1.0 + 0.01 * i, dtype=np.float32) for i in range(4)
        ]
        byzantine = np.full(DIM, -40.0, dtype=np.float32)
        out = Krum(1).fold(np.stack(honest + [byzantine]))
        assert any(np.array_equal(out, h) for h in honest)

    def test_default_byzantine_tolerance(self):
        # largest f with n >= 3f + 2
        assert [default_byzantine_tolerance(n) for n in (1, 2, 4, 5, 6, 8)] == [
            0, 0, 0, 1, 1, 2,
        ]

    def test_make_aggregator_registry(self):
        assert make_aggregator("none") is None
        for name in AGGREGATOR_NAMES[1:]:
            assert make_aggregator(name, f=1).name == name
        with pytest.raises(ConfigError):
            make_aggregator("bogus")


class TestSegmentSum:
    def test_occurrence_order_and_duplicate_accumulation(self):
        keys = np.array([7, 3, 7, 9, 3], dtype=np.uint64)
        grads = np.arange(5 * DIM, dtype=np.float32).reshape(5, DIM)
        unique, summed = _segment_sum(keys, grads)
        assert unique.tolist() == [7, 3, 9]  # first-occurrence order
        assert np.array_equal(summed[0], grads[0] + grads[2])
        assert np.array_equal(summed[1], grads[1] + grads[4])
        assert np.array_equal(summed[2], grads[3])

    def test_matches_cache_fast_path_accumulation_order(self):
        """Seed-from-first then add-in-position-order, the exact float32
        sequence cache._update_fast uses (bitwise transparency)."""
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 8, size=64).astype(np.uint64)
        grads = rng.normal(0, 1, (64, DIM)).astype(np.float32)
        unique, summed = _segment_sum(keys, grads)
        for row, key in enumerate(unique.tolist()):
            positions = np.flatnonzero(keys == key)
            acc = np.array(grads[positions[0]], copy=True)
            for p in positions[1:]:
                acc = acc + grads[p]
            assert np.array_equal(summed[row], acc)


class TestAggregationBuffer:
    def push(self, buf, wid, keys, value, batch=0, seq=0):
        grads = np.full((len(keys), DIM), value, dtype=np.float32)
        return buf.add(wid, np.asarray(keys, dtype=np.uint64), grads, batch, seq=seq)

    def test_no_fold_until_quorum(self):
        buf = AggregationBuffer(Mean(), num_workers=3, f=1)  # quorum 2
        assert self.push(buf, 0, [1, 2], 1.0) == []
        assert buf.pending == 1
        folds = self.push(buf, 1, [2, 3], 3.0)
        assert len(folds) == 1 and buf.pending == 0

    def test_fold_merges_key_union_and_averages_overlap(self):
        buf = AggregationBuffer(Mean(), num_workers=2, f=0)
        self.push(buf, 0, [1, 2], 1.0)
        (fold,) = self.push(buf, 1, [2, 3], 3.0)
        got = dict(zip(fold.keys.tolist(), fold.grads[:, 0].tolist()))
        assert got == {1: 1.0, 2: 2.0, 3: 3.0}  # overlap averaged
        assert fold.contributors == 2

    def test_straggler_cannot_stall_folding(self):
        buf = AggregationBuffer(Mean(), num_workers=4, f=1)  # quorum 3
        self.push(buf, 0, [1], 1.0)
        self.push(buf, 1, [1], 1.0)
        folds = self.push(buf, 2, [1], 1.0)  # worker 3 never shows up
        assert len(folds) == 1 and folds[0].contributors == 3

    def test_single_contribution_fold_is_bitwise_identity(self):
        buf = AggregationBuffer(TrimmedMean(1), num_workers=1, f=0)
        keys = np.array([5, 9, 5], dtype=np.uint64)
        grads = np.array(
            [[0.1] * DIM, [7e-8] * DIM, [-0.3] * DIM], dtype=np.float32
        )
        (fold,) = buf.add(0, keys, grads, 4)
        ref_keys, ref_grads = _segment_sum(keys, grads)
        assert np.array_equal(fold.keys, ref_keys)
        assert np.array_equal(fold.grads, ref_grads)
        assert fold.batch_id == 4

    def test_seq_dedup_absorbs_replays(self):
        buf = AggregationBuffer(Mean(), num_workers=2, f=0)
        self.push(buf, 0, [1], 1.0, seq=7)
        assert self.push(buf, 0, [1], 1.0, seq=7) == []  # replay dropped
        assert buf.stats.duplicates_dropped == 1
        (fold,) = self.push(buf, 1, [1], 3.0, seq=8)
        assert fold.grads[0, 0] == 2.0  # the duplicate did not skew it

    def test_seq_zero_opts_out_of_dedup(self):
        buf = AggregationBuffer(Mean(), num_workers=1, f=0)
        self.push(buf, 0, [1], 1.0, seq=0)
        self.push(buf, 0, [1], 1.0, seq=0)
        assert buf.stats.duplicates_dropped == 0
        assert buf.stats.folds == 2  # both applied (quorum 1)

    def test_flush_folds_below_quorum(self):
        buf = AggregationBuffer(Mean(), num_workers=4, f=0)  # quorum 4
        self.push(buf, 0, [1], 1.0, batch=2)
        self.push(buf, 1, [1], 3.0, batch=5)
        folds = buf.flush()
        assert buf.pending == 0
        assert len(folds) == 1 and folds[0].batch_id == 5
        assert folds[0].grads[0, 0] == 2.0

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ConfigError):
            AggregationBuffer(Mean(), num_workers=2, f=2)
        with pytest.raises(ConfigError):
            AggregationBuffer(Mean(), num_workers=0)
