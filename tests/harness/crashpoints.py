"""Deterministic crash-point harness for live shard migration.

The migration protocol in :mod:`repro.core.migration` labels every step
(:data:`~repro.core.migration.MIGRATION_STEPS`). This harness arms a
:class:`CrashPointScheduler` on one label, trains a deterministic
workload, kills the whole cluster exactly there, recovers with
:func:`~repro.core.migration.recover_elastic`, finishes the interrupted
reshard if the recovered ring is still pre-migration, replays the lost
batches, and finally compares the cluster bitwise against an
**unsharded reference replay** (one PS node, same seed, every batch
applied exactly once).

Because every PS operation is deterministic — weights initialize from
``(seed, key)``, gradients from ``(seed, batch)``, the optimizer is a
pure function of each key's gradient sequence — a single lost or
double-applied push would change the final bits. Bitwise equality is
therefore exactly the "no lost or duplicated update" property the
crash-point sweep (``tests/test_migration_crashpoints.py``) asserts,
at every step of the protocol, for scale-out and scale-in, over the
in-process and the (optionally fault-injected) RPC transport.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    CacheConfig,
    NetworkFaultConfig,
    RetryConfig,
    ServerConfig,
)
from repro.core.migration import (
    MIGRATION_STEPS,
    MigrationReport,
    ShardMigrator,
    recover_elastic,
)
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.network.frontend import RemotePSClient, RpcMigrationTransport

DIM = 8
NUM_KEYS = 96
BATCH_KEYS = 12
RING_VNODES = 32

#: Same lossy wire the RPC equivalence tests use.
FAULTS = NetworkFaultConfig(
    drop_rate=0.05, duplicate_rate=0.03, corrupt_rate=0.02, seed=5
)
RETRY = RetryConfig(
    max_attempts=12, attempt_timeout_s=0.05, call_timeout_s=30.0, seed=5
)


class InjectedCrash(Exception):
    """Raised by :class:`CrashPointScheduler` at the armed step."""


class CrashPointScheduler:
    """``on_step`` hook that kills the migration at one labelled step.

    The hook fires *before* the step's actions run, so crashing at
    ``commit`` leaves the old ring durable while crashing at ``cleanup``
    leaves the new one — both sides of the atomic commit point are
    exercised. Every label seen is recorded, which lets the sweep prove
    it covered 100 % of :data:`MIGRATION_STEPS`.
    """

    def __init__(self, crash_at: str | None = None):
        if crash_at is not None and crash_at not in MIGRATION_STEPS:
            raise ValueError(
                f"unknown migration step {crash_at!r}; "
                f"expected one of {MIGRATION_STEPS}"
            )
        self.crash_at = crash_at
        self.steps_seen: list[str] = []

    def __call__(self, label: str) -> None:
        self.steps_seen.append(label)
        if label == self.crash_at:
            raise InjectedCrash(label)


# ----------------------------------------------------------------------
# deterministic workload
# ----------------------------------------------------------------------


def batch_payload(seed: int, batch: int) -> tuple[list[int], np.ndarray]:
    """Keys and gradients of global batch ``batch`` — a pure function of
    ``(seed, batch)`` so a post-recovery replay regenerates the exact
    pushes the crash discarded."""
    rng = np.random.default_rng((seed, batch))
    keys = sorted(rng.choice(NUM_KEYS, size=BATCH_KEYS, replace=False).tolist())
    grads = rng.normal(0, 0.1, (BATCH_KEYS, DIM)).astype(np.float32)
    return keys, grads


def server_config(num_nodes: int, seed: int) -> ServerConfig:
    return ServerConfig(
        num_nodes=num_nodes,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        partitioner="ring",
        ring_vnodes=RING_VNODES,
        seed=seed,
    )


def cache_config() -> CacheConfig:
    # Small enough that flushes and evictions actually happen.
    return CacheConfig(capacity_bytes=32 * DIM * 4)


def reference_state(seed: int, total_batches: int) -> dict[int, np.ndarray]:
    """Final weights of an unsharded replay: ONE node, modulo routing,
    every batch applied exactly once, no crash, no migration."""
    config = ServerConfig(
        num_nodes=1,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        seed=seed,
    )
    server = OpenEmbeddingServer(config, cache_config(), PSAdagrad(lr=0.05))
    for batch in range(total_batches):
        keys, grads = batch_payload(seed, batch)
        server.pull(keys, batch)
        server.maintain(batch)
        server.push(keys, grads, batch)
    return server.state_snapshot()


# ----------------------------------------------------------------------
# scenario driver
# ----------------------------------------------------------------------


@dataclass
class ScenarioResult:
    """Everything a crash-point scenario observed, for assertions."""

    direction: str
    crash_at: str | None
    crashed: bool
    retried_migration: bool
    recovered_epoch: int | None
    purged_keys: int | None
    steps_seen: list[str]
    #: ``global_completed_checkpoint`` observed after every batch, after
    #: recovery, and after the final barrier — must be non-decreasing.
    checkpoint_trail: list[int]
    final_state: dict[int, np.ndarray]
    reference: dict[int, np.ndarray]
    backend: object
    report: MigrationReport | None


def run_crashpoint_scenario(
    direction: str,
    crash_at: str | None,
    *,
    remote: bool = False,
    faulty: bool = False,
    seed: int = 0,
    nodes: int = 3,
    batches_before: int = 5,
    batches_after: int = 4,
    checkpoint_every: int = 2,
) -> ScenarioResult:
    """Train, crash the cluster at ``crash_at`` mid-``direction``,
    recover, finish the job, and return everything observed.

    Schedule: batches ``0..batches_before-1`` -> reshard (killed at
    ``crash_at``; ``None`` disables the crash) -> recovery + lost-batch
    replay + reshard retry if the committed ring was still the old one
    -> batches ``batches_before..end``. The reference replay sees each
    batch exactly once, so the scenario's final state must match it
    bitwise whatever happened in the middle.
    """
    if direction not in ("scale_out", "scale_in"):
        raise ValueError(f"unknown direction {direction!r}")
    total = batches_before + batches_after
    config = server_config(nodes, seed)
    if remote:
        backend = RemotePSClient(
            config,
            cache_config(),
            PSAdagrad(lr=0.05),
            faults=FAULTS if faulty else None,
            retry=RETRY if faulty else None,
        )
        transport = RpcMigrationTransport(backend)
    else:
        if faulty:
            raise ValueError("fault injection needs the remote backend")
        backend = OpenEmbeddingServer(config, cache_config(), PSAdagrad(lr=0.05))
        transport = None
    trail: list[int] = []

    def train(first: int, last: int) -> None:
        """Run global batches ``first..last-1`` (checkpoint cadence is a
        function of the batch id, so replays re-fire identically)."""
        for batch in range(first, last):
            keys, grads = batch_payload(seed, batch)
            backend.pull(keys, batch)
            backend.maintain(batch)
            backend.push(keys, grads, batch)
            if (batch + 1) % checkpoint_every == 0:
                backend.barrier_checkpoint(batch)
            trail.append(backend.global_completed_checkpoint)

    train(0, batches_before)

    scheduler = CrashPointScheduler(crash_at)
    migrator = ShardMigrator(backend, transport=transport, on_step=scheduler)
    run = migrator.scale_out if direction == "scale_out" else migrator.scale_in
    crashed = False
    retried = False
    recovered_epoch: int | None = None
    purged: int | None = None
    report: MigrationReport | None = None
    try:
        report = run()
    except InjectedCrash:
        crashed = True
        pools = migrator.crash()
        backend, __, purged = recover_elastic(
            pools, config, cache_config(), PSAdagrad(lr=0.05)
        )
        recovered_epoch = backend.ring_epoch
        trail.append(backend.global_completed_checkpoint)
        # Replay whatever the rollback discarded (usually nothing: the
        # migration barrier checkpointed the newest batch first).
        train(backend.global_completed_checkpoint + 1, batches_before)
        target = nodes + 1 if direction == "scale_out" else nodes - 1
        if backend.server_config.num_nodes != target:
            # Crash landed before the commit point: the durable ring is
            # still the old one, so the reshard simply runs again.
            retried = True
            retry_migrator = ShardMigrator(backend)
            report = (
                retry_migrator.scale_out()
                if direction == "scale_out"
                else retry_migrator.scale_in()
            )
        trail.append(backend.global_completed_checkpoint)

    train(batches_before, total)
    if backend.global_completed_checkpoint < total - 1:
        backend.barrier_checkpoint(total - 1)
    trail.append(backend.global_completed_checkpoint)
    return ScenarioResult(
        direction=direction,
        crash_at=crash_at,
        crashed=crashed,
        retried_migration=retried,
        recovered_epoch=recovered_epoch,
        purged_keys=purged,
        steps_seen=scheduler.steps_seen,
        checkpoint_trail=trail,
        final_state=backend.state_snapshot(),
        reference=reference_state(seed, total),
        backend=backend,
        report=report,
    )


# ----------------------------------------------------------------------
# assertions
# ----------------------------------------------------------------------


def assert_bitwise_equal(
    state: dict[int, np.ndarray], reference: dict[int, np.ndarray]
) -> None:
    """Every key present, every weight bit-identical — the no-lost /
    no-duplicated-update property in one comparison."""
    assert set(state) == set(reference), (
        f"key sets differ: extra={sorted(set(state) - set(reference))[:5]} "
        f"missing={sorted(set(reference) - set(state))[:5]}"
    )
    for key in reference:
        np.testing.assert_array_equal(
            state[key], reference[key], err_msg=f"weights diverged on key {key}"
        )


def assert_monotone_checkpoints(trail: list[int]) -> None:
    """Checkpointed Batch ID never moves backwards, across crash and
    recovery included."""
    for before, after in zip(trail, trail[1:]):
        assert after >= before, f"checkpoint id regressed: {before} -> {after}"


def assert_exclusive_ownership(backend) -> None:
    """Every resident key lives on exactly the shard the committed
    partitioner routes it to (no dual-ownership leftovers)."""
    for node in backend.nodes:
        for key in node.owned_keys():
            owner = backend.partitioner.node_of(key)
            assert owner == node.node_id, (
                f"key {key} resident on node {node.node_id} "
                f"but routed to {owner}"
            )
