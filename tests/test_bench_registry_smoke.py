"""Every registered benchmark runs at smoke scale through the registry.

This is the contract the sweep harness depends on: ``discover()`` finds
every ``benchmarks/bench_*.py``, each registers a callable entry whose
smoke-scale resolution runs to completion, returns finite numeric
metrics including every declared headline metric, and passes its own
acceptance check. A benchmark that breaks any of these would silently
drop out of the CI perf gate — this test makes that loud instead.
"""

import math

import pytest

from repro.bench import REGISTRY, discover

MODULES_IMPORTED = discover()


def test_discovery_finds_all_bench_modules():
    assert MODULES_IMPORTED >= 30
    assert len(REGISTRY) >= 30


def test_every_bench_declares_a_headline():
    missing = [
        name for name in REGISTRY.names() if not REGISTRY.get(name).headline
    ]
    assert missing == [], f"benches without gate coverage: {missing}"


@pytest.mark.parametrize("name", sorted(REGISTRY.names()))
def test_bench_smoke(name):
    spec = REGISTRY.get(name)
    params = spec.resolve(scale="smoke")

    # the declared space covers every entry kwarg (resolve() would have
    # raised otherwise), and headline metrics must exist in the output
    metrics = spec.run(params)

    assert metrics, f"{name}: empty metrics"
    for key, value in metrics.items():
        assert isinstance(value, (int, float, bool)), (
            f"{name}: metric {key!r} is {type(value).__name__}"
        )
        if not isinstance(value, bool):
            assert math.isfinite(value), f"{name}: metric {key!r} = {value!r}"
    missing = sorted(set(spec.headline) - set(metrics))
    assert missing == [], f"{name}: headline metrics absent: {missing}"

    failures = spec.failures(metrics, params)
    assert failures == [], f"{name}: acceptance check failed: {failures}"
