"""Command-line interface.

Twelve subcommands::

    repro simulate   --system pmem_oe --workers 16 ...   # one simulated epoch
    repro train      --batches 200 --crash-at 120 ...    # functional DeepFM demo
    repro serve-bench --requests 400 --chaos ...         # online serving QPS/p99
    repro plan       --model-gb 500 --mttf-hours 12      # sizing & intervals
    repro workload   --keys 500000 ...                   # Table II skew check
    repro faults     --drop 0.05 --duplicate 0.03 ...    # lossy-wire RPC demo
    repro metrics    run.metrics.json                    # pretty-print a snapshot
    repro trace      merge node0.json node1.json -o m.json  # multi-node timeline
    repro slo        slo_serving.json                    # render an SLO verdict
    repro reproduce  fig7 table2 ...                     # run paper experiments
    repro sweep      --grid 'bench=prefetch;lookahead[bench=prefetch]=0,2' --smoke
    repro bench      list | run NAME --smoke | gate --baseline DIR ...

``simulate`` and ``train`` accept ``--trace-out FILE.json`` (Chrome
``trace_event`` timeline, open in Perfetto / ``chrome://tracing``) and
``--metrics-out FILE`` (``.json`` snapshot or Prometheus text; the
``.json`` form is what ``repro metrics`` renders). ``repro trace
merge`` stitches per-node trace files into one causally flow-linked
timeline; ``repro trace show`` summarizes any trace file in the
terminal. ``repro slo`` renders the machine-readable SLO verdict that
``serve-bench --chaos`` and ``bench_serving.py`` emit.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    PrefetchConfig,
    ServerConfig,
)
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import AccessTraceAnalyzer

GB = 1 << 30


def _obs_sinks(args: argparse.Namespace):
    """(tracer, registry) from ``--trace-out`` / ``--metrics-out``."""
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer() if getattr(args, "trace_out", None) else None
    registry = MetricsRegistry() if getattr(args, "metrics_out", None) else None
    return tracer, registry


def _write_obs(args: argparse.Namespace, tracer, registry) -> None:
    """Serialize whatever sinks were requested."""
    from repro.obs import write_chrome_trace, write_metrics

    if tracer is not None and args.trace_out:
        events = write_chrome_trace(tracer, args.trace_out)
        print(f"trace             : {events} events -> {args.trace_out}")
    if registry is not None and args.metrics_out:
        fmt = write_metrics(registry, args.metrics_out)
        print(f"metrics           : {len(registry)} series ({fmt}) "
              f"-> {args.metrics_out}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    import dataclasses

    profile = DEFAULT_PROFILE
    system = SystemKind(args.system)
    checkpoint = CheckpointConfig.none()
    if args.checkpoint != "none":
        mode = CheckpointMode(args.checkpoint)
        # A provisional interval from the profile's nominal epoch; the
        # simulator scales intervals in simulated seconds.
        checkpoint = CheckpointConfig(mode, interval_seconds=args.interval_seconds)
    tracer, registry = _obs_sinks(args)
    server_config = dataclasses.replace(
        profile.server_config(args.nodes),
        partitioner=args.partitioner,
        ring_vnodes=args.ring_vnodes,
        replicas=args.replicas,
        lease_s=args.lease_ms * 1e-3,
    )
    simulator = TrainingSimulator(
        system,
        profile.cluster_config(args.workers),
        server_config,
        profile.cache_config(paper_mb=args.cache_mb),
        checkpoint,
        WorkloadGenerator(profile.workload_config(args.skew)),
        prefetch=PrefetchConfig(lookahead=args.lookahead),
        reshard_at=args.reshard_at,
        reshard_to=args.reshard_to,
        mttf_s=args.mttf,
        tracer=tracer,
        registry=registry,
    )
    iterations = args.iterations or profile.iterations(args.workers)
    result = simulator.run(iterations)
    print(f"system            : {system.value}")
    print(f"workers           : {args.workers}")
    print(f"iterations        : {result.iterations}")
    print(f"simulated epoch   : {result.sim_seconds:.3f} s")
    print(f"per iteration     : {result.seconds_per_iteration * 1e3:.2f} ms")
    print(f"cache miss rate   : {result.miss_rate:.2%}")
    print(f"checkpoints       : {result.checkpoints_completed}")
    print(f"checkpoint pause  : {result.checkpoint_pause_seconds:.3f} s")
    print(f"gpu / net / pull / push (s): "
          f"{result.gpu_seconds:.2f} / {result.net_seconds:.2f} / "
          f"{result.pull_service_seconds:.2f} / {result.push_service_seconds:.2f}")
    if args.lookahead > 0:
        print(f"prefetch          : lookahead {args.lookahead}, "
              f"{result.prefetch_requests} overlapped pulls "
              f"({result.prefetch_overlapped_seconds:.3f} s hidden), "
              f"{result.total_requests} demand pulls on the critical path")
    if result.migrations_completed:
        moved = result.migration_keys_moved
        total = result.migration_keys_total or 1
        print(f"reshard           : {args.partitioner} partitioner, "
              f"{moved}/{result.migration_keys_total} keys moved "
              f"({moved / total:.1%}), "
              f"pause {result.migration_pause_seconds * 1e3:.3f} ms")
    if result.failures_injected:
        print(f"failures          : {result.failures_injected} node kills "
              f"(MTTF {args.mttf:.1f} s, {args.replicas} replica(s))")
        if result.failovers_completed:
            print(f"failover pause    : {result.failover_pause_seconds:.3f} s "
                  f"client-visible ({result.failovers_completed} promotions, "
                  f"lease {args.lease_ms:.0f} ms), "
                  f"{result.rereplication_seconds:.3f} s re-replication "
                  f"in background")
        if result.recovery_pause_seconds:
            print(f"recovery pause    : {result.recovery_pause_seconds:.3f} s "
                  f"(no replica; checkpoint-recovery rebuild)")
    _write_obs(args, tracer, registry)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.optimizers import PSAdagrad
    from repro.core.server import OpenEmbeddingServer
    from repro.dlrm.criteo import CriteoSynthetic
    from repro.dlrm.deepfm import DeepFM
    from repro.dlrm.optimizers import Adam
    from repro.dlrm.trainer import SynchronousTrainer

    tracer, registry = _obs_sinks(args)
    dataset = CriteoSynthetic(
        num_fields=args.fields, vocab_per_field=args.vocab, seed=args.seed
    )
    if args.mode == "async":
        return _train_async(args, dataset, tracer, registry)
    server_config = ServerConfig(
        num_nodes=args.nodes,
        embedding_dim=args.dim,
        pmem_capacity_bytes=1 << 30,
        seed=args.seed,
    )
    cache_config = CacheConfig(capacity_bytes=args.cache_kb << 10)

    def build():
        server = OpenEmbeddingServer(
            server_config, cache_config, PSAdagrad(lr=0.05), tracer=tracer
        )
        model = DeepFM(
            args.fields, args.dim, hidden=(64, 32), use_first_order=False,
            seed=args.seed,
        )
        return SynchronousTrainer(
            server, model, dataset,
            num_workers=args.workers, batch_size=args.batch_size,
            dense_optimizer=Adam(2e-3), checkpoint_every=args.checkpoint_every,
            prefetch=(
                PrefetchConfig(lookahead=args.lookahead)
                if args.lookahead > 0
                else None
            ),
            tracer=tracer,
        )

    trainer = build()
    crash_at = args.crash_at if args.crash_at and args.crash_at < args.batches else None
    first_leg = crash_at or args.batches
    for result in trainer.train(first_leg):
        if result.batch_id % 20 == 0:
            print(f"batch {result.batch_id:5d}  loss {result.loss:.4f}")
    if crash_at is not None:
        from repro.errors import RecoveryError

        print(f"-- injected crash after batch {crash_at}; recovering ...")
        pools, __, dense = trainer.crash()
        model = DeepFM(
            args.fields, args.dim, hidden=(64, 32), use_first_order=False,
            seed=args.seed,
        )
        try:
            trainer = SynchronousTrainer.recover(
                pools, dense, model=model, dataset=dataset,
                server_config=server_config, cache_config=cache_config,
                ps_optimizer=PSAdagrad(lr=0.05),
                num_workers=args.workers, batch_size=args.batch_size,
                dense_optimizer=Adam(2e-3), checkpoint_every=args.checkpoint_every,
                prefetch=(
                    PrefetchConfig(lookahead=args.lookahead)
                    if args.lookahead > 0
                    else None
                ),
                tracer=tracer,
            )
            print(f"-- resumed from checkpoint of batch {trainer.next_batch - 1}")
        except RecoveryError:
            print("-- no completed checkpoint yet; restarting from scratch")
            trainer = build()
        for result in trainer.train(args.batches - trainer.next_batch):
            if result.batch_id % 20 == 0:
                print(f"batch {result.batch_id:5d}  loss {result.loss:.4f}")
    losses = trainer.loss_history
    print(f"final: {trainer.backend.num_entries} entries, "
          f"mean loss last 20 batches {np.mean(losses[-20:]):.4f}")
    if trainer.pipeline is not None:
        stats = trainer.pipeline.stats
        print(f"prefetch: hit rate {stats.hit_rate:.1%}, "
              f"{stats.demand_keys} demand / {stats.prefetch_keys} prefetched "
              f"/ {stats.patched_keys} patched keys")
    if registry is not None:
        trainer.backend.collect_metrics(registry)
    _write_obs(args, tracer, registry)
    return 0


def _train_async(args: argparse.Namespace, dataset, tracer, registry) -> int:
    """Bounded-staleness asynchronous mode of ``repro train``."""
    from repro.core.optimizers import PSAdagrad
    from repro.core.server import OpenEmbeddingServer
    from repro.dlrm.async_trainer import AsynchronousTrainer
    from repro.dlrm.deepfm import DeepFM
    from repro.dlrm.optimizers import Adam
    from repro.errors import ConfigError
    from repro.failure.injection import hostile_fleet

    if args.crash_at:
        print("error: --crash-at is a sync-mode flag; async recovery runs "
              "through `checkpoint(quiesce=True)` (see docs/ASYNC.md)",
              file=sys.stderr)
        return 2
    defended = args.staleness_k is not None or args.aggregator != "none"
    server_config = ServerConfig(
        num_nodes=args.nodes,
        embedding_dim=args.dim,
        pmem_capacity_bytes=1 << 30,
        seed=args.seed,
        staleness_bound=args.staleness_k,
        aggregator=args.aggregator,
        aggregator_workers=args.workers if args.aggregator != "none" else 0,
    )
    cache_config = CacheConfig(capacity_bytes=args.cache_kb << 10)
    fleet = None
    byzantine = round(args.hostile * args.workers)
    if args.hostile > 0:
        fleet = hostile_fleet(
            args.workers, byzantine, args.byzantine_mode,
            scale=args.byzantine_scale, duplicate_prob=0.1, delay_prob=0.1,
            seed=args.seed,
        )
    server = OpenEmbeddingServer(
        server_config, cache_config, PSAdagrad(lr=0.05), tracer=tracer
    )
    model = DeepFM(
        args.fields, args.dim, hidden=(64, 32), use_first_order=False,
        seed=args.seed,
    )
    try:
        trainer = AsynchronousTrainer(
            server, model, dataset,
            num_workers=args.workers, batch_size=args.batch_size,
            staleness=args.staleness,
            dense_optimizer=Adam(2e-3),
            prefetch=(
                PrefetchConfig(lookahead=args.lookahead)
                if args.lookahead > 0
                else None
            ),
            worker_faults=fleet,
            track_progress=True if defended else None,
            tracer=tracer,
            registry=registry,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    losses = trainer.run_steps(args.batches)
    for step, loss in enumerate(losses):
        if step % 20 == 0:
            print(f"step {step:5d}  loss {loss:.4f}")
    missed = trainer.checkpoint(quiesce=True)
    stats = trainer.stats
    print(f"mode              : async (staleness {args.staleness}, "
          f"k={args.staleness_k if args.staleness_k is not None else 'off'}, "
          f"aggregator {args.aggregator})")
    if fleet is not None:
        print(f"hostile fleet     : {byzantine}/{args.workers} byzantine "
              f"({args.byzantine_mode} x{args.byzantine_scale:g}), "
              f"{stats.byzantine_pushes} corrupted pushes injected")
    print(f"admission         : {stats.staleness_rejects} stale pulls "
          f"rejected, {stats.skipped_batches} batches skipped, "
          f"{stats.straggle_skips} straggler stalls")
    print(f"pushes            : {stats.duplicate_pushes} duplicated, "
          f"{stats.delayed_pushes} delayed "
          f"(dedup + quorum folds absorb both)")
    print(f"checkpoint        : quiesced, {missed} pushes left in flight")
    print(f"final: {server.num_entries} entries, "
          f"mean loss last 20 steps {np.mean(losses[-20:]):.4f}")
    if registry is not None:
        server.collect_metrics(registry)
    _write_obs(args, tracer, registry)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.recovery import estimate_recovery_seconds
    from repro.cost.pricing import (
        R6E_13XLARGE,
        RE6P_13XLARGE,
        cost_per_epoch,
        deployment_for_model,
    )
    from repro.failure.mttf import young_interval_seconds

    model_bytes = int(args.model_gb * GB)
    entries = model_bytes // (args.dim * 4)
    print(f"model: {args.model_gb:.0f} GB, ~{entries / 1e9:.2f} B entries (dim {args.dim})")
    for instance, name in ((R6E_13XLARGE, "DRAM-PS"), (RE6P_13XLARGE, "PMem-OE")):
        deployment = deployment_for_model(model_bytes, instance, name)
        print(f"  {name:>8}: {deployment.machines} x {instance.name} "
              f"= ${deployment.dollars_per_hour:.2f}/h "
              f"(${cost_per_epoch(deployment, args.epoch_hours):.1f}/epoch "
              f"at {args.epoch_hours:.2f} h)")
    recovery = estimate_recovery_seconds(
        entries=entries, versions=entries, entry_bytes=args.dim * 4
    )
    interval = young_interval_seconds(args.ckpt_cost_s, args.mttf_hours * 3600)
    print(f"  PMem-OE recovery estimate: {recovery:.0f} s")
    print(f"  Young-optimal checkpoint interval: {interval / 60:.1f} min "
          f"(ckpt cost {args.ckpt_cost_s:.0f} s, MTTF {args.mttf_hours:.0f} h)")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.config import WorkloadConfig

    generator = WorkloadGenerator(
        WorkloadConfig(
            num_keys=args.keys,
            features_per_sample=args.features,
            skew=args.skew,
            seed=args.seed,
        )
    )
    stream = generator.access_stream(args.batches, args.batch_size)
    analyzer = AccessTraceAnalyzer(stream)
    report = analyzer.skew_report(of_keyspace=args.keys)
    print(f"{report.total_accesses} accesses, {report.distinct_keys} distinct keys")
    for fraction, share in report.top_shares.items():
        print(f"  top {fraction:.2%} of key space -> {share:.1%} of accesses")
    a, b = analyzer.fit_exponential()
    print(f"  exponential fit: freq = {a:.1f} * exp(-{b:.1f} * rank/N)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Train over a lossy wire and prove retries are semantics-free."""
    from repro.config import NetworkFaultConfig, RetryConfig
    from repro.network.frontend import RemotePSClient

    server_config = ServerConfig(
        num_nodes=args.nodes,
        embedding_dim=args.dim,
        pmem_capacity_bytes=1 << 26,
        seed=args.seed,
    )
    cache_config = CacheConfig(capacity_bytes=args.cache_kb << 10)
    faults = NetworkFaultConfig(
        drop_rate=args.drop,
        duplicate_rate=args.duplicate,
        corrupt_rate=args.corrupt,
        delay_rate=args.delay,
        delay_mean_s=args.delay_mean_ms * 1e-3,
        seed=args.seed,
    )
    retry = RetryConfig(
        max_attempts=args.max_attempts,
        attempt_timeout_s=args.attempt_timeout_ms * 1e-3,
        call_timeout_s=args.call_timeout_s,
        seed=args.seed,
    )

    def run(fault_config):
        client = RemotePSClient(
            server_config, cache_config,
            faults=fault_config, retry=retry,
        )
        rng = np.random.default_rng(args.seed)
        for batch in range(args.batches):
            keys = sorted(
                rng.choice(args.keys, size=args.batch_keys, replace=False).tolist()
            )
            grads = rng.normal(0, 0.1, (args.batch_keys, args.dim)).astype(
                np.float32
            )
            client.pull(keys, batch)
            client.maintain(batch)
            client.push(keys, grads, batch)
        return client

    clean = run(None)
    faulty = run(faults)
    clean_state, faulty_state = clean.state_snapshot(), faulty.state_snapshot()
    identical = set(clean_state) == set(faulty_state) and all(
        np.array_equal(clean_state[key], faulty_state[key]) for key in clean_state
    )
    reliability = faulty.reliability()
    injected = faulty.fault_stats()
    print(f"batches           : {args.batches} ({args.batch_keys} keys each)")
    print(f"fault schedule    : drop {args.drop:.1%}, dup {args.duplicate:.1%}, "
          f"corrupt {args.corrupt:.1%}, delay {args.delay:.1%} "
          f"(seed {args.seed})")
    print(f"injected faults   : {injected.total} {injected.summary()}")
    print(f"retries           : {reliability.retries}")
    print(f"timeouts          : {reliability.timeouts}")
    print(f"wire errors       : {reliability.wire_errors}")
    print(f"dup-suppressed    : {reliability.dup_suppressed}")
    print(f"backoff time      : {reliability.backoff_seconds * 1e3:.2f} ms")
    print(f"wire bytes        : clean {clean.wire_bytes()}, "
          f"faulty {faulty.wire_bytes()} "
          f"(+{faulty.wire_bytes() - clean.wire_bytes()})")
    print(f"simulated time    : clean {clean.clock.now * 1e3:.2f} ms, "
          f"faulty {faulty.clock.now * 1e3:.2f} ms")
    print(f"weights identical : {identical}")
    if args.mttf is not None:
        from repro.failure.mttf import (
            expected_lost_work_seconds,
            young_interval_seconds,
        )

        interval = young_interval_seconds(args.checkpoint_cost, args.mttf)
        lost = expected_lost_work_seconds(interval, args.mttf)
        print(f"-- failure planning (Young 1974) --")
        print(f"MTTF              : {args.mttf:.1f} s")
        print(f"checkpoint cost   : {args.checkpoint_cost:.3f} s")
        print(f"optimal interval  : {interval:.3f} s  (sqrt(2*C*MTTF))")
        print(f"expected lost work: {lost:.3f} s per failure "
              f"(interval/2; recovery accounted separately)")
    return 0 if identical else 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Closed-loop online serving benchmark over the RPC cluster."""
    import dataclasses

    from repro.core.optimizers import PSAdagrad
    from repro.dlrm.hps import HierarchicalPS
    from repro.network.frontend import RemotePSClient
    from repro.obs import MetricsRegistry, SLOTracker, render_verdict
    from repro.simulation.clock import SimClock
    from repro.simulation.serving_sim import (
        ServingCostModel,
        ServingLoadDriver,
        TrainServeSoak,
    )
    from repro.workload.distributions import BandedSkewDistribution

    server_config = ServerConfig(
        num_nodes=args.nodes,
        embedding_dim=args.dim,
        pmem_capacity_bytes=1 << 26,
        seed=args.seed,
        partitioner="ring",
        replicas=args.replicas,
        lease_s=0.5,
    )
    server_config = dataclasses.replace(
        server_config, serving_replica_policy=args.policy
    )
    cache_config = CacheConfig(capacity_bytes=args.cache_kb << 10)
    clock = SimClock()
    registry = MetricsRegistry()
    slo = None
    if args.chaos:
        # SLO-gated chaos: the run fails on error-budget exhaustion,
        # not only on torn/stale rows.
        slo = SLOTracker()
        slo.latency("serving_p99", args.slo_p99_ms * 1e-3, budget=args.slo_budget)
        slo.availability("serving_availability")
        slo.staleness("serving_staleness", args.staleness_k, budget=0.0)
    client = RemotePSClient(
        server_config, cache_config, PSAdagrad(lr=0.05),
        clock=clock, registry=registry,
    )
    if args.replicas == 2:
        client.enable_failover(registry)
    tier = HierarchicalPS(
        client,
        capacity_rows=args.cache_rows,
        staleness_bound_k=args.staleness_k,
        registry=registry,
        slo=slo,
    )
    distribution = BandedSkewDistribution(args.keys, seed=args.seed)
    driver = ServingLoadDriver(
        tier, distribution, ServingCostModel(network=None), clock,
        batch_keys=args.batch_keys, num_keys=args.keys, slo=slo,
    )
    rng = np.random.default_rng(args.seed)
    for batch in range(args.pretrain_batches):
        keys = distribution.sample_keys(256)
        grads = rng.normal(0, 0.01, (len(keys), args.dim)).astype(np.float32)
        client.pull(keys, batch)
        client.maintain(batch)
        client.push(keys, grads, batch)
    client.barrier_checkpoint()

    kill_at = args.kill_at if args.kill_at and args.kill_at < args.requests else None
    if args.chaos and kill_at is None:
        kill_at = args.requests // 2
    if kill_at is not None and args.replicas != 2:
        print("error: --kill-at/--chaos needs --replicas 2 (hot failover)",
              file=sys.stderr)
        return 2
    driver.run(args.warm)
    if kill_at is not None:
        soak = TrainServeSoak(
            tier, client, driver, rng_seed=args.seed,
            train_every=3, checkpoint_every=2,
            kill_primary_at=kill_at, kill_node=0, slo=slo,
        )
        verdict = soak.run(args.requests)
        report = verdict.report
    else:
        verdict = None
        report = driver.run(args.requests)
    print(f"requests          : {report.requests} "
          f"({args.batch_keys} keys each, {args.keys} key space)")
    print(f"cache             : {args.cache_rows} rows, "
          f"staleness bound k={args.staleness_k}, policy {args.policy}")
    print(f"throughput        : {report.qps:.0f} req/s (simulated)")
    print(f"latency p50/p95/p99: {report.latency.p50 * 1e6:.1f} / "
          f"{report.latency.p95 * 1e6:.1f} / "
          f"{report.latency.p99 * 1e6:.1f} us")
    print(f"hit rate          : {tier.stats.hit_rate:.1%} "
          f"({tier.stats.cache_hits} hits / {tier.stats.rows} rows)")
    if report.hit_latency.count:
        print(f"hit-path p99      : {report.hit_latency.p99 * 1e6:.2f} us")
    if report.miss_latency.count:
        print(f"miss-path p99     : {report.miss_latency.p99 * 1e6:.1f} us")
    if verdict is not None:
        print(f"chaos             : killed node 0's primary at request "
              f"{kill_at}; served through kill: "
              f"{verdict.served_through_kill}")
        print(f"consistency       : {verdict.rows_audited} rows audited, "
              f"{verdict.torn_rows} torn, {verdict.stale_rows} beyond k "
              f"(max staleness {verdict.max_staleness})")
        failed = bool(verdict.torn_rows or verdict.stale_rows)
        if slo is not None:
            slo_verdict = slo.verdict()
            print()
            print(render_verdict(slo_verdict))
            if args.slo_out:
                import json

                with open(args.slo_out, "w") as handle:
                    json.dump(slo_verdict, handle, indent=2)
                    handle.write("\n")
                print(f"slo verdict       -> {args.slo_out}")
            failed = failed or bool(slo.exhausted())
        return 1 if failed else 0
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Merge per-node traces / summarize a trace file."""
    import json
    import pathlib

    from repro.errors import ConfigError
    from repro.obs import merge_trace_files, summarize_trace

    if args.action == "merge":
        paths = [pathlib.Path(p) for p in args.files]
        for path in paths:
            if not path.is_file():
                print(f"error: no such trace file: {path}", file=sys.stderr)
                return 2
        try:
            merged = merge_trace_files(paths, out=args.out)
        except (ConfigError, json.JSONDecodeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        flows = merged["otherData"]["flows"]
        print(f"merged {len(paths)} trace(s), {len(merged['traceEvents'])} "
              f"events, {flows} cross-node flow link(s) -> {args.out}")
        return 0
    # show
    path = pathlib.Path(args.file)
    if not path.is_file():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    try:
        trace = json.loads(path.read_text())
        print(summarize_trace(trace))
    except (ConfigError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Summaries are routinely piped into `head` / a pager; a closed
        # pipe is a normal exit, not a traceback.
        sys.stderr.close()
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Render a machine-readable repro-slo-v1 verdict file."""
    import json
    import pathlib

    from repro.errors import ConfigError
    from repro.obs import render_verdict

    path = pathlib.Path(args.verdict)
    if not path.is_file():
        print(f"error: no such verdict file: {path}", file=sys.stderr)
        return 2
    try:
        verdict = json.loads(path.read_text())
        print(render_verdict(verdict))
    except (ConfigError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0 if verdict.get("ok") else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Pretty-print a JSON metrics snapshot written by --metrics-out."""
    import json
    import pathlib

    from repro.obs import render_snapshot

    path = pathlib.Path(args.snapshot)
    if not path.is_file():
        print(f"error: no such snapshot file: {path}", file=sys.stderr)
        return 2
    try:
        snapshot = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON ({exc}); "
              "`repro metrics` reads the .json form of --metrics-out",
              file=sys.stderr)
        return 2
    try:
        print(render_snapshot(snapshot))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Run the named experiments' benchmarks via pytest."""
    import pathlib

    import pytest as pytest_module

    bench_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.is_dir():
        print(
            "error: benchmarks/ not found next to the package; "
            "`repro reproduce` needs the repository checkout",
            file=sys.stderr,
        )
        return 2
    available = sorted(
        path.name[len("bench_"):-len(".py")]
        for path in bench_dir.glob("bench_*.py")
    )
    if args.list or not args.experiments:
        print("available experiments:")
        for name in available:
            print(f"  {name}")
        return 0
    targets = []
    for experiment in args.experiments:
        matches = [name for name in available if name.startswith(experiment)]
        if not matches:
            print(f"error: no experiment matches {experiment!r}; "
                  f"try `repro reproduce --list`", file=sys.stderr)
            return 2
        targets.extend(str(bench_dir / f"bench_{name}.py") for name in matches)
    code = pytest_module.main([*dict.fromkeys(targets), "--benchmark-only", "-q"])
    results_dir = bench_dir / "results"
    if results_dir.is_dir():
        print(f"\nreports written under {results_dir}")
    return int(code)


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Expand a parameter grid and fan it out across worker processes."""
    import json
    import pathlib

    from repro.bench import (
        SweepRunner,
        default_results_dir,
        discover,
        load_grid,
        parse_grid,
    )
    from repro.errors import ConfigError

    try:
        discover()
        grid_path = pathlib.Path(args.grid)
        if grid_path.is_file():
            grid = load_grid(grid_path)
        else:
            grid = parse_grid(args.grid)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results_dir = (
        pathlib.Path(args.out) if args.out else default_results_dir()
    )
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    runner = SweepRunner(
        results_dir=results_dir,
        jobs=jobs,
        scale="smoke" if args.smoke else "full",
        base_seed=args.seed,
        repeats=args.repeats,
    )
    try:
        cells = runner.expand(grid)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    benches = sorted({cell.bench for cell in cells})
    print(f"sweep: {len(cells)} cell(s) x {args.repeats} repeat(s) over "
          f"{len(benches)} bench(es) [{', '.join(benches)}], "
          f"jobs={runner.jobs}, scale={runner.scale}")
    result = runner.run(cells, resume=args.resume, progress=print)
    print(f"done: {result.ok} ok, {result.errors} error(s), "
          f"{result.skipped} skipped (resume)")
    for path in result.paths:
        print(f"  -> {path}")
    for record in result.records:
        if record.status != "error":
            continue
        last = (record.error or "").strip().splitlines()
        print(f"  ERROR {record.bench} {record.fingerprint}: "
              f"{last[-1] if last else 'unknown'}", file=sys.stderr)
    if args.verdict_out:
        summary = {
            "schema": "repro-bench-sweep-v1",
            "scale": runner.scale,
            "cells": len(cells),
            "ok": result.ok,
            "errors": result.errors,
            "skipped": result.skipped,
            "benches": benches,
            "paths": [str(p) for p in result.paths],
        }
        with open(args.verdict_out, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    return 1 if result.errors else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Registry-driven benchmark actions: list / run / gate."""
    import json
    import pathlib

    from repro.bench import REGISTRY, discover, evaluate_gate, render_gate
    from repro.errors import ConfigError

    try:
        discover()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "list":
        for name in REGISTRY.names():
            spec = REGISTRY.get(name)
            headlines = ", ".join(sorted(spec.headline)) or "-"
            print(f"{name:28s} [{headlines}]")
            if args.verbose:
                params = ", ".join(
                    f"{p.name}={p.default!r}" for p in spec.params.values()
                )
                print(f"    params: {params or '-'}")
                if spec.description:
                    print(f"    {spec.description}")
        return 0

    if args.action == "run":
        from repro.bench.shim import main as shim_main

        argv = []
        if args.smoke:
            argv.append("--smoke")
        for assignment in args.set or []:
            argv += ["--set", assignment]
        if args.record:
            argv += ["--record", args.record]
        argv += ["--seed", str(args.seed)]
        return shim_main(args.name, argv)

    # gate
    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current) if args.current else baseline_dir
    if not baseline_dir.is_dir():
        print(f"error: no such baseline directory: {baseline_dir}",
              file=sys.stderr)
        return 2
    try:
        verdict = evaluate_gate(
            baseline_dir, current_dir,
            scale=args.scale, benches=args.bench or None,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_gate(verdict))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(verdict, handle, indent=2)
            handle.write("\n")
        print(f"verdict -> {args.out}")
    return 0 if verdict["ok"] else 1


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE.json", default=None,
        help="write a Chrome trace_event timeline (open in Perfetto or "
             "chrome://tracing); enables span tracing for the run",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write a metrics export: .json -> snapshot readable by "
             "`repro metrics`, anything else -> Prometheus text format",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OpenEmbedding reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one simulated training epoch")
    simulate.add_argument(
        "--system",
        choices=[s.value for s in SystemKind],
        default=SystemKind.PMEM_OE.value,
    )
    simulate.add_argument("--workers", type=int, default=16)
    simulate.add_argument("--iterations", type=int, default=None)
    simulate.add_argument("--cache-mb", type=float, default=2048.0,
                          help="paper-equivalent cache size (MB of a 500 GB model)")
    simulate.add_argument("--skew", type=float, default=1.0)
    simulate.add_argument(
        "--checkpoint",
        choices=["none", "batch_aware", "incremental", "sparse_only"],
        default="none",
    )
    simulate.add_argument("--interval-seconds", type=float, default=1.0)
    simulate.add_argument("--lookahead", type=int, default=0,
                          help="prefetch the next N batches' keys inside the "
                               "overlap window (PMem-OE only; 0 disables)")
    simulate.add_argument("--nodes", type=int, default=1,
                          help="PS node count the run starts with")
    simulate.add_argument("--partitioner", choices=["modulo", "ring"],
                          default="modulo",
                          help="key -> PS node placement: static modulo hash "
                               "or consistent-hash ring (elastic)")
    simulate.add_argument("--ring-vnodes", type=int, default=64,
                          help="virtual nodes per PS node on the ring")
    simulate.add_argument("--reshard-at", type=int, default=None,
                          help="live-reshard the PS after this many "
                               "iterations; prices the migration pause and "
                               "continues on the new node count")
    simulate.add_argument("--reshard-to", type=int, default=None,
                          help="target PS node count for --reshard-at "
                               "(default: one more node)")
    simulate.add_argument("--mttf", type=float, default=None,
                          help="mean time to failure in simulated seconds; "
                               "samples a Poisson kill schedule and prices "
                               "each node death (failover or recovery)")
    simulate.add_argument("--replicas", type=int, default=1,
                          help="replicas per shard: 2 answers kills with "
                               "hot failover, 1 with checkpoint recovery")
    simulate.add_argument("--lease-ms", type=float, default=500.0,
                          help="failure-detector lease in milliseconds "
                               "(bounds detection latency)")
    _add_obs_flags(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    train = sub.add_parser("train", help="functional DeepFM training demo")
    train.add_argument("--mode", choices=["sync", "async"], default="sync",
                       help="sync: lock-step workers with barrier "
                            "checkpoints; async: bounded-staleness "
                            "round-robin workers (see docs/ASYNC.md)")
    train.add_argument("--staleness", type=int, default=1,
                       help="async: scheduler steps between computing and "
                            "applying a gradient (worker-side delay)")
    train.add_argument("--staleness-k", type=int, default=None,
                       metavar="K",
                       help="async: PS-side admission bound; pulls lagging "
                            "more than K batches behind the slowest "
                            "admitted worker are rejected with a typed "
                            "StalenessError (default: no bound)")
    train.add_argument("--aggregator",
                       choices=["none", "mean", "trimmed_mean", "median",
                                "krum"],
                       default="none",
                       help="async: robust per-key gradient fold buffered "
                            "at the PS before apply (default: none, "
                            "apply-as-they-arrive)")
    train.add_argument("--hostile", type=float, default=0.0,
                       metavar="FRACTION",
                       help="async: turn this fraction of workers "
                            "Byzantine (seeded sign-flip/noise gradients "
                            "plus duplicated and delayed pushes)")
    train.add_argument("--byzantine-mode",
                       choices=["sign_flip", "scaled_noise", "zero_drop"],
                       default="sign_flip",
                       help="async: gradient corruption the hostile "
                            "workers inject")
    train.add_argument("--byzantine-scale", type=float, default=6.0,
                       help="async: amplification of the corrupted "
                            "gradients")
    train.add_argument("--batches", type=int, default=100)
    train.add_argument("--workers", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--fields", type=int, default=8)
    train.add_argument("--vocab", type=int, default=400)
    train.add_argument("--dim", type=int, default=16)
    train.add_argument("--nodes", type=int, default=2)
    train.add_argument("--cache-kb", type=int, default=64)
    train.add_argument("--checkpoint-every", type=int, default=20)
    train.add_argument("--crash-at", type=int, default=None,
                       help="inject a crash after this batch and recover")
    train.add_argument("--lookahead", type=int, default=0,
                       help="route pulls through the lookahead prefetch "
                            "pipeline (0 keeps the serial protocol)")
    train.add_argument("--seed", type=int, default=7)
    _add_obs_flags(train)
    train.set_defaults(handler=_cmd_train)

    plan = sub.add_parser("plan", help="deployment sizing and reliability planning")
    plan.add_argument("--model-gb", type=float, default=500.0)
    plan.add_argument("--dim", type=int, default=64)
    plan.add_argument("--epoch-hours", type=float, default=5.33)
    plan.add_argument("--mttf-hours", type=float, default=12.0)
    plan.add_argument("--ckpt-cost-s", type=float, default=15.0)
    plan.set_defaults(handler=_cmd_plan)

    workload = sub.add_parser("workload", help="access-skew statistics (Table II)")
    workload.add_argument("--keys", type=int, default=500_000)
    workload.add_argument("--features", type=int, default=4)
    workload.add_argument("--skew", type=float, default=1.0)
    workload.add_argument("--batches", type=int, default=100)
    workload.add_argument("--batch-size", type=int, default=256)
    workload.add_argument("--seed", type=int, default=1)
    workload.set_defaults(handler=_cmd_workload)

    faults = sub.add_parser(
        "faults", help="RPC fault-injection demo: lossy wire, identical weights"
    )
    faults.add_argument("--batches", type=int, default=20)
    faults.add_argument("--keys", type=int, default=500,
                        help="distinct embedding ids in the demo workload")
    faults.add_argument("--batch-keys", type=int, default=8)
    faults.add_argument("--dim", type=int, default=8)
    faults.add_argument("--nodes", type=int, default=2)
    faults.add_argument("--cache-kb", type=int, default=64)
    faults.add_argument("--drop", type=float, default=0.05,
                        help="message drop probability")
    faults.add_argument("--duplicate", type=float, default=0.03,
                        help="message duplication probability")
    faults.add_argument("--corrupt", type=float, default=0.02,
                        help="byte-flip probability (CRC-detected)")
    faults.add_argument("--delay", type=float, default=0.05,
                        help="extra-delay probability")
    faults.add_argument("--delay-mean-ms", type=float, default=5.0)
    faults.add_argument("--max-attempts", type=int, default=10)
    faults.add_argument("--attempt-timeout-ms", type=float, default=50.0)
    faults.add_argument("--call-timeout-s", type=float, default=5.0)
    faults.add_argument("--seed", type=int, default=7)
    faults.add_argument("--mttf", type=float, default=None,
                        help="mean time to failure in seconds; prints the "
                             "Young-optimal checkpoint interval and the "
                             "expected lost work per failure")
    faults.add_argument("--checkpoint-cost", type=float, default=1.0,
                        help="cost of one checkpoint in seconds (C in "
                             "Young's sqrt(2*C*MTTF); used with --mttf)")
    faults.set_defaults(handler=_cmd_faults)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="online serving tier: closed-loop QPS / tail latency "
             "(optionally train-while-serve chaos with --kill-at)",
    )
    serve_bench.add_argument("--requests", type=int, default=400,
                             help="measured closed-loop requests")
    serve_bench.add_argument("--warm", type=int, default=100,
                             help="cache warm-up requests before measuring")
    serve_bench.add_argument("--batch-keys", type=int, default=64,
                             help="embedding rows per request")
    serve_bench.add_argument("--keys", type=int, default=20_000,
                             help="key-space size (Table II banded skew)")
    serve_bench.add_argument("--cache-rows", type=int, default=512,
                             help="hot-row cache capacity (0 disables)")
    serve_bench.add_argument("--staleness-k", type=int, default=1,
                             help="max checkpoints a served row may lag")
    serve_bench.add_argument("--policy",
                             choices=["primary", "round_robin", "least_loaded"],
                             default="round_robin",
                             help="replica fan-out policy for shard reads")
    serve_bench.add_argument("--nodes", type=int, default=3)
    serve_bench.add_argument("--replicas", type=int, default=2,
                             help="replicas per shard (2 enables failover)")
    serve_bench.add_argument("--dim", type=int, default=8)
    serve_bench.add_argument("--cache-kb", type=int, default=64,
                             help="training-side PS cache size")
    serve_bench.add_argument("--pretrain-batches", type=int, default=6,
                             help="training batches before the first "
                                  "checkpoint pin")
    serve_bench.add_argument("--kill-at", type=int, default=None,
                             help="kill a serving primary after this many "
                                  "measured requests (train-while-serve "
                                  "chaos; audits consistency)")
    serve_bench.add_argument("--chaos", action="store_true",
                             help="SLO-gated chaos run: kill a primary "
                                  "mid-run (at --kill-at, default the "
                                  "midpoint) and fail on error-budget "
                                  "exhaustion as well as torn/stale rows")
    serve_bench.add_argument("--slo-p99-ms", type=float, default=50.0,
                             help="latency SLO threshold for --chaos "
                                  "(milliseconds)")
    serve_bench.add_argument("--slo-budget", type=float, default=0.02,
                             help="latency error budget for --chaos "
                                  "(fraction of requests allowed over "
                                  "the threshold)")
    serve_bench.add_argument("--slo-out", metavar="FILE.json", default=None,
                             help="write the machine-readable SLO verdict "
                                  "(render with `repro slo`)")
    serve_bench.add_argument("--seed", type=int, default=11)
    serve_bench.set_defaults(handler=_cmd_serve_bench)

    metrics = sub.add_parser(
        "metrics", help="pretty-print a JSON metrics snapshot (--metrics-out)"
    )
    metrics.add_argument("snapshot", help="snapshot file written by --metrics-out")
    metrics.set_defaults(handler=_cmd_metrics)

    trace = sub.add_parser(
        "trace", help="merge / summarize Chrome trace_event files"
    )
    trace_sub = trace.add_subparsers(dest="action", required=True)
    trace_merge = trace_sub.add_parser(
        "merge",
        help="stitch per-node --trace-out files into one flow-linked timeline",
    )
    trace_merge.add_argument("files", nargs="+",
                             help="per-node trace files (client first reads best)")
    trace_merge.add_argument("-o", "--out", required=True, metavar="FILE.json",
                             help="merged trace output (open in Perfetto)")
    trace_merge.set_defaults(handler=_cmd_trace)
    trace_show = trace_sub.add_parser(
        "show", help="terminal summary of a (merged or single-node) trace"
    )
    trace_show.add_argument("file", help="trace file to summarize")
    trace_show.set_defaults(handler=_cmd_trace)

    slo = sub.add_parser(
        "slo", help="render a machine-readable SLO verdict (repro-slo-v1)"
    )
    slo.add_argument("verdict",
                     help="verdict file from serve-bench --slo-out or "
                          "benchmarks/results/slo_serving.json")
    slo.set_defaults(handler=_cmd_slo)

    reproduce = sub.add_parser(
        "reproduce", help="re-run paper experiments (tables/figures/ablations)"
    )
    reproduce.add_argument(
        "experiments", nargs="*",
        help="experiment name prefixes, e.g. fig7 table2 ablation",
    )
    reproduce.add_argument("--list", action="store_true", help="list experiments")
    reproduce.set_defaults(handler=_cmd_reproduce)

    sweep = sub.add_parser(
        "sweep",
        help="expand a parameter grid over registered benchmarks and fan "
             "it out across worker processes (repro-bench-v1 trajectories)",
    )
    sweep.add_argument(
        "--grid", required=True, metavar="SPEC|FILE.json",
        help="inline grid like 'bench=prefetch,hotpath; "
             "lookahead[bench=prefetch]=0,2,4' or a JSON grid file",
    )
    scale_group = sweep.add_mutually_exclusive_group()
    scale_group.add_argument("--smoke", action="store_true",
                             help="run every cell at smoke scale (default)")
    scale_group.add_argument("--full", dest="smoke", action="store_false",
                             help="run every cell at full scale")
    sweep.set_defaults(smoke=True)
    sweep.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = one per available core)")
    sweep.add_argument("--out", metavar="DIR", default=None,
                       help="trajectory directory "
                            "(default benchmarks/results)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed; per-cell seeds are derived from it")
    sweep.add_argument("--repeats", type=int, default=1,
                       help="repeats per cell (gate takes the best)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip cells already recorded at this scale")
    sweep.add_argument("--verdict-out", metavar="FILE.json", default=None,
                       help="write a machine-readable sweep summary")
    sweep.set_defaults(handler=_cmd_sweep)

    bench = sub.add_parser(
        "bench", help="registry-driven benchmarks: list / run / gate"
    )
    bench_sub = bench.add_subparsers(dest="action", required=True)
    bench_list = bench_sub.add_parser(
        "list", help="list registered benchmarks and their gated metrics"
    )
    bench_list.add_argument("-v", "--verbose", action="store_true",
                            help="also show parameters and descriptions")
    bench_list.set_defaults(handler=_cmd_bench)
    bench_run = bench_sub.add_parser(
        "run", help="run one registered benchmark through the registry"
    )
    bench_run.add_argument("name", help="benchmark name (see `bench list`)")
    bench_run.add_argument("--smoke", action="store_true",
                           help="run at smoke scale")
    bench_run.add_argument("--set", action="append", default=[],
                           metavar="KEY=VALUE",
                           help="override one parameter (repeatable)")
    bench_run.add_argument("--record", metavar="DIR", default=None,
                           help="append the record to DIR/BENCH_<name>.json")
    bench_run.add_argument("--seed", type=int, default=0)
    bench_run.set_defaults(handler=_cmd_bench)
    bench_gate = bench_sub.add_parser(
        "gate",
        help="compare current trajectories against committed baselines; "
             "exit 1 on any headline regression",
    )
    bench_gate.add_argument("--baseline", metavar="DIR",
                            default="benchmarks/results",
                            help="committed baseline trajectory directory")
    bench_gate.add_argument("--current", metavar="DIR", default=None,
                            help="freshly-swept trajectory directory "
                                 "(default: same as --baseline, i.e. "
                                 "self-consistency)")
    bench_gate.add_argument("--scale", choices=["smoke", "full"],
                            default="smoke",
                            help="which scale's runs to compare")
    bench_gate.add_argument("--bench", action="append", default=[],
                            metavar="NAME",
                            help="gate only these benchmarks (repeatable)")
    bench_gate.add_argument("--out", metavar="FILE.json", default=None,
                            help="write the repro-bench-gate-v1 verdict")
    bench_gate.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
