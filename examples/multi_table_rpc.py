"""Multi-table DLRM over the RPC frontend.

Shows two production-shaped pieces working together:

* an :class:`EmbeddingCollection` with two tables of different
  dimensions (dim-16 feature vectors + dim-1 first-order weights, the
  DeepFM layout) with a coordinated cross-table checkpoint and a full
  crash/recovery roundtrip;
* a :class:`RemotePSClient` exercising the same PS protocol over real
  encoded wire messages, reporting the bytes a deployment would move.

Run:  python examples/multi_table_rpc.py
"""

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.dlrm.collection import EmbeddingCollection, TableSpec
from repro.network.frontend import RemotePSClient

BATCH, FIELDS = 16, 6


def demo_collection() -> None:
    print("== multi-table collection: coordinated checkpoints ==")
    cache = CacheConfig(capacity_bytes=64 << 10)
    specs = {
        "features": TableSpec(
            dim=16, num_nodes=2, cache=cache,
            optimizer=PSAdagrad(lr=0.05), pmem_capacity_bytes=1 << 26, seed=3,
        ),
        "first_order": TableSpec(
            dim=1, num_nodes=1, cache=cache, pmem_capacity_bytes=1 << 24, seed=3
        ),
    }
    collection = EmbeddingCollection(specs)
    rng = np.random.default_rng(0)
    for batch_id in range(8):
        keys = rng.integers(0, 2000, size=(BATCH, FIELDS))
        features = collection.pull("features", keys, batch_id)
        first = collection.pull("first_order", keys, batch_id)
        collection.maintain(batch_id)
        collection.push("features", keys, 0.05 * features, batch_id)
        collection.push("first_order", keys, 0.05 * first, batch_id)
    collection.barrier_checkpoint(7)
    print(f"  tables: {collection.table_names()}, "
          f"collection checkpoint at batch {collection.global_completed_checkpoint}")

    expected = collection.state_snapshot()
    pools = collection.crash()
    recovered = EmbeddingCollection.recover(pools, specs)
    got = recovered.state_snapshot()
    exact = all(
        np.array_equal(got[table][key], weights)
        for table, entries in expected.items()
        for key, weights in entries.items()
    )
    print(f"  crash + recover: {sum(len(v) for v in got.values())} entries "
          f"across tables restored exactly: {exact}")
    assert exact


def demo_rpc() -> None:
    print("== RPC frontend: the PS protocol over wire messages ==")
    client = RemotePSClient(
        ServerConfig(num_nodes=2, embedding_dim=16, pmem_capacity_bytes=1 << 26),
        CacheConfig(capacity_bytes=64 << 10),
    )
    rng = np.random.default_rng(1)
    for batch_id in range(5):
        keys = rng.integers(0, 5000, size=BATCH * FIELDS).tolist()
        pulled = client.pull(keys, batch_id)
        client.maintain(batch_id)
        client.push(keys, 0.01 * pulled.weights, batch_id)
    client.request_checkpoint()
    client.complete_pending_checkpoints()
    per_call = client.wire_bytes() / sum(c.stats.calls for c in client.channels)
    print(f"  {sum(c.stats.calls for c in client.channels)} RPCs, "
          f"{client.wire_bytes()} wire bytes ({per_call:.0f} B/call), "
          f"simulated wire time {client.clock.now * 1e3:.2f} ms")
    print(f"  entries on server: {client.num_entries}")


if __name__ == "__main__":
    demo_collection()
    demo_rpc()
