"""Evaluation metrics for CTR models.

The CTR literature (including DeepFM, the paper's training algorithm)
reports AUC and log-loss; these are dependency-free numpy
implementations with exact tie handling, used by the examples and the
evaluation helpers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) formula.

    Ties in ``scores`` receive average ranks, matching the standard
    definition. Requires at least one positive and one negative label.
    """
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ConfigError(f"shape mismatch {labels.shape} vs {scores.shape}")
    positives = labels > 0.5
    num_pos = int(positives.sum())
    num_neg = len(labels) - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ConfigError("AUC needs both positive and negative labels")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over tie groups.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[positives].sum()
    return float((rank_sum - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg))


def log_loss(labels: np.ndarray, probabilities: np.ndarray, eps: float = 1e-7) -> float:
    """Mean binary cross-entropy of predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    probs = np.clip(np.asarray(probabilities, dtype=np.float64).reshape(-1), eps, 1 - eps)
    if labels.shape != probs.shape:
        raise ConfigError(f"shape mismatch {labels.shape} vs {probs.shape}")
    return float(-(labels * np.log(probs) + (1 - labels) * np.log(1 - probs)).mean())


def calibration_ratio(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean predicted probability over the observed positive rate.

    1.0 means perfectly calibrated on average; CTR systems watch this
    because miscalibration directly skews auction bids.
    """
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    probs = np.asarray(probabilities, dtype=np.float64).reshape(-1)
    if labels.shape != probs.shape:
        raise ConfigError(f"shape mismatch {labels.shape} vs {probs.shape}")
    observed = labels.mean()
    if observed == 0:
        raise ConfigError("calibration undefined with no positive labels")
    return float(probs.mean() / observed)


def evaluate_model(model, embedding, dataset, *, batches: int, batch_size: int,
                   start_batch: int = 1_000_000) -> dict[str, float]:
    """Evaluate a trained model on held-out batches.

    Pulls embeddings read-only (inference also goes through the PS, as
    in production serving), scores ``batches`` dataset batches starting
    at ``start_batch`` (far past any training id, so the data is
    held-out by construction), and returns auc / logloss / calibration.
    """
    if batches <= 0 or batch_size <= 0:
        raise ConfigError("batches and batch_size must be positive")
    all_labels = []
    all_probs = []
    for i in range(batches):
        batch = dataset.batch(batch_size, start_batch + i)
        embeddings = embedding.pull(batch.keys, start_batch + i)
        embedding.server.maintain(start_batch + i)
        if getattr(model, "uses_dense_features", False):
            probs = model.predict_proba(embeddings, batch.dense)
        else:
            probs = model.predict_proba(embeddings)
        all_labels.append(batch.labels)
        all_probs.append(probs)
    labels = np.concatenate(all_labels)
    probs = np.concatenate(all_probs)
    return {
        "auc": roc_auc(labels, probs),
        "logloss": log_loss(labels, probs),
        "calibration": calibration_ratio(labels, probs),
    }
