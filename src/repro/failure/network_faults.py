"""Seeded network fault injection: the link as a failure domain.

The crash model in :mod:`repro.failure.injection` kills *processes*;
this module breaks *messages*. A :class:`FaultyLink` wraps the
:class:`~repro.simulation.network.NetworkModel` that an
:class:`~repro.network.rpc.RpcChannel` moves frames over and injects
four fault classes per direction, each an independent seeded coin per
message:

* **drop** — the frame never arrives (client waits out its attempt
  timeout, then retries);
* **duplicate** — the frame arrives twice (exercises the server's
  at-most-once push dedup);
* **corrupt** — one byte is flipped in flight (the frame CRC makes
  this always detectable, so it degrades to a retryable error);
* **delay** — an exponential extra in-flight latency (may push the
  reply past the client's patience, turning a *delivered* exchange
  into a retry — the classic duplicate-generation path).

The entire fault schedule is a deterministic function of
:class:`~repro.config.NetworkFaultConfig.seed`: the RNG draws the same
decisions in the same order every run, so a failing retry trace is
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import NetworkFaultConfig
from repro.simulation.network import Delivery, NetworkModel

_FAULT_SEED_SALT = 0xFA33


@dataclass
class LinkFaultStats:
    """Counts of injected faults, total and per direction."""

    drops: int = 0
    duplicates: int = 0
    corruptions: int = 0
    delays: int = 0
    delay_seconds: float = 0.0
    by_direction: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.drops + self.duplicates + self.corruptions + self.delays

    def _record(self, direction: str, kind: str) -> None:
        per_dir = self.by_direction.setdefault(direction, {})
        per_dir[kind] = per_dir.get(kind, 0) + 1

    def summary(self) -> dict[str, int]:
        """Flat counter view (for reports and CLI output)."""
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "corruptions": self.corruptions,
            "delays": self.delays,
        }


class FaultyLink:
    """A :class:`NetworkModel` wrapper that injects seeded faults.

    Implements the link API :class:`~repro.network.rpc.RpcChannel`
    speaks (``transfer(frame, direction, concurrent_flows) ->
    Delivery``). Fault decisions consume the RNG in a fixed order for
    every message — drop, duplicate, corrupt, delay magnitude, flip
    position — regardless of which faults actually fire, so the
    schedule for message *n* never depends on the outcome of message
    *n-1*'s coin flips.

    A dropped frame still charges its bytes to the underlying
    :class:`NetworkModel` (the sender transmitted; the receiver just
    never saw it), which is what keeps wire-byte accounting honest on
    failure paths.
    """

    def __init__(self, network: NetworkModel, config: NetworkFaultConfig):
        self.network = network
        self.config = config
        self.stats = LinkFaultStats()
        self._rng = np.random.default_rng((config.seed, _FAULT_SEED_SALT))

    def transfer(
        self, frame: bytes, direction: str, concurrent_flows: int = 1
    ) -> Delivery:
        """Move one frame, possibly injecting faults for ``direction``."""
        cfg = self.config
        # Fixed draw order per message keeps the schedule seed-stable.
        drop_coin = self._rng.random()
        dup_coin = self._rng.random()
        corrupt_coin = self._rng.random()
        delay_coin = self._rng.random()
        delay_extra = float(self._rng.exponential(cfg.delay_mean_s or 1.0))
        flip_pos = int(self._rng.integers(0, max(1, len(frame))))

        elapsed = self.network.transfer_time(len(frame), concurrent_flows)
        active = (direction == "request" and cfg.on_request) or (
            direction == "response" and cfg.on_response
        )
        if not active:
            return Delivery(copies=(frame,), elapsed=elapsed)

        if drop_coin < cfg.drop_rate:
            self.stats.drops += 1
            self.stats._record(direction, "drop")
            return Delivery(copies=(), elapsed=elapsed)

        payload = frame
        if corrupt_coin < cfg.corrupt_rate:
            damaged = bytearray(frame)
            damaged[flip_pos] ^= 0xFF
            payload = bytes(damaged)
            self.stats.corruptions += 1
            self.stats._record(direction, "corrupt")

        copies = [payload]
        if dup_coin < cfg.duplicate_rate:
            copies.append(payload)
            elapsed += self.network.transfer_time(len(frame), concurrent_flows)
            self.stats.duplicates += 1
            self.stats._record(direction, "duplicate")

        if delay_coin < cfg.delay_rate and cfg.delay_mean_s > 0:
            elapsed += delay_extra
            self.stats.delays += 1
            self.stats.delay_seconds += delay_extra
            self.stats._record(direction, "delay")

        return Delivery(copies=tuple(copies), elapsed=elapsed)
