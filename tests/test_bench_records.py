"""repro-bench-v1 run records and on-disk trajectories."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    RunRecord,
    Trajectory,
    cell_fingerprint,
    derive_seed,
    environment_info,
    validate_trajectory,
)
from repro.errors import ConfigError


class TestFingerprint:
    def test_stable_and_param_order_insensitive(self):
        first = cell_fingerprint("prefetch", {"a": 1, "b": 2})
        second = cell_fingerprint("prefetch", {"b": 2, "a": 1})
        assert first == second
        assert len(first) == 12
        assert int(first, 16) >= 0  # hex

    def test_distinguishes_bench_and_params(self):
        base = cell_fingerprint("prefetch", {"a": 1})
        assert cell_fingerprint("hotpath", {"a": 1}) != base
        assert cell_fingerprint("prefetch", {"a": 2}) != base


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "b", {"x": 1}, 0) == derive_seed(0, "b", {"x": 1}, 0)

    def test_sensitive_to_every_component(self):
        base = derive_seed(0, "b", {"x": 1}, 0)
        assert derive_seed(1, "b", {"x": 1}, 0) != base
        assert derive_seed(0, "c", {"x": 1}, 0) != base
        assert derive_seed(0, "b", {"x": 2}, 0) != base
        assert derive_seed(0, "b", {"x": 1}, 1) != base

    def test_param_order_insensitive(self):
        assert derive_seed(0, "b", {"a": 1, "z": 2}) == derive_seed(
            0, "b", {"z": 2, "a": 1}
        )


class TestRunRecord:
    def test_autofills_fingerprint_and_created(self):
        record = RunRecord("b", {"x": 1}, seed=7, metrics={"m": 1.0})
        assert record.fingerprint == cell_fingerprint("b", {"x": 1})
        assert record.created

    def test_rejects_bad_status_and_scale(self):
        with pytest.raises(ConfigError):
            RunRecord("b", {}, seed=0, status="flaky")
        with pytest.raises(ConfigError):
            RunRecord("b", {}, seed=0, scale="huge")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            RunRecord.from_dict({"bench": "b", "params": {}, "seed": 0, "bogus": 1})

    def test_from_dict_rejects_missing_identity(self):
        with pytest.raises(ConfigError):
            RunRecord.from_dict({"seed": 0})

    def test_roundtrip(self):
        record = RunRecord("b", {"x": 1}, seed=7, metrics={"m": 1.0}, env={"git": "x"})
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record


def _record(bench="b", params=None, repeat=0, scale="smoke", status="ok", **kw):
    kw.setdefault("metrics", {"m": 1.0} if status == "ok" else {})
    if status == "error":
        kw.setdefault("error", "boom")
    return RunRecord(
        bench, dict(params or {"x": 1}), seed=derive_seed(0, bench, params or {"x": 1}, repeat),
        repeat=repeat, scale=scale, status=status, **kw,
    )


class TestTrajectory:
    def test_replace_semantics_newest_wins(self):
        trajectory = Trajectory("b")
        trajectory.append(_record(metrics={"m": 1.0}))
        trajectory.append(_record(metrics={"m": 2.0}))
        assert len(trajectory.runs) == 1
        assert trajectory.runs[0].metrics["m"] == 2.0

    def test_replace_key_is_fingerprint_repeat_scale(self):
        trajectory = Trajectory("b")
        trajectory.append(_record(repeat=0))
        trajectory.append(_record(repeat=1))
        trajectory.append(_record(scale="full"))
        trajectory.append(_record(params={"x": 2}))
        assert len(trajectory.runs) == 4

    def test_keep_history_retains_duplicates(self):
        trajectory = Trajectory("b")
        trajectory.append(_record())
        trajectory.append(_record(), keep_history=True)
        assert len(trajectory.runs) == 2

    def test_rejects_foreign_bench(self):
        with pytest.raises(ConfigError):
            Trajectory("b").append(_record(bench="other"))

    def test_save_load_roundtrip(self, tmp_path):
        trajectory = Trajectory("b")
        trajectory.append(_record(env=environment_info()))
        path = trajectory.save(tmp_path)
        assert path.name == "BENCH_b.json"
        loaded = Trajectory.load(path)
        assert loaded.bench == "b"
        assert loaded.runs == trajectory.runs
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA

    def test_load_or_create_on_empty_dir(self, tmp_path):
        trajectory = Trajectory.load_or_create(tmp_path, "fresh")
        assert trajectory.bench == "fresh" and trajectory.runs == []

    def test_load_rejects_old_adhoc_format(self, tmp_path):
        path = tmp_path / "BENCH_b.json"
        path.write_text(json.dumps({"results": [1, 2, 3]}))
        with pytest.raises(ConfigError):
            Trajectory.load(path)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_b.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            Trajectory.load(path)

    def test_completed_keys_only_ok_at_scale(self):
        trajectory = Trajectory("b")
        ok = _record()
        err = _record(params={"x": 9}, status="error")
        full = _record(params={"x": 5}, scale="full")
        for record in (ok, err, full):
            trajectory.append(record)
        assert trajectory.completed_keys("smoke") == {(ok.fingerprint, 0)}
        assert trajectory.completed_keys("full") == {(full.fingerprint, 0)}

    def test_latest_ok_filters_metric(self):
        trajectory = Trajectory("b")
        trajectory.append(_record(metrics={"m": 1.0}))
        trajectory.append(_record(params={"x": 2}, metrics={"other": 3.0}))
        found = trajectory.latest_ok(metric="m")
        assert found is not None and found.metrics == {"m": 1.0}
        assert trajectory.latest_ok(metric="absent") is None


class TestValidateTrajectory:
    def _payload(self, **overrides):
        run = _record().to_dict()
        payload = {"schema": BENCH_SCHEMA, "bench": "b", "runs": [run]}
        payload.update(overrides)
        return payload

    def test_accepts_good_payload(self):
        assert validate_trajectory(self._payload()) == []

    def test_rejects_non_object(self):
        assert validate_trajectory([1, 2]) != []

    def test_rejects_wrong_schema(self):
        errors = validate_trajectory(self._payload(schema="bench-v0"))
        assert any("schema" in e for e in errors)

    def test_rejects_bench_mismatch(self):
        errors = validate_trajectory(self._payload(bench="other"))
        assert any("bench" in e for e in errors)

    def test_rejects_non_numeric_metric(self):
        payload = self._payload()
        payload["runs"][0]["metrics"]["bad"] = "text"
        assert any("numeric" in e for e in validate_trajectory(payload))

    def test_rejects_ok_run_without_metrics(self):
        payload = self._payload()
        payload["runs"][0]["metrics"] = {}
        assert any("no metrics" in e for e in validate_trajectory(payload))

    def test_rejects_error_run_without_message(self):
        payload = self._payload()
        payload["runs"][0].update(status="error", error=None)
        assert any("error" in e for e in validate_trajectory(payload))
