"""Per-phase PS service-time model for the training simulator.

One :class:`PSCostModel` prices the parameter-server side of a
synchronous training iteration for each system of Table III. All
inputs are *per-iteration aggregate op counts* produced by the
functional backend (hits, misses, flushes, ...); all outputs are
simulated seconds.

The phase structure of an iteration (Figure 2 / Figure 5):

1. **pull burst** — all workers request their batch's keys at once:
   network transfer + PS service (hash probes, DRAM/PMem reads, and for
   inline-maintained systems the serialized cache-maintenance sections).
2. **GPU compute** — dense model forward/backward; for OpenEmbedding
   the deferred cache maintenance runs in this window.
3. **push burst** — gradients return: network + optimizer application
   (+ inline maintenance again for Ori-Cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import ClusterConfig, ServerConfig
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simulation.contention import parallel_section_time, serialized_section_time
from repro.simulation.device import DRAM_SPEC, MemoryDevice, PMEM_SPEC
from repro.simulation.network import NetworkModel


class SystemKind(enum.Enum):
    """The parameter-server systems compared in the evaluation."""

    DRAM_PS = "dram_ps"
    PMEM_OE = "pmem_oe"
    ORI_CACHE = "ori_cache"
    PMEM_HASH = "pmem_hash"
    TF_PS = "tf_ps"


@dataclass(frozen=True)
class IterationCounts:
    """Aggregate functional op counts of one synchronous iteration."""

    requests: int  # total pull requests across all workers
    hits: int
    misses: int
    created: int
    maintain_processed: int
    maintain_loads: int
    maintain_flushes: int
    maintain_evictions: int


@dataclass(frozen=True)
class IterationTiming:
    """Per-phase simulated seconds of one iteration."""

    net_pull: float
    pull_service: float
    gpu: float
    maintain_deferred: float  # runs concurrently with gpu when pipelined
    maintain_inline: float  # charged on the critical path
    net_push: float
    push_service: float
    total: float


class PSCostModel:
    """Prices PS phases for one deployment shape.

    Args:
        system: which Table III system's cost structure to use.
        cluster: worker count / batch / threads / network.
        server: embedding dim and PS node count.
        calibration: cost constants.
        pipelined: charge maintenance overlapped with GPU compute
            (OpenEmbedding's pipeline) or on the critical path.
        use_cache: False models the cache-disabled ablation of Figure 9
            — every access goes to PMem directly.
    """

    def __init__(
        self,
        system: SystemKind,
        cluster: ClusterConfig,
        server: ServerConfig,
        calibration: Calibration = DEFAULT_CALIBRATION,
        *,
        pipelined: bool = True,
        use_cache: bool = True,
        maintainer_threads: int = 4,
    ):
        self.system = system
        self.cluster = cluster
        self.server = server
        self.cal = calibration
        self.pipelined = pipelined
        self.use_cache = use_cache
        self.maintainer_threads = maintainer_threads
        self.dram = MemoryDevice(DRAM_SPEC)
        self.pmem = MemoryDevice(PMEM_SPEC)
        self.network = NetworkModel(cluster.network)
        self.entry_bytes = server.entry_bytes

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------

    def price_iteration(self, counts: IterationCounts) -> IterationTiming:
        """Simulated time of one iteration given its op counts."""
        workers = self.cluster.num_workers
        nodes = self.server.num_nodes
        per_worker_keys = max(1, counts.requests // max(1, workers))
        payload = per_worker_keys * (self.entry_bytes + 8)
        net_pull = self.network.burst_transfer_time(workers, payload)
        net_push = self.network.burst_transfer_time(workers, payload)

        r = -(-counts.requests // nodes)  # per-node requests (ceil)
        pull_service, maintain_deferred, maintain_inline, push_service = (
            self._service_times(r, counts)
        )
        gpu = self.cluster.gpu_batch_time_s
        if self.pipelined:
            middle = max(gpu, maintain_deferred)
            inline = maintain_inline
        else:
            middle = gpu
            inline = maintain_inline + maintain_deferred
        total = net_pull + pull_service + middle + inline + net_push + push_service
        return IterationTiming(
            net_pull=net_pull,
            pull_service=pull_service,
            gpu=gpu,
            maintain_deferred=maintain_deferred if self.pipelined else 0.0,
            maintain_inline=inline,
            net_push=net_push,
            push_service=push_service,
            total=total,
        )

    # ------------------------------------------------------------------
    # per-system phase pricing
    # ------------------------------------------------------------------

    def _service_times(
        self, r: int, counts: IterationCounts
    ) -> tuple[float, float, float, float]:
        """Returns (pull_service, maintain_deferred, maintain_inline,
        push_service) for one PS node's share of the burst."""
        nodes = self.server.num_nodes
        threads = self.cluster.ps_threads_per_node
        workers = self.cluster.num_workers
        eb = self.entry_bytes
        cal = self.cal
        hits = -(-counts.hits // nodes)
        misses = -(-counts.misses // nodes)
        created = -(-counts.created // nodes)
        loads = -(-counts.maintain_loads // nodes)
        flushes = -(-counts.maintain_flushes // nodes)
        processed = -(-counts.maintain_processed // nodes)

        hash_probe = parallel_section_time(r, cal.hash_lookup_s, threads)
        create = serialized_section_time(
            created,
            cal.entry_create_s,
            contenders=workers,
            contention_factor=cal.lock_contention_factor,
        )
        apply_updates = parallel_section_time(r, cal.update_apply_s, threads)

        if self.system == SystemKind.DRAM_PS:
            pull = hash_probe + create + self.dram.burst_read(r, eb, threads)
            push = apply_updates + self.dram.burst_write(r, eb, threads)
            return pull, 0.0, 0.0, push

        if self.system == SystemKind.TF_PS:
            # Single-process PS: a heavier per-entry path plus a
            # serialized session/graph section contended by all workers.
            tf_section = serialized_section_time(
                r,
                cal.tf_ps_entry_s + eb * cal.tf_ps_per_byte_s,
                contenders=workers,
                contention_factor=cal.lock_contention_factor,
            )
            pull = hash_probe + create + tf_section + self.dram.burst_read(r, eb, threads)
            push = apply_updates + tf_section + self.dram.burst_write(r, eb, threads)
            return pull, 0.0, 0.0, push

        if self.system == SystemKind.PMEM_HASH:
            # Everything on PMem, on the critical path, through a
            # PMem-aware concurrent hash whose operations serialize on
            # persistent-allocator and bucket-lock sections.
            pm_section_pull = serialized_section_time(
                r,
                cal.pmem_hash_section_s,
                contenders=workers,
                contention_factor=cal.pmem_hash_contention_factor,
            )
            pm_section_push = pm_section_pull
            pull = hash_probe + create + pm_section_pull + self.pmem.burst_read(
                r, eb, threads
            )
            push = (
                apply_updates
                + pm_section_push
                + self.pmem.burst_read(r, eb, threads)
                + self.pmem.burst_write(r, eb, threads)
            )
            return pull, 0.0, 0.0, push

        # Cache-based hybrids: PMEM_OE and ORI_CACHE.
        if not self.use_cache:
            # Figure 9 ablation: cache disabled -> every access is a
            # contended PMem read on the pull path and a PMem
            # write-back on the push path; with the pipeline enabled
            # the write-back half is deferred behind GPU compute.
            pm_ops = serialized_section_time(
                r,
                cal.pmem_op_overhead_s,
                contenders=workers,
                contention_factor=cal.pmem_contention_factor,
            )
            pull = hash_probe + create + pm_ops + self.pmem.burst_read(r, eb, threads)
            writeback = pm_ops + self.pmem.burst_write(r, eb, threads)
            push = apply_updates + self.pmem.burst_read(r, eb, threads)
            return pull, writeback, 0.0, push

        pm_miss = serialized_section_time(
            misses,
            cal.pmem_op_overhead_s,
            contenders=workers,
            contention_factor=cal.pmem_contention_factor,
        )
        pull_common = (
            hash_probe
            + create
            + self.dram.burst_read(hits, eb, threads)
            + pm_miss
            + self.pmem.burst_read(misses, eb, threads)
        )
        push_common = apply_updates + self.dram.burst_write(r, eb, threads)

        if self.system == SystemKind.PMEM_OE and self.pipelined:
            # Deferred maintenance on dedicated threads, no request-path
            # lock: priced into the slot that overlaps GPU compute.
            deferred = (
                parallel_section_time(
                    processed, cal.maintainer_entry_s, self.maintainer_threads
                )
                + self.pmem.burst_read(loads, eb, self.maintainer_threads)
                + self.pmem.burst_write(flushes, eb, self.maintainer_threads)
            )
            return pull_common, deferred, 0.0, push_common

        # Inline maintenance (Ori-Cache, or PMem-OE with the pipeline
        # disabled — the Figure 9 ablation): the LRU splice is a
        # serialized, contended section per access on BOTH the pull and
        # the push (a black-box cache treats the paired pull/update as
        # two independent operations), and miss-fill reads plus eviction
        # write-backs land on the pull critical path.
        inline_pull = serialized_section_time(
            r,
            cal.inline_maint_section_s,
            contenders=workers,
            contention_factor=cal.lock_contention_factor,
        )
        inline_push = serialized_section_time(
            r,
            cal.inline_maint_section_s,
            contenders=workers,
            contention_factor=cal.lock_contention_factor,
        )
        fill_io = self.pmem.burst_read(loads, eb, threads)
        evict_io = self.pmem.burst_write(flushes, eb, threads)
        pull = pull_common + inline_pull + fill_io + evict_io
        push = push_common + inline_push
        return pull, 0.0, 0.0, push
