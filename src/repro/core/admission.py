"""Cache admission control (extension beyond the paper).

The paper's cache admits every miss into DRAM. Under the DLRM skew
most tail keys are seen once or twice per epoch (Section III: "most of
the features appear only a few times during the whole training
process"), so admitting them evicts warmer entries and generates PMem
write-back churn for data that will not be reused.

:class:`FrequencyAdmission` is a TinyLFU-style filter: a count-min
sketch estimates each key's access frequency and a key is only promoted
to DRAM once it has been seen ``threshold`` times. ``threshold=0``
disables the filter (the paper's behaviour). The sketch halves itself
periodically so estimates track the recent window rather than all of
history.
"""

from __future__ import annotations

import numpy as np

from repro.core.sharding import mix64
from repro.errors import ConfigError


class CountMinSketch:
    """A count-min sketch over integer keys.

    Args:
        width: counters per row (power of two recommended).
        depth: independent hash rows.
        seed: hash seed.

    Estimates never under-count; over-counting is bounded by collisions
    (~``total_adds / width`` per row, min over rows).
    """

    def __init__(self, width: int = 4096, depth: int = 4, seed: int = 0):
        if width <= 0 or depth <= 0:
            raise ConfigError("sketch width and depth must be positive")
        self.width = width
        self.depth = depth
        self._rows = np.zeros((depth, width), dtype=np.uint32)
        self._seeds = [mix64((seed << 8) | row) for row in range(depth)]
        self.total_adds = 0

    def _indices(self, key: int) -> list[int]:
        return [mix64(key ^ s) % self.width for s in self._seeds]

    def add(self, key: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key``."""
        for row, index in enumerate(self._indices(key)):
            self._rows[row, index] += count
        self.total_adds += count

    def estimate(self, key: int) -> int:
        """Upper-biased frequency estimate for ``key``."""
        return int(min(self._rows[row, index] for row, index in
                       enumerate(self._indices(key))))

    def halve(self) -> None:
        """Age all counters (the TinyLFU reset), keeping recency."""
        self._rows >>= 1
        self.total_adds //= 2


class FrequencyAdmission:
    """Admit a key to the DRAM cache after ``threshold`` sightings.

    Args:
        threshold: sightings required before promotion; 1 admits on the
            second access, 0 always admits.
        sketch_width / sketch_depth: count-min sizing.
        halve_every: age the sketch after this many recorded accesses
            (keeps the estimate windowed).
    """

    def __init__(
        self,
        threshold: int = 1,
        sketch_width: int = 4096,
        sketch_depth: int = 4,
        halve_every: int = 100_000,
        seed: int = 0,
    ):
        if threshold < 0:
            raise ConfigError("threshold must be non-negative")
        if halve_every <= 0:
            raise ConfigError("halve_every must be positive")
        self.threshold = threshold
        self.halve_every = halve_every
        self.sketch = CountMinSketch(sketch_width, sketch_depth, seed)
        self.admitted = 0
        self.bypassed = 0

    def should_admit(self, key: int) -> bool:
        """Record one access of ``key``; True when it may enter DRAM."""
        if self.threshold == 0:
            self.admitted += 1
            return True
        self.sketch.add(key)
        if self.sketch.total_adds % self.halve_every == 0:
            self.sketch.halve()
        if self.sketch.estimate(key) > self.threshold:
            self.admitted += 1
            return True
        self.bypassed += 1
        return False

    @property
    def bypass_rate(self) -> float:
        total = self.admitted + self.bypassed
        return self.bypassed / total if total else 0.0
