"""The parallel sweep runner: expansion, isolation, resume, parity.

The toy benchmarks live at module level so the fork pool can pickle
the registry (functions pickle by reference to their module).
"""

import pytest

from repro.bench import (
    BenchRegistry,
    Headline,
    Param,
    SweepRunner,
    Trajectory,
    cell_fingerprint,
    derive_seed,
    parse_grid,
)
from repro.errors import ConfigError


def toy_linear(*, x, factor):
    return {"value": float(x) * factor, "even": x % 2 == 0}


def toy_crashy(*, x):
    if x == 3:
        raise RuntimeError("injected worker crash")
    return {"value": float(x)}


def toy_seeded(*, n, seed):
    # metrics depend on the injected seed, so seed-derivation bugs show
    # up as metric drift, not just as a changed record field
    return {"value": float((seed * 31 + n) % 1000)}


def toy_bad_metrics(*, x):
    return {"value": "not a number"}


def make_registry() -> BenchRegistry:
    registry = BenchRegistry()
    registry.register(
        "linear",
        params=[Param("x", "int", 1), Param("factor", "float", 2.0)],
        smoke={"factor": 1.0},
        headline={"value": Headline(direction="higher")},
    )(toy_linear)
    registry.register(
        "crashy", params=[Param("x", "int", 0)],
    )(toy_crashy)
    registry.register(
        "seeded", params=[Param("n", "int", 1), Param("seed", "int", 0)],
    )(toy_seeded)
    registry.register(
        "bad_metrics", params=[Param("x", "int", 0)],
    )(toy_bad_metrics)
    return registry


@pytest.fixture
def registry():
    return make_registry()


class TestExpand:
    def test_grid_to_cells_with_conditional_axis(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        grid = parse_grid("bench=linear,crashy; factor[bench=linear]=1.5,3.0")
        cells = runner.expand(grid)
        assert len(cells) == 3
        linear = [c for c in cells if c.bench == "linear"]
        assert sorted(c.params["factor"] for c in linear) == [1.5, 3.0]
        crashy = [c for c in cells if c.bench == "crashy"][0]
        assert crashy.params == {"x": 0}

    def test_smoke_overlay_applies_unless_pinned(self, registry, tmp_path):
        smoke = SweepRunner(registry, results_dir=tmp_path, scale="smoke")
        full = SweepRunner(registry, results_dir=tmp_path, scale="full")
        [cell] = smoke.expand(parse_grid("bench=linear"))
        assert cell.params["factor"] == 1.0  # smoke override
        [cell] = full.expand(parse_grid("bench=linear"))
        assert cell.params["factor"] == 2.0  # declared default
        [cell] = smoke.expand(parse_grid("bench=linear; factor=5.0"))
        assert cell.params["factor"] == 5.0  # grid pin wins

    def test_rejects_cell_without_bench(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        with pytest.raises(ConfigError):
            runner.expand(parse_grid("x=1,2"))

    def test_rejects_unknown_bench_and_param(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        with pytest.raises(ConfigError):
            runner.expand(parse_grid("bench=nope"))
        with pytest.raises(ConfigError):
            runner.expand(parse_grid("bench=linear; bogus=1"))

    def test_deterministic_seeds_and_fingerprints(self, registry, tmp_path):
        grid = parse_grid("bench=linear; x=1,2")
        first = SweepRunner(registry, results_dir=tmp_path, repeats=2).expand(grid)
        second = SweepRunner(registry, results_dir=tmp_path, repeats=2).expand(grid)
        assert first == second
        for cell in first:
            # "linear" declares no seed param, so cell.params is exactly
            # what the seed was derived from
            assert cell.seed == derive_seed(0, cell.bench, cell.params, cell.repeat)
            assert cell.fingerprint == cell_fingerprint(cell.bench, cell.params)
        # repeats get distinct seeds; distinct cells get distinct seeds
        seeds = [cell.seed for cell in first]
        assert len(set(seeds)) == len(seeds)

    def test_seed_param_injected_from_derived_seed(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        [cell] = runner.expand(parse_grid("bench=seeded"))
        assert cell.params["seed"] == cell.seed % (2**31 - 1)
        [pinned] = runner.expand(parse_grid("bench=seeded; seed=42"))
        assert pinned.params["seed"] == 42


class TestRun:
    def test_worker_crash_isolated_to_error_record(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        cells = runner.expand(parse_grid("bench=crashy; x=1,3,5"))
        result = runner.run(cells)
        assert result.ok == 2 and result.errors == 1
        [error] = [r for r in result.records if r.status == "error"]
        assert error.params == {"x": 3}
        assert "injected worker crash" in error.error
        assert "RuntimeError" in error.error
        # the trajectory holds all three records and still validates
        trajectory = Trajectory.load_or_create(tmp_path, "crashy")
        assert len(trajectory.runs) == 3

    def test_crash_isolated_in_parallel_pool(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path, jobs=2)
        cells = runner.expand(parse_grid("bench=crashy; x=1,3,5,7"))
        result = runner.run(cells)
        assert result.ok == 3 and result.errors == 1

    def test_invalid_metrics_become_error_record(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        result = runner.run(runner.expand(parse_grid("bench=bad_metrics")))
        assert result.errors == 1
        assert "non-numeric" in result.records[0].error

    def test_parallel_and_serial_sweeps_identical(self, registry, tmp_path):
        grid = parse_grid("bench=linear,seeded; x[bench=linear]=1,2,3")
        serial = SweepRunner(
            registry, results_dir=tmp_path / "serial", repeats=2
        )
        parallel = SweepRunner(
            registry, results_dir=tmp_path / "parallel", jobs=4, repeats=2
        )
        first = serial.run(serial.expand(grid))
        second = parallel.run(parallel.expand(grid))

        def essence(records):
            return [
                (r.bench, tuple(sorted(r.params.items())), r.seed, r.repeat,
                 r.scale, r.status, tuple(sorted(r.metrics.items())),
                 r.fingerprint)
                for r in records
            ]

        assert essence(first.records) == essence(second.records)
        assert first.ok == second.ok == 8

    def test_resume_skips_completed_cells(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        all_cells = runner.expand(parse_grid("bench=linear; x=1,2,3,4"))
        partial = runner.run(all_cells[:2])
        assert partial.ok == 2
        resumed = runner.run(all_cells, resume=True)
        assert resumed.skipped == 2
        assert resumed.ok == 2
        ran = {cell.params["x"] for cell in all_cells[2:]}
        assert {r.params["x"] for r in resumed.records} == ran
        trajectory = Trajectory.load_or_create(tmp_path, "linear")
        assert len(trajectory.runs) == 4

    def test_resume_retries_error_cells(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        cells = runner.expand(parse_grid("bench=crashy; x=1,3"))
        runner.run(cells)
        resumed = runner.run(cells, resume=True)
        # the ok cell is skipped; the error cell is retried (and fails again)
        assert resumed.skipped == 1
        assert resumed.errors == 1

    def test_rerun_replaces_not_duplicates(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        cells = runner.expand(parse_grid("bench=linear; x=1,2"))
        runner.run(cells)
        runner.run(cells)
        trajectory = Trajectory.load_or_create(tmp_path, "linear")
        assert len(trajectory.runs) == 2

    def test_keep_history_appends(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path, keep_history=True)
        cells = runner.expand(parse_grid("bench=linear"))
        runner.run(cells)
        runner.run(cells)
        trajectory = Trajectory.load_or_create(tmp_path, "linear")
        assert len(trajectory.runs) == 2

    def test_records_carry_env_and_schema_valid_metrics(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        result = runner.run(runner.expand(parse_grid("bench=linear; x=2")))
        [record] = result.records
        assert record.env.get("python")
        assert record.metrics == {"value": 2.0, "even": True}
        assert isinstance(record.metrics["even"], bool)
        assert record.duration_s >= 0

    def test_run_single(self, registry, tmp_path):
        runner = SweepRunner(registry, results_dir=tmp_path)
        record = runner.run_single("linear", {"x": 5})
        assert record.status == "ok"
        assert record.metrics["value"] == 5.0
        # run_single does not persist
        assert not Trajectory.path_for(tmp_path, "linear").is_file()

    def test_constructor_validation(self, registry):
        with pytest.raises(ConfigError):
            SweepRunner(registry, scale="warp")
        with pytest.raises(ConfigError):
            SweepRunner(registry, jobs=0)
        with pytest.raises(ConfigError):
            SweepRunner(registry, repeats=0)
