"""Property-based batch-consistency tests (hypothesis).

The paper's correctness requirement (Observation 2): recovery must
restore *exactly* the model state as of the checkpointed batch — batch
atomicity — for any access pattern, any checkpoint schedule and any
crash point. We drive a PS node with hypothesis-generated schedules and
check the recovered weights bitwise against an independent reference
model (a plain dict replaying the same updates).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, ServerConfig
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSSGD
from repro.core.recovery import recover_node
from repro.errors import RecoveryError

DIM = 2
NUM_KEYS = 8


def schedule_strategy():
    """A training schedule: per batch, the key set and whether a
    checkpoint is requested right after the batch."""
    batch = st.tuples(
        st.lists(st.integers(0, NUM_KEYS - 1), min_size=1, max_size=5, unique=True),
        st.booleans(),
    )
    return st.lists(batch, min_size=2, max_size=14)


def run_schedule(schedule, capacity_entries, crash_after):
    """Run the node and a reference dict side by side; crash; recover.

    Returns (durable_checkpoint_id, recovered_state, reference_snapshots)
    or None when recovery is legitimately impossible (no checkpoint ever
    completed before the crash).
    """
    server_config = ServerConfig(
        embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=11
    )
    cache_config = CacheConfig(capacity_bytes=capacity_entries * DIM * 4)
    node = PSNode(0, server_config, cache_config, PSSGD(lr=0.25))
    reference: dict[int, np.ndarray] = {}
    snapshots: dict[int, dict[int, np.ndarray]] = {}

    for batch_id, (keys, request_ckpt) in enumerate(schedule):
        if batch_id == crash_after:
            break
        result = node.pull(keys, batch_id)
        node.maintain(batch_id)
        grads = np.full((len(keys), DIM), 0.5, dtype=np.float32)
        node.push(keys, grads, batch_id)
        for i, key in enumerate(keys):
            if key not in reference:
                rng = np.random.default_rng((11, key))
                reference[key] = rng.uniform(-0.01, 0.01, DIM).astype(np.float32)
            reference[key] = reference[key] - 0.25 * grads[i]
        if request_ckpt and batch_id > node.coordinator.last_completed:
            pending = node.coordinator.queue.pending()
            if not pending or pending[-1] < batch_id:
                node.coordinator.request(batch_id)
                snapshots[batch_id] = {
                    key: np.array(weights, copy=True)
                    for key, weights in reference.items()
                }

    pool = node.crash()
    durable = pool.root.get("checkpointed_batch_id", -1)
    if durable < 0:
        with pytest.raises(RecoveryError):
            recover_node(pool, server_config, cache_config, PSSGD(lr=0.25))
        return None
    recovered, report = recover_node(
        pool, server_config, cache_config, PSSGD(lr=0.25)
    )
    assert report.checkpoint_batch_id == durable
    return durable, recovered.state_snapshot(), snapshots


class TestBatchConsistency:
    @given(
        schedule=schedule_strategy(),
        capacity=st.integers(1, 6),
        crash_after=st.integers(0, 14),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovery_restores_exact_checkpoint_state(
        self, schedule, capacity, crash_after
    ):
        outcome = run_schedule(schedule, capacity, crash_after)
        if outcome is None:
            return  # no completed checkpoint: recovery correctly refused
        durable, recovered_state, snapshots = outcome
        assert durable in snapshots, "completed a checkpoint that was never requested"
        expected = snapshots[durable]
        assert set(recovered_state) == set(expected)
        for key, weights in expected.items():
            assert np.array_equal(recovered_state[key], weights), (
                f"key {key} mismatch at checkpoint {durable}"
            )

    @given(
        schedule=schedule_strategy(),
        capacity=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_barrier_checkpoint_always_recoverable(self, schedule, capacity):
        """A forced (barrier) checkpoint at the end must always recover
        to the final state."""
        server_config = ServerConfig(
            embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=11
        )
        cache_config = CacheConfig(capacity_bytes=capacity * DIM * 4)
        node = PSNode(0, server_config, cache_config, PSSGD(lr=0.25))
        last_batch = -1
        for batch_id, (keys, __) in enumerate(schedule):
            node.pull(keys, batch_id)
            node.maintain(batch_id)
            node.push(keys, np.full((len(keys), DIM), 0.5, dtype=np.float32), batch_id)
            last_batch = batch_id
        expected = node.state_snapshot()
        node.barrier_checkpoint(last_batch)
        pool = node.crash()
        recovered, report = recover_node(
            pool, server_config, cache_config, PSSGD(lr=0.25)
        )
        assert report.checkpoint_batch_id == last_batch
        got = recovered.state_snapshot()
        assert set(got) == set(expected)
        for key, weights in expected.items():
            assert np.array_equal(got[key], weights)


class TestFlushInvariant:
    @given(schedule=schedule_strategy(), capacity=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_version_never_outruns_durability(self, schedule, capacity):
        """Whenever an entry's version has advanced past an outstanding
        checkpoint id, a durable version at or below that id must exist
        (the flush-before-advance invariant Algorithm 2 maintains)."""
        server_config = ServerConfig(
            embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=11
        )
        cache_config = CacheConfig(capacity_bytes=capacity * DIM * 4)
        node = PSNode(0, server_config, cache_config, PSSGD(lr=0.25))
        created_at: dict[int, int] = {}
        for batch_id, (keys, request_ckpt) in enumerate(schedule):
            for key in keys:
                created_at.setdefault(key, batch_id)
            node.pull(keys, batch_id)
            node.maintain(batch_id)
            node.push(keys, np.full((len(keys), DIM), 0.5, dtype=np.float32), batch_id)
            if request_ckpt and batch_id > node.coordinator.last_completed:
                pending = node.coordinator.queue.pending()
                if not pending or pending[-1] < batch_id:
                    node.coordinator.request(batch_id)
            for cp in node.coordinator.queue.pending():
                for entry in node.cache.index.entries():
                    if created_at[entry.key] > cp:
                        continue  # born after the checkpoint: exempt
                    if entry.version > cp:
                        eligible = [
                            v for v in node.store.versions_of(entry.key) if v <= cp
                        ]
                        assert eligible, (
                            f"entry {entry.key} at version {entry.version} has no "
                            f"durable state <= outstanding checkpoint {cp}"
                        )
