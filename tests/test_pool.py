"""PmemPool durability semantics: flush, stage, crash, capacity."""

import numpy as np
import pytest

from repro.errors import OutOfSpaceError, PMemError, PoolClosedError
from repro.pmem.pool import PmemPool


@pytest.fixture
def pool():
    return PmemPool(capacity_bytes=1024)


def arr(*values):
    return np.array(values, dtype=np.float32)


class TestBasicOps:
    def test_write_read_roundtrip(self, pool):
        pool.write("k", arr(1, 2, 3))
        assert np.array_equal(pool.read("k"), arr(1, 2, 3))

    def test_read_returns_copy(self, pool):
        pool.write("k", arr(1, 2))
        out = pool.read("k")
        out[0] = 99
        assert pool.read("k")[0] == 1

    def test_write_copies_input(self, pool):
        value = arr(1, 2)
        pool.write("k", value)
        value[0] = 99
        assert pool.read("k")[0] == 1

    def test_missing_key_raises(self, pool):
        with pytest.raises(KeyError):
            pool.read("nope")

    def test_contains(self, pool):
        pool.write("k", arr(1))
        assert "k" in pool
        assert "other" not in pool

    def test_free_reclaims_space(self, pool):
        pool.write("k", arr(1, 2, 3, 4))
        used = pool.used_bytes
        pool.free("k")
        assert pool.used_bytes == used - 16
        assert "k" not in pool

    def test_free_missing_raises(self, pool):
        with pytest.raises(KeyError):
            pool.free("nope")

    def test_overwrite_replaces_size(self, pool):
        pool.write("k", arr(1, 2, 3, 4))
        pool.write("k", arr(1))
        assert pool.used_bytes == 4

    def test_metadata_only_write(self, pool):
        pool.write("k", None, nbytes=64)
        assert pool.read("k") is None
        assert pool.used_bytes == 64

    def test_metadata_write_requires_nbytes(self, pool):
        with pytest.raises(PMemError):
            pool.write("k", None)

    def test_len_and_keys(self, pool):
        pool.write("a", arr(1))
        pool.write("b", arr(2), flush=False)
        assert len(pool) == 2
        assert set(pool.keys()) == {"a", "b"}


class TestCapacity:
    def test_out_of_space(self, pool):
        pool.write("big", None, nbytes=1024)
        with pytest.raises(OutOfSpaceError):
            pool.write("more", None, nbytes=1)

    def test_overwrite_does_not_double_count(self, pool):
        pool.write("k", None, nbytes=1024)
        pool.write("k", None, nbytes=1024)  # same footprint: fine
        assert pool.used_bytes == 1024

    def test_free_bytes(self, pool):
        pool.write("k", None, nbytes=100)
        assert pool.free_bytes == 924


class TestDurability:
    def test_flushed_write_survives_crash(self, pool):
        pool.write("k", arr(7), flush=True)
        pool.crash()
        assert np.array_equal(pool.read("k"), arr(7))

    def test_staged_write_lost_on_crash(self, pool):
        pool.write("k", arr(7), flush=False)
        pool.crash()
        assert "k" not in pool

    def test_staged_overwrite_reverts_to_durable(self, pool):
        pool.write("k", arr(1), flush=True)
        pool.write("k", arr(2), flush=False)
        assert pool.read("k")[0] == 2  # staged visible while running
        pool.crash()
        assert pool.read("k")[0] == 1  # durable value survives

    def test_drain_persists_staged(self, pool):
        pool.write("k", arr(3), flush=False)
        pool.drain()
        pool.crash()
        assert pool.read("k")[0] == 3

    def test_durable_keys(self, pool):
        pool.write("a", arr(1), flush=True)
        pool.write("b", arr(2), flush=False)
        assert pool.durable_keys() == ["a"]

    def test_space_accounting_recomputed_after_crash(self, pool):
        pool.write("a", None, nbytes=100, flush=True)
        pool.write("b", None, nbytes=200, flush=False)
        assert pool.used_bytes == 300
        pool.crash()
        assert pool.used_bytes == 100


class TestRoot:
    def test_root_fields_atomic_and_durable(self, pool):
        pool.root.set("ckpt", 42)
        pool.crash()
        assert pool.root.get("ckpt") == 42

    def test_root_default(self, pool):
        assert pool.root.get("missing", -1) == -1
        with pytest.raises(KeyError):
            pool.root.get("missing")


class TestLifecycle:
    def test_close_drains(self, pool):
        pool.write("k", arr(1), flush=False)
        pool.close()
        pool.reopen()
        assert pool.read("k")[0] == 1

    def test_closed_pool_rejects_ops(self, pool):
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.write("k", arr(1))
        with pytest.raises(PoolClosedError):
            pool.read("k")

    def test_invalid_capacity(self):
        with pytest.raises(PMemError):
            PmemPool(0)
