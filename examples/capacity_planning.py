"""Capacity and reliability planning for a DLRM deployment.

Answers the questions an operator sizing a 500 GB DLRM parameter server
would ask, with the paper's numbers:

1. How many machines of each type hold the model, and what does an
   epoch cost? (Table V)
2. What checkpoint interval does Young's formula recommend given the
   measured checkpoint cost and fleet MTTF, and what does each strategy
   lose to a failure? (Sections VI-A, VI-D, VI-E)

Run:  python examples/capacity_planning.py
"""

from repro.cost.pricing import (
    R6E_13XLARGE,
    RE6P_13XLARGE,
    cost_per_epoch,
    deployment_for_model,
)
from repro.core.recovery import estimate_recovery_seconds
from repro.failure.mttf import (
    expected_total_overhead_seconds,
    young_interval_seconds,
)

GB = 1 << 30

MODEL_BYTES = 500 * GB
ENTRIES = 2_100_000_000  # the paper's production workload
ENTRY_BYTES = 256  # dim 64 float32
EPOCH_HOURS = {"DRAM-PS": 5.75, "PMem-OE": 5.33, "Ori-Cache": 7.01}
MTTF_HOURS = 12.0  # Facebook-scale fleet failure rate


def main() -> None:
    print(f"model: {MODEL_BYTES / GB:.0f} GB, {ENTRIES / 1e9:.1f} B entries\n")

    print("== deployment sizing & cost (Table V) ==")
    dram = deployment_for_model(MODEL_BYTES, R6E_13XLARGE, "DRAM-PS")
    pmem = deployment_for_model(MODEL_BYTES, RE6P_13XLARGE, "PMem-OE")
    ori = deployment_for_model(MODEL_BYTES, RE6P_13XLARGE, "Ori-Cache")
    for deployment in (dram, pmem, ori):
        hours = EPOCH_HOURS[deployment.name]
        print(
            f"  {deployment.name:>9}: {deployment.machines} x "
            f"{deployment.instance.name:<14} ${deployment.dollars_per_hour:5.2f}/h, "
            f"epoch {hours:.2f} h -> ${cost_per_epoch(deployment, hours):5.1f}/epoch"
        )
    saving = 1 - cost_per_epoch(pmem, EPOCH_HOURS["PMem-OE"]) / cost_per_epoch(
        dram, EPOCH_HOURS["DRAM-PS"]
    )
    print(f"  PMem-OE saves {saving:.0%} per epoch vs DRAM-PS\n")

    print("== checkpoint interval (Young's formula) ==")
    mttf_s = MTTF_HOURS * 3600
    recovery_s = estimate_recovery_seconds(
        entries=ENTRIES, versions=ENTRIES, entry_bytes=ENTRY_BYTES
    )
    for name, ckpt_cost in (("batch-aware (PMem-OE)", 15.0), ("incremental", 240.0)):
        interval = young_interval_seconds(ckpt_cost, mttf_s)
        overhead = expected_total_overhead_seconds(
            run_seconds=24 * 3600,
            interval_seconds=interval,
            checkpoint_cost_seconds=ckpt_cost,
            mttf_seconds=mttf_s,
            recovery_seconds=recovery_s,
        )
        print(
            f"  {name:>22}: cost/ckpt {ckpt_cost:5.0f} s -> optimal interval "
            f"{interval / 60:5.1f} min; expected overhead {overhead / 60:5.1f} "
            f"min/day"
        )

    print("\n== recovery time (Figure 14) ==")
    print(f"  PMem-OE scan + index rebuild: {recovery_s:7.1f} s")
    for shards in (2, 4, 8):
        sharded = estimate_recovery_seconds(
            entries=ENTRIES, versions=ENTRIES, entry_bytes=ENTRY_BYTES,
            parallelism=shards,
        )
        print(f"  ... partitioned over {shards} PS processes: {sharded:7.1f} s")


if __name__ == "__main__":
    main()
