"""Key partitioning across PS nodes.

Section IV: *"OpenEmbedding identifies the correct PS node by hashing
the entry's id"*. We use a splitmix64-style integer mix so routing is
deterministic across processes and runs (Python's builtin ``hash`` is
salted per process and would break recovery tests).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finalizer: a fast, well-distributed 64-bit mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class HashPartitioner:
    """Stable key -> node routing for ``num_nodes`` shards."""

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes

    def node_of(self, key: int) -> int:
        """The shard owning ``key``."""
        if self.num_nodes == 1:
            return 0
        return mix64(key) % self.num_nodes

    def split(
        self, keys: Sequence[int]
    ) -> tuple[list[list[int]], list[list[int]]]:
        """Partition ``keys`` by owner.

        Returns ``(per_node_keys, per_node_positions)`` where
        ``per_node_positions[n][j]`` is the index in ``keys`` of
        ``per_node_keys[n][j]`` — used to scatter per-node responses
        back into request order.
        """
        per_node_keys: list[list[int]] = [[] for __ in range(self.num_nodes)]
        per_node_positions: list[list[int]] = [[] for __ in range(self.num_nodes)]
        for position, key in enumerate(keys):
            node = self.node_of(key)
            per_node_keys[node].append(key)
            per_node_positions[node].append(position)
        return per_node_keys, per_node_positions
