"""PipelinedCache: Algorithms 1 and 2 behaviour."""

import numpy as np
import pytest

from repro.config import CacheConfig, EvictionPolicy
from repro.core.cache import PipelinedCache
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.entry import Location
from repro.core.optimizers import PSSGD
from repro.errors import KeyNotFoundError, ServerError
from repro.pmem.pool import PmemPool
from repro.pmem.space import VersionedEntryStore

from tests.conftest import DIM, ENTRY_BYTES, make_cache


def grads(keys, value=1.0):
    return np.full((len(keys), DIM), value, dtype=np.float32)


class TestPull:
    def test_new_keys_initialised_in_dram(self, cache):
        result = cache.pull([1, 2], batch_id=0)
        assert result.created == 2
        assert result.hits == 0
        assert np.array_equal(result.weights[0], np.full(DIM, 1.0))
        assert np.array_equal(result.weights[1], np.full(DIM, 2.0))
        assert cache.index.location_of(1) == Location.DRAM

    def test_second_pull_hits_dram(self, cache):
        cache.pull([1], 0)
        result = cache.pull([1], 0)
        assert result.hits == 1
        assert result.created == 0

    def test_pull_does_not_touch_lru(self, cache):
        """Maintenance is deferred: the pull path never reorders."""
        cache.pull([1, 2, 3], 0)
        assert len(cache.lru) == 0
        assert len(cache.access_queue) == 1

    def test_pull_from_pmem_is_a_miss(self, cache):
        cache.pull([1], 0)
        cache.maintain(0)
        cache.drop_cache()
        result = cache.pull([1], 1)
        assert result.misses == 1
        assert np.array_equal(result.weights[0], np.full(DIM, 1.0))

    def test_auto_create_disabled(self, store, coordinator):
        cache = make_cache(store, coordinator)
        cache.auto_create = False
        with pytest.raises(KeyNotFoundError):
            cache.pull([1], 0)

    def test_duplicate_keys_in_one_pull(self, cache):
        result = cache.pull([1, 1, 1], 0)
        assert result.created == 1
        assert result.hits == 2
        assert result.weights.shape == (3, DIM)

    def test_initializer_shape_checked(self, store, coordinator):
        cache = PipelinedCache(
            CacheConfig(capacity_bytes=1024),
            store,
            coordinator,
            dim=DIM,
            initializer=lambda key: np.zeros(DIM + 1, dtype=np.float32),
        )
        with pytest.raises(ServerError):
            cache.pull([1], 0)


class TestMaintain:
    def test_accessed_entries_enter_lru(self, cache):
        cache.pull([1, 2], 0)
        result = cache.maintain(0)
        assert result.processed == 2
        assert cache.cached_keys() == [2, 1]

    def test_versions_advance_to_batch(self, cache):
        cache.pull([1], 0)
        cache.maintain(0)
        cache.pull([1], 3)
        cache.maintain(3)
        assert cache.index.find(1).version == 3

    def test_eviction_beyond_capacity(self, cache):
        cache.pull([1, 2, 3, 4, 5], 0)  # capacity is 4
        result = cache.maintain(0)
        assert result.evictions == 1
        assert cache.cached_entries == 4
        assert cache.index.location_of(1) == Location.PMEM

    def test_eviction_flushes_victim_weights(self, cache):
        cache.pull([1, 2, 3, 4, 5], 0)
        cache.maintain(0)
        __, stored = cache.store.read_latest(1)
        assert np.array_equal(stored[:DIM], np.full(DIM, 1.0))

    def test_miss_load_promotes_to_dram(self, cache):
        cache.pull([1], 0)
        cache.maintain(0)
        cache.drop_cache()
        cache.pull([1], 1)
        result = cache.maintain(1)
        assert result.loads == 1
        assert cache.index.location_of(1) == Location.DRAM

    def test_lru_order_follows_access_recency(self, cache):
        cache.pull([1, 2, 3], 0)
        cache.maintain(0)
        cache.pull([1], 1)
        cache.maintain(1)
        cache.pull([4, 5], 2)  # evict 2 (the oldest)
        cache.maintain(2)
        assert cache.index.location_of(2) == Location.PMEM
        assert cache.index.location_of(1) == Location.DRAM

    def test_maintain_keeps_invariants(self, cache):
        for batch in range(6):
            cache.pull([batch, batch + 1, batch + 2], batch)
            cache.maintain(batch)
            cache.validate()


class TestUpdate:
    def test_sgd_applied(self, cache):
        cache.pull([1], 0)
        cache.maintain(0)
        cache.update([1], grads([1], 1.0), 0)
        # lr=0.5: w = 1.0 - 0.5*1.0 = 0.5
        assert np.allclose(cache.read_current_weights(1), 0.5)

    def test_duplicate_gradients_aggregated(self, cache):
        cache.pull([1, 1], 0)
        cache.maintain(0)
        cache.update([1, 1], grads([1, 1], 1.0), 0)
        # summed grad = 2.0 -> w = 1.0 - 0.5*2 = 0.0
        assert np.allclose(cache.read_current_weights(1), 0.0)

    def test_update_unknown_key_rejected(self, cache):
        with pytest.raises(KeyNotFoundError):
            cache.update([99], grads([99]), 0)

    def test_update_shape_checked(self, cache):
        cache.pull([1], 0)
        cache.maintain(0)
        with pytest.raises(ServerError):
            cache.update([1], np.zeros((1, DIM + 1), dtype=np.float32), 0)

    def test_update_marks_dirty(self, cache):
        cache.pull([1], 0)
        cache.maintain(0)
        cache.update([1], grads([1]), 0)
        assert cache.index.find(1).dirty

    def test_update_entry_still_in_pmem_rmw(self, cache):
        """If an entry missed and no maintain ran (degenerate order),
        updates read-modify-write through the store."""
        cache.pull([1], 0)
        cache.maintain(0)
        cache.drop_cache()
        cache.pull([1], 1)
        cache.access_queue.pop_batch(1)  # swallow the maintenance task
        cache.update([1], grads([1], 1.0), 1)
        assert np.allclose(cache.read_current_weights(1), 0.5)


class TestCheckpointCoDesign:
    """Algorithm 2's checkpoint logic inside maintenance."""

    def _train_batch(self, cache, keys, batch):
        cache.pull(keys, batch)
        cache.maintain(batch)
        cache.update(keys, grads(keys, 0.1), batch)

    def test_flush_before_version_advance(self, cache):
        self._train_batch(cache, [1], 0)
        cache.coordinator.request(0)
        # Accessing key 1 at batch 1 must first persist its batch-0 state.
        state_at_0 = np.array(cache.read_current_weights(1), copy=True)
        self._train_batch(cache, [1], 1)
        stored_batch, stored = cache.store.read_at_most(1, 0)
        assert stored_batch == 0
        assert np.array_equal(stored[:DIM], state_at_0)

    def test_completion_via_eviction(self, cache):
        self._train_batch(cache, [1, 2, 3, 4], 0)
        cache.coordinator.request(0)
        # Batch 1 touches all cached entries (flush-before-advance) and
        # brings in a new key, forcing an eviction whose victim now has
        # version 1 > 0 -> checkpoint 0 completes.
        self._train_batch(cache, [1, 2, 3, 4, 5], 1)
        assert cache.coordinator.last_completed == 0
        assert cache.store.checkpointed_batch_id() == 0

    def test_no_completion_while_old_versions_cached(self, cache):
        self._train_batch(cache, [1, 2, 3, 4], 0)
        cache.coordinator.request(0)
        # Batch 1 touches only key 1; keys 2-4 still have version 0, so
        # the checkpoint must stay open.
        self._train_batch(cache, [1], 1)
        assert cache.coordinator.last_completed == -1

    def test_forced_completion_at_barrier(self, cache):
        self._train_batch(cache, [1, 2], 0)
        cache.coordinator.request(0)
        completed = cache.complete_pending_checkpoints()
        assert completed == [0]
        assert cache.store.checkpointed_batch_id() == 0

    def test_complete_pending_noop_when_idle(self, cache):
        assert cache.complete_pending_checkpoints() == []

    def test_recovered_state_is_checkpoint_state(self, cache):
        self._train_batch(cache, [1, 2], 0)
        cache.coordinator.request(0)
        expected = {
            key: np.array(cache.read_current_weights(key), copy=True)
            for key in (1, 2)
        }
        self._train_batch(cache, [1, 2], 1)  # post-checkpoint updates
        cache.complete_pending_checkpoints()  # completes ckpt 0
        cache.store.pool.crash()
        recovered = cache.store.recover()
        assert recovered == {1: 0, 2: 0}
        for key in (1, 2):
            assert np.array_equal(
                cache.store.read_latest(key)[1][:DIM], expected[key]
            )


class TestDirtyTracking:
    def test_clean_eviction_skips_flush_when_tracking(self, store, coordinator):
        cache = make_cache(store, coordinator, capacity_entries=2, track_dirty=True)
        cache.pull([1, 2], 0)
        cache.maintain(0)
        flushes_before = cache.metrics.cache.flushes
        # Entries 1, 2 were flushed on creation-eviction? No: they are
        # dirty (new). Make them clean by flushing, then re-access and
        # evict without updating.
        cache.flush_all()
        cache.pull([3, 4], 1)  # evicts 1 and 2, both clean
        result = cache.maintain(1)
        assert result.evictions == 2
        # Only the maintenance of new entries flushed nothing extra for
        # the clean victims.
        assert cache.metrics.cache.flushes == flushes_before + 2  # flush_all only

    def test_always_flush_without_tracking(self, store, coordinator):
        cache = make_cache(store, coordinator, capacity_entries=2, track_dirty=False)
        cache.pull([1, 2], 0)
        cache.maintain(0)
        cache.flush_all()
        before = cache.metrics.cache.flushes
        cache.pull([3, 4], 1)
        cache.maintain(1)
        assert cache.metrics.cache.flushes > before  # clean victims flushed


class TestPolicies:
    def test_fifo_does_not_reorder_on_reaccess(self, store, coordinator):
        config = CacheConfig(
            capacity_bytes=2 * ENTRY_BYTES, policy=EvictionPolicy.FIFO
        )
        cache = PipelinedCache(
            config,
            store,
            coordinator,
            dim=DIM,
            initializer=lambda key: np.full(DIM, float(key), dtype=np.float32),
            optimizer=PSSGD(lr=0.5),
        )
        cache.pull([1, 2], 0)
        cache.maintain(0)
        cache.pull([1], 1)  # re-access: FIFO ignores it
        cache.maintain(1)
        cache.pull([3], 2)  # evicts 1 (oldest by insertion)
        cache.maintain(2)
        assert cache.index.location_of(1) == Location.PMEM
        assert cache.index.location_of(2) == Location.DRAM


class TestMetadataOnlyMode:
    def test_pull_returns_no_weights(self, store, coordinator):
        cache = make_cache(store, coordinator, value_mode=False)
        result = cache.pull([1, 2], 0)
        assert result.weights is None
        assert result.created == 2

    def test_update_without_grads(self, store, coordinator):
        cache = make_cache(store, coordinator, value_mode=False)
        cache.pull([1], 0)
        cache.maintain(0)
        assert cache.update([1], None, 0) == 1

    def test_full_lifecycle_counts_match_value_mode(self, store, coordinator):
        meta = make_cache(store, coordinator, capacity_entries=2, value_mode=False)
        pool2 = PmemPool(1 << 20)
        store2 = VersionedEntryStore(pool2, entry_bytes=ENTRY_BYTES)
        value = make_cache(store2, CheckpointCoordinator(store2), capacity_entries=2)
        stream = [[1, 2], [3], [1], [4, 2], [1, 3]]
        for batch, keys in enumerate(stream):
            r1 = meta.pull(keys, batch)
            r2 = value.pull(keys, batch)
            assert (r1.hits, r1.misses, r1.created) == (r2.hits, r2.misses, r2.created)
            m1 = meta.maintain(batch)
            m2 = value.maintain(batch)
            assert m1 == m2


class TestBarriers:
    def test_flush_all_persists_every_cached_entry(self, cache):
        cache.pull([1, 2, 3], 0)
        cache.maintain(0)
        assert cache.flush_all() == 3
        for key in (1, 2, 3):
            assert cache.store.has(key)

    def test_drop_cache_empties_and_stays_consistent(self, cache):
        cache.pull([1, 2, 3], 0)
        cache.maintain(0)
        assert cache.drop_cache() == 3
        assert cache.cached_entries == 0
        cache.validate()
        assert np.array_equal(
            cache.read_current_weights(2), np.full(DIM, 2.0)
        )
