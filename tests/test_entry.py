"""Tagged handles, embedding entries, and the entry arena."""

import pytest

from repro.core.entry import (
    EmbeddingEntry,
    EntryArena,
    Location,
    pack_handle,
    unpack_handle,
)
from repro.errors import ServerError


class TestTaggedHandles:
    def test_roundtrip_dram(self):
        handle = pack_handle(42, Location.DRAM)
        assert unpack_handle(handle) == (42, Location.DRAM)

    def test_roundtrip_pmem(self):
        handle = pack_handle(42, Location.PMEM)
        assert unpack_handle(handle) == (42, Location.PMEM)

    def test_low_bit_is_the_tag(self):
        assert pack_handle(7, Location.DRAM) % 2 == 0
        assert pack_handle(7, Location.PMEM) % 2 == 1

    def test_slot_zero(self):
        assert unpack_handle(pack_handle(0, Location.PMEM)) == (0, Location.PMEM)

    def test_large_slot(self):
        slot = 2**40
        assert unpack_handle(pack_handle(slot, Location.DRAM))[0] == slot

    def test_negative_slot_rejected(self):
        with pytest.raises(ServerError):
            pack_handle(-1, Location.DRAM)

    def test_negative_handle_rejected(self):
        with pytest.raises(ServerError):
            unpack_handle(-2)


class TestEmbeddingEntry:
    def test_defaults(self):
        entry = EmbeddingEntry(5)
        assert entry.key == 5
        assert entry.version == -1
        assert entry.in_dram
        assert not entry.dirty
        assert not entry.in_lru

    def test_slots_block_arbitrary_attrs(self):
        entry = EmbeddingEntry(1)
        with pytest.raises(AttributeError):
            entry.bogus = 1


class TestEntryArena:
    def test_alloc_get(self):
        arena = EntryArena()
        entry = EmbeddingEntry(1)
        slot = arena.alloc(entry)
        assert arena.get(slot) is entry
        assert entry.slot == slot

    def test_free_and_reuse(self):
        arena = EntryArena()
        a, b = EmbeddingEntry(1), EmbeddingEntry(2)
        slot_a = arena.alloc(a)
        arena.alloc(b)
        arena.free(slot_a)
        assert len(arena) == 1
        c = EmbeddingEntry(3)
        assert arena.alloc(c) == slot_a  # slot recycled

    def test_dangling_handle_detected(self):
        arena = EntryArena()
        slot = arena.alloc(EmbeddingEntry(1))
        arena.free(slot)
        with pytest.raises(ServerError):
            arena.get(slot)

    def test_invalid_slot(self):
        with pytest.raises(ServerError):
            EntryArena().get(0)
