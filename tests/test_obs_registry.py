"""MetricsRegistry: labels, kind safety, merging, bundle collection."""

import pytest

from repro.errors import ConfigError
from repro.obs.histogram import Histogram
from repro.obs.registry import Counter, Gauge, MetricsRegistry, collect_bundle
from repro.simulation.metrics import Metrics


class TestGetOrCreate:
    def test_same_name_labels_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_pulls_total", {"node": "0"})
        b = registry.counter("repro_pulls_total", {"node": "0"})
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("m", {"a": "1", "b": "2"})
        b = registry.counter("m", {"b": "2", "a": "1"})
        assert a is b

    def test_different_labels_different_series(self):
        registry = MetricsRegistry()
        a = registry.counter("m", {"node": "0"})
        b = registry.counter("m", {"node": "1"})
        assert a is not b
        assert len(registry) == 2

    def test_kind_mixing_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigError):
            registry.gauge("m")
        with pytest.raises(ConfigError):
            registry.histogram("m", {"other": "labels"})

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("")

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("m")
        with pytest.raises(ConfigError):
            counter.add(-1)

    def test_find_returns_none_for_missing(self):
        registry = MetricsRegistry()
        registry.counter("m", {"node": "0"})
        assert registry.find("m", {"node": "1"}) is None
        assert registry.find("m", {"node": "0"}) is not None


class TestMerge:
    def test_counters_sum_gauges_last_writer_histograms_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").add(2)
        b.counter("c").add(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").observe(0.1)
        b.histogram("h").observe(0.2)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 9.0
        assert a.histogram("h").count == 2

    def test_merge_copies_foreign_label_sets(self):
        cluster, node = MetricsRegistry(), MetricsRegistry()
        node.counter("repro_pulls_total", {"node": "3"}).add(7)
        cluster.merge(node)
        assert cluster.counter("repro_pulls_total", {"node": "3"}).value == 7

    def test_unset_gauge_does_not_clobber(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(4.0)
        b.gauge("g")  # created but never set
        a.merge(b)
        assert a.gauge("g").value == 4.0


class TestCollectBundle:
    def _bundle(self) -> Metrics:
        metrics = Metrics()
        metrics.pulls = 10
        metrics.cache.hits = 8
        metrics.cache.misses = 2
        metrics.rpc.retries = 3
        metrics.prefetch.demand_keys = 5
        return metrics

    def test_hoists_nonzero_counters_with_labels(self):
        registry = MetricsRegistry()
        collect_bundle(registry, self._bundle(), {"node": "0"})
        assert registry.counter("repro_pulls_total", {"node": "0"}).value == 10
        assert registry.counter("repro_cache_hits_total", {"node": "0"}).value == 8
        assert registry.counter("repro_rpc_retries_total", {"node": "0"}).value == 3
        assert (
            registry.counter("repro_prefetch_demand_keys_total", {"node": "0"}).value
            == 5
        )
        assert registry.gauge("repro_cache_miss_rate", {"node": "0"}).value == (
            pytest.approx(0.2)
        )

    def test_zero_counters_not_materialized(self):
        registry = MetricsRegistry()
        collect_bundle(registry, Metrics(), {"node": "0"})
        assert registry.find("repro_pulls_total", {"node": "0"}) is None

    def test_multi_node_rollup_keeps_per_node_series(self):
        """Per-node registries merge into a cluster view losslessly."""
        cluster = MetricsRegistry()
        for node_id in range(3):
            local = MetricsRegistry()
            collect_bundle(local, self._bundle(), {"node": str(node_id)})
            cluster.merge(local)
        total = sum(
            metric.value
            for name, __, metric in cluster.items()
            if name == "repro_pulls_total"
        )
        assert total == 30
        assert cluster.counter("repro_pulls_total", {"node": "2"}).value == 10
