"""Trace context on the wire: framing roundtrips, tolerance, detection.

Property coverage (Hypothesis) for the :data:`CONTEXT_FLAG` frame
extension in :mod:`repro.network.messages`:

* any message ± any :class:`TraceContext` roundtrips exactly, and
  ``decode_message`` drops the context;
* context-free frames are byte-for-byte the pre-context layout (old
  decoders and obs-off traffic unaffected), a context costs exactly the
  17 context bytes;
* flipping any CRC-covered payload bit of a context frame decodes to
  :class:`MessageError`, never a mis-parented span;

plus the retry-visible span attributes: a deterministically dropped
first attempt yields ``reason="lost"`` then ``reason="ok"`` under one
``trace_id`` with a shrinking deadline, the server sees that exact
context, an obs-off channel puts pristine pre-context frames on the
wire, and a corrupt-heavy wire with tracing on still trains to the
bit-identical final state.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import (
    CacheConfig,
    NetworkFaultConfig,
    RetryConfig,
    ServerConfig,
)
from repro.core.optimizers import PSAdagrad
from repro.network.frontend import RemotePSClient
from repro.network.messages import (
    CONTEXT_FLAG,
    CheckpointRequest,
    HeartbeatRequest,
    MaintainRequest,
    MessageError,
    PullRequest,
    StatusResponse,
    TraceContext,
    decode_envelope,
    decode_message,
    encode_message,
)
from repro.network.rpc import RpcChannel, RpcServer
from repro.obs import Tracer
from repro.simulation.clock import SimClock
from repro.simulation.network import Delivery, NetworkModel

DIM = 4
HEADER_SIZE = 9  # [type u8][length u32][crc u32] — not CRC-covered

u32 = st.integers(0, 2**32 - 1)
u64 = st.integers(0, 2**64 - 1)
i64 = st.integers(-(2**63), 2**63 - 1)

MESSAGES = st.one_of(
    st.builds(CheckpointRequest, batch_id=i64),
    st.builds(MaintainRequest, batch_id=u64),
    st.builds(HeartbeatRequest, node_id=u32, requester=u32),
    st.builds(
        StatusResponse,
        code=st.integers(0, 8),
        value=i64,
        detail=st.text(max_size=32),
    ),
    st.builds(
        PullRequest,
        batch_id=u64,
        keys=st.lists(u64, max_size=6).map(
            lambda ks: np.asarray(ks, dtype="<u8")
        ),
    ),
)

CONTEXTS = st.builds(
    TraceContext,
    trace_id=u64,
    parent_span_id=u64,
    sampled=st.booleans(),
)


def assert_same_message(a, b) -> None:
    assert type(a) is type(b)
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            assert np.array_equal(np.asarray(va), np.asarray(vb))
        else:
            assert va == vb


# ----------------------------------------------------------------------
# framing properties
# ----------------------------------------------------------------------


class TestFraming:
    @given(message=MESSAGES, context=st.one_of(st.none(), CONTEXTS))
    def test_roundtrip_with_and_without_context(self, message, context):
        frame = encode_message(message, context)
        assert bool(frame[0] & CONTEXT_FLAG) == (context is not None)
        decoded, decoded_context = decode_envelope(frame)
        assert decoded_context == context
        assert_same_message(decoded, message)
        # decode_message is the context-blind legacy entry point.
        assert_same_message(decode_message(frame), message)

    @given(message=MESSAGES, context=CONTEXTS)
    def test_context_costs_exactly_its_wire_bytes(self, message, context):
        plain = encode_message(message)
        traced = encode_message(message, context)
        assert len(traced) == len(plain) + 17
        # The plain frame is the pre-context layout, byte for byte:
        # an old decoder never sees the flag.
        assert plain[0] == message.TYPE
        assert plain[0] & CONTEXT_FLAG == 0

    @given(message=MESSAGES, context=CONTEXTS, data=st.data())
    def test_any_payload_corruption_is_detected(self, message, context, data):
        frame = bytearray(encode_message(message, context))
        # The CRC covers context + body (everything past the header);
        # flip one payload bit — a context frame always has >= 17.
        offset = data.draw(st.integers(HEADER_SIZE, len(frame) - 1))
        bit = data.draw(st.integers(0, 7))
        frame[offset] ^= 1 << bit
        with pytest.raises(MessageError):
            decode_envelope(bytes(frame))

    def test_flagged_frame_too_short_for_context(self):
        payload = b"\x00" * 10  # < the 17-byte context prefix
        frame = (
            struct.pack(
                "<BII",
                CheckpointRequest.TYPE | CONTEXT_FLAG,
                len(payload),
                zlib.crc32(payload),
            )
            + payload
        )
        with pytest.raises(MessageError, match="trace context"):
            decode_envelope(frame)


# ----------------------------------------------------------------------
# channel behaviour
# ----------------------------------------------------------------------


class DropFirstRequestLink:
    """Deterministic link: eats exactly the first request frame."""

    def __init__(self):
        self.network = NetworkModel()
        self._dropped = False

    def transfer(self, frame, direction, concurrent_flows=1):
        elapsed = self.network.transfer_time(len(frame), concurrent_flows)
        if direction == "request" and not self._dropped:
            self._dropped = True
            return Delivery(copies=(), elapsed=elapsed)
        return Delivery(copies=(frame,), elapsed=elapsed)


class RecordingLink:
    """Perfect link that keeps a copy of every request frame."""

    def __init__(self):
        self.network = NetworkModel()
        self.request_frames: list[bytes] = []

    def transfer(self, frame, direction, concurrent_flows=1):
        if direction == "request":
            self.request_frames.append(bytes(frame))
        elapsed = self.network.transfer_time(len(frame), concurrent_flows)
        return Delivery(copies=(frame,), elapsed=elapsed)


RETRY = RetryConfig(
    max_attempts=6, attempt_timeout_s=0.05, call_timeout_s=5.0, seed=1
)


def _echo_server(contexts_seen=None):
    server = RpcServer()

    def handler(request):
        if contexts_seen is not None:
            contexts_seen.append(server.current_context)
        return StatusResponse(StatusResponse.OK, request.batch_id)

    server.register(CheckpointRequest.TYPE, handler)
    return server


class TestAttemptSpans:
    def test_retried_attempt_attrs_and_stable_trace_id(self):
        # Regression for the attempt-level span attributes: a dropped
        # first exchange must read as lost-then-ok under ONE trace id,
        # with the deadline visibly shrinking across attempts.
        contexts = []
        server = _echo_server(contexts)
        clock = SimClock()
        tracer = Tracer(clock=clock)
        channel = RpcChannel(
            server, DropFirstRequestLink(), clock, retry=RETRY, tracer=tracer
        )
        response = channel.call(CheckpointRequest(batch_id=7))
        assert response.value == 7

        attempts = [
            s for s in tracer.closed_spans() if s.name == "rpc.attempt"
        ]
        assert len(attempts) == 2
        first, second = attempts
        assert first.attrs["attempt"] == 1
        assert first.attrs["reason"] == "lost"
        assert second.attrs["attempt"] == 2
        assert second.attrs["reason"] == "ok"
        assert first.attrs["trace_id"] == second.attrs["trace_id"]
        assert first.attrs["span_id"] == first.span_id
        assert second.attrs["span_id"] == second.span_id
        assert first.attrs["span_id"] != second.attrs["span_id"]
        assert (
            second.attrs["deadline_remaining_s"]
            < first.attrs["deadline_remaining_s"]
        )
        # The server decoded the exact context of the attempt that
        # reached it: same trace, parented to the second attempt.
        assert len(contexts) == 1
        assert contexts[0].trace_id == second.attrs["trace_id"]
        assert contexts[0].parent_span_id == second.attrs["span_id"]

    def test_obs_off_frames_are_pre_context_bytes(self):
        link = RecordingLink()
        channel = RpcChannel(_echo_server(), link, SimClock(), retry=RETRY)
        request = CheckpointRequest(batch_id=3)
        channel.call(request)
        assert link.request_frames == [encode_message(request)]
        assert link.request_frames[0][0] & CONTEXT_FLAG == 0

    def test_enabled_tracer_stamps_every_frame(self):
        link = RecordingLink()
        clock = SimClock()
        channel = RpcChannel(
            _echo_server(), link, clock, retry=RETRY, tracer=Tracer(clock=clock)
        )
        channel.call(CheckpointRequest(batch_id=3))
        channel.call(CheckpointRequest(batch_id=4))
        ids = []
        for frame in link.request_frames:
            assert frame[0] & CONTEXT_FLAG
            __, context = decode_envelope(frame)
            assert context is not None and context.sampled
            ids.append(context.trace_id)
        assert len(set(ids)) == 2  # one trace per call


# ----------------------------------------------------------------------
# corrupt wire + tracing: still trains to the bit-identical state
# ----------------------------------------------------------------------


class TestCorruptWireEquivalence:
    def test_context_frames_survive_heavy_corruption(self):
        config = ServerConfig(
            num_nodes=2, embedding_dim=DIM,
            pmem_capacity_bytes=1 << 22, seed=4,
        )
        cache = CacheConfig(capacity_bytes=8 * DIM * 4)

        def train(client):
            rng = np.random.default_rng(0)
            for batch in range(12):
                keys = sorted(rng.choice(40, size=6, replace=False).tolist())
                grads = rng.normal(0, 0.1, (6, DIM)).astype(np.float32)
                client.pull(keys, batch)
                client.maintain(batch)
                client.push(keys, grads, batch)
            return client.state_snapshot()

        clean = train(RemotePSClient(config, cache, PSAdagrad(lr=0.05)))
        tracer = Tracer()
        faulty = train(
            RemotePSClient(
                config, cache, PSAdagrad(lr=0.05),
                faults=NetworkFaultConfig(corrupt_rate=0.25, seed=7),
                retry=RetryConfig(
                    max_attempts=12, attempt_timeout_s=0.05,
                    call_timeout_s=5.0, seed=1,
                ),
                tracer=tracer,
            )
        )
        assert clean.keys() == faulty.keys()
        for key in clean:
            assert np.array_equal(clean[key], faulty[key]), key
        # Corruption was actually exercised and surfaced as retryable
        # rejections/damage on the attempt spans, not silent decode.
        reasons = {
            s.attrs.get("reason")
            for s in tracer.closed_spans()
            if s.name == "rpc.attempt"
        }
        assert reasons & {"rejected", "reply_damaged"}
        assert "ok" in reasons
