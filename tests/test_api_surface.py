"""Public API surface: everything exported resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.pmem",
    "repro.baselines",
    "repro.dlrm",
    "repro.workload",
    "repro.network",
    "repro.simulation",
    "repro.failure",
    "repro.cost",
    "repro.bench",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} missing a module docstring"
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} in __all__ but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_objects_documented(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{package_name}.{name} has no docstring"


def test_version():
    import repro

    assert repro.__version__


class TestPSBackendProtocol:
    """Every shipped PS implementation satisfies the formal protocol."""

    def _implementations(self):
        import numpy as np

        from repro.baselines.dram_ps import DRAMPSNode
        from repro.baselines.ori_cache import OriCacheNode
        from repro.baselines.pmem_hash import PMemHashNode
        from repro.config import CacheConfig, ServerConfig
        from repro.core.server import OpenEmbeddingServer
        from repro.network.frontend import RemotePSClient

        sc = ServerConfig(
            num_nodes=2, embedding_dim=8, pmem_capacity_bytes=1 << 22
        )
        cc = CacheConfig(capacity_bytes=1 << 18)
        del np
        return [
            OpenEmbeddingServer(sc, cc),
            RemotePSClient(sc, cc),
            DRAMPSNode(sc),
            PMemHashNode(sc),
            OriCacheNode(
                0, sc, CacheConfig(capacity_bytes=1 << 18, pipelined=False)
            ),
        ]

    def test_isinstance_and_check(self):
        with pytest.warns(DeprecationWarning, match="PSBackend"):
            from repro.core.backend import PSBackend
        from repro.core.backend import check_backend

        for backend in self._implementations():
            assert isinstance(backend, PSBackend), type(backend).__name__
            assert check_backend(backend) is backend

    def test_every_implementation_is_a_read_backend(self):
        """The serving role: every shipped PS also satisfies ReadBackend."""
        from repro.core.backend import ReadBackend, TrainBackend, check_backend

        for backend in self._implementations():
            name = type(backend).__name__
            assert isinstance(backend, ReadBackend), name
            assert isinstance(backend, TrainBackend), name
            assert check_backend(backend, role="read") is backend

    def test_read_surface_is_pinned(self):
        """The ReadBackend surface is a compatibility contract: adding a
        member is a breaking change for every external backend, so the
        tuples are pinned here and may only grow deliberately."""
        from repro.core import backend as backend_module

        assert backend_module.READ_BACKEND_METHODS == ("pull", "lookup")
        assert backend_module.READ_BACKEND_PROPERTIES == (
            "num_entries",
            "latest_completed_batch",
            "latest_serving_snapshot",
            "checkpoints_completed",
        )
        assert backend_module.PS_BACKEND_METHODS == (
            "pull",
            "lookup",
            "push",
            "maintain",
            "request_checkpoint",
            "barrier_checkpoint",
            "complete_pending_checkpoints",
            "state_snapshot",
        )

    def test_lookup_round_trip_everywhere(self):
        """Each implementation serves a snapshot-pinned read after one
        train step + checkpoint (the serving-role protocol member)."""
        import numpy as np

        for backend in self._implementations():
            name = type(backend).__name__
            keys = [1, 2, 3]
            backend.pull(keys, 0)
            backend.maintain(0)
            backend.push(keys, np.ones((3, 8), dtype=np.float32), 0)
            pin = backend.barrier_checkpoint()
            assert backend.latest_serving_snapshot == pin, name
            assert backend.checkpoints_completed >= 1, name
            result = backend.lookup(keys)
            assert result.weights.shape == (3, 8), name
            assert result.snapshot_id == pin, name

    def test_deprecated_alias_reexported_at_top_level(self):
        """`from repro import PSBackend` still works (and warns)."""
        import repro
        import repro.core
        from repro.core.backend import TrainBackend

        for module in (repro, repro.core):
            with pytest.warns(DeprecationWarning, match="PSBackend"):
                alias = module.PSBackend
            assert alias is TrainBackend

    def test_check_backend_rejects_partial(self):
        from repro.core.backend import check_backend

        class Half:
            def pull(self, keys, batch_id):
                raise NotImplementedError

        with pytest.raises(TypeError, match="push"):
            check_backend(Half())

    def test_protocol_members_exercisable(self):
        """Each implementation runs one full protocol round-trip."""
        import numpy as np

        from repro.core.backend import aggregate_maintain

        for backend in self._implementations():
            name = type(backend).__name__
            keys = [1, 2, 3]
            result = backend.pull(keys, 0)
            assert result.weights.shape == (3, 8), name
            maintain = aggregate_maintain(backend.maintain(0))
            assert maintain.processed >= 0, name
            backend.push(keys, np.ones((3, 8), dtype=np.float32), 0)
            assert backend.num_entries >= 3, name
            assert backend.barrier_checkpoint() >= 0, name
            backend.complete_pending_checkpoints()  # idempotent
            assert backend.latest_completed_batch >= -1, name
            snapshot = backend.state_snapshot()
            assert set(snapshot) == set(keys), name

    def test_maintain_returns_list(self):
        """Satellite: maintain() is list[MaintainResult] everywhere."""
        from repro.core.cache import MaintainResult

        for backend in self._implementations():
            backend.pull([5, 6], 0)
            results = backend.maintain(0)
            assert isinstance(results, list), type(backend).__name__
            assert all(isinstance(r, MaintainResult) for r in results)


def test_trainer_server_kwarg_deprecated():
    """The renamed trainer kwarg still works but warns."""
    from repro.config import CacheConfig, ServerConfig
    from repro.core.server import OpenEmbeddingServer
    from repro.dlrm.criteo import CriteoSynthetic
    from repro.dlrm.deepfm import DeepFM
    from repro.dlrm.trainer import SynchronousTrainer

    server = OpenEmbeddingServer(
        ServerConfig(num_nodes=1, embedding_dim=8, pmem_capacity_bytes=1 << 22),
        CacheConfig(capacity_bytes=1 << 18),
    )
    model = DeepFM(4, 8, hidden=(8,), use_first_order=False, seed=0)
    dataset = CriteoSynthetic(num_fields=4, vocab_per_field=50, seed=0)
    with pytest.warns(DeprecationWarning, match="backend"):
        trainer = SynchronousTrainer(
            server=server, model=model, dataset=dataset, batch_size=8
        )
    assert trainer.backend is server
    assert trainer.server is server  # legacy alias still readable
    trainer.train(2)


def test_quickstart_snippet_from_readme():
    """The README's core snippet must actually run."""
    import numpy as np

    from repro import CacheConfig, OpenEmbeddingServer, ServerConfig

    server = OpenEmbeddingServer(
        ServerConfig(num_nodes=2, embedding_dim=16, pmem_capacity_bytes=1 << 22),
        CacheConfig(capacity_bytes=1 << 20),
    )
    keys = [3, 14, 159]
    result = server.pull(keys, 0)
    assert result.weights.shape == (3, 16)
    server.maintain(0)
    server.push(keys, np.ones((3, 16), dtype=np.float32), 0)
    server.request_checkpoint()
