"""Persistent-memory substrate (PMDK-like, simulated).

The paper builds on Intel Optane PMem via PMDK. This package provides
the equivalents the PS core needs:

* :class:`~repro.pmem.pool.PmemPool` — a byte-addressable persistent
  object pool with explicit flush semantics, a small root region with
  atomic 8-byte updates (for the *Checkpointed Batch ID*), capacity
  accounting and crash simulation.
* :class:`~repro.pmem.space.VersionedEntryStore` — the space manager of
  Section V-C: it keeps the entry version belonging to the latest
  successful checkpoint from being overwritten by newer flushes, and
  recycles superseded versions once a newer checkpoint completes.

Durability model: a write is durable once flushed (the default). Writes
staged with ``flush=False`` live in the simulated CPU cache and are lost
on :meth:`~repro.pmem.pool.PmemPool.crash`.
"""

from repro.pmem.pool import PmemPool, PoolRoot
from repro.pmem.space import EntryVersion, VersionedEntryStore

__all__ = ["PmemPool", "PoolRoot", "VersionedEntryStore", "EntryVersion"]
