"""Synchronous multi-worker DLRM training (functional).

Emulates the paper's deployment: ``num_workers`` GPU workers train one
DeepFM data-parallel over a shared parameter server. Each synchronous
step runs the protocol of Figure 5:

1. every worker pulls its shard's embeddings (the pull burst),
2. the PS runs its (pipelined) cache-maintenance round,
3. workers compute forward/backward and push embedding gradients (the
   update burst); dense gradients are all-reduced (averaged) and
   applied to the replicated MLP.

Checkpointing pairs TensorFlow-style dense snapshots (Table IV: "dense
features: Tensorflow's checkpoint") with the server's batch-aware
sparse checkpoint, both tagged with the same batch id, so crash
recovery restores a single consistent training state and training can
resume deterministically — the dataset is indexed by batch id.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.config import CacheConfig, PrefetchConfig, ServerConfig
from repro.core.backend import TrainBackend, check_backend
from repro.core.optimizers import PSOptimizer
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.embedding import PSEmbedding
from repro.dlrm.optimizers import Adam, DenseOptimizer
from repro.dlrm.prefetch import PrefetchPipeline
from repro.errors import CheckpointError, ConfigError, RecoveryError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.clock import SimClock


@dataclass
class TrainerCheckpoint:
    """A dense-side snapshot paired with a sparse checkpoint request."""

    batch_id: int
    dense_state: list[np.ndarray]
    optimizer_state: dict


@dataclass
class DenseCheckpointStore:
    """Durable store for dense snapshots (the 'checkpoint files').

    Lives outside the crash boundary — like TensorFlow checkpoints on
    backup storage, these survive a process crash.
    """

    snapshots: dict[int, TrainerCheckpoint] = field(default_factory=dict)
    keep_last: int = 4

    def save(self, snapshot: TrainerCheckpoint) -> None:
        self.snapshots[snapshot.batch_id] = snapshot
        while len(self.snapshots) > self.keep_last:
            del self.snapshots[min(self.snapshots)]

    def load(self, batch_id: int) -> TrainerCheckpoint:
        if batch_id not in self.snapshots:
            raise RecoveryError(f"no dense snapshot for batch {batch_id}")
        return self.snapshots[batch_id]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one synchronous training step."""

    batch_id: int
    loss: float
    requests: int


class SynchronousTrainer:
    """Trains a DeepFM against any :class:`~repro.core.backend.TrainBackend`.

    Args:
        backend: the embedding parameter server — anything implementing
            the :class:`~repro.core.backend.TrainBackend` protocol
            (:class:`OpenEmbeddingServer`, a
            :class:`~repro.network.frontend.RemotePSClient`, or a
            baseline). ``server=`` is accepted as a deprecated alias.
        model: the dense DeepFM (built without the first-order term
            unless ``first_order_server`` is given).
        dataset: deterministic batch source.
        num_workers: simulated GPU workers (data-parallel shards).
        batch_size: samples per worker per step.
        dense_optimizer: optimizer for the MLP (default Adam).
        first_order_server: optional dim-1 PS holding the FM
            first-order weights (always trained on the serial path).
        checkpoint_every: request a checkpoint every N batches (None =
            manual only).
        prefetch: lookahead prefetch configuration. ``None`` keeps the
            classic serial protocol (pull → maintain → push, every
            duplicate pulled). A :class:`PrefetchConfig` routes pulls
            through a :class:`PrefetchPipeline`: demand misses on the
            critical path, maintenance + next-window prefetch inside
            the overlap window. Final weights are bit-identical either
            way; only request traffic and simulated timing change.
        clock: optional simulated clock shared with the backend, used
            by the pipeline's overlap accounting.
        gpu_batch_time_s: simulated per-batch GPU compute the overlap
            window hides PS work behind (only meaningful with
            ``prefetch`` and ``clock``).
        tracer: span sink for per-step phases (``train.step`` /
            ``train.pull`` / ``train.compute`` / ``train.push`` /
            ``train.checkpoint``); shared with the prefetch pipeline.
    """

    def __init__(
        self,
        backend: TrainBackend | None = None,
        model: DeepFM | None = None,
        dataset: CriteoSynthetic | None = None,
        num_workers: int = 2,
        batch_size: int = 64,
        dense_optimizer: DenseOptimizer | None = None,
        first_order_server: OpenEmbeddingServer | None = None,
        checkpoint_every: int | None = None,
        *,
        prefetch: PrefetchConfig | None = None,
        clock: SimClock | None = None,
        gpu_batch_time_s: float = 0.0,
        tracer: Tracer | None = None,
        server: TrainBackend | None = None,
    ):
        if server is not None:
            warnings.warn(
                "SynchronousTrainer(server=...) is deprecated; "
                "pass backend=... (any TrainBackend)",
                DeprecationWarning,
                stacklevel=2,
            )
            if backend is not None:
                raise ConfigError("pass either backend= or server=, not both")
            backend = server
        if backend is None or model is None or dataset is None:
            raise ConfigError("backend, model and dataset are required")
        if num_workers <= 0 or batch_size <= 0:
            raise ConfigError("num_workers and batch_size must be positive")
        if getattr(model, "use_first_order", False) and first_order_server is None:
            raise ConfigError(
                "model uses the first-order FM term; pass first_order_server"
            )
        self.backend = check_backend(backend, role="train")
        #: Deprecated alias of :attr:`backend`, kept for callers that
        #: still read ``trainer.server``.
        self.server = self.backend
        self.model = model
        self.dataset = dataset
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.dense_optimizer = dense_optimizer or Adam()
        self.embedding = PSEmbedding(backend, model.dim)
        self.first_order_server = first_order_server
        self.first_order = (
            PSEmbedding(first_order_server, 1) if first_order_server else None
        )
        self.checkpoint_every = checkpoint_every
        self.dense_checkpoints = DenseCheckpointStore()
        self.next_batch = 0
        self.loss_history: list[float] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pipeline: PrefetchPipeline | None = None
        if prefetch is not None:
            self.pipeline = PrefetchPipeline(
                backend,
                prefetch,
                model.dim,
                self._keys_for_batch,
                clock=clock,
                gpu_batch_time_s=gpu_batch_time_s,
                tracer=self.tracer,
            )

    def _keys_for_batch(self, batch_id: int) -> np.ndarray:
        """Deterministic peek into the global-batch key stream."""
        return self.dataset.batch(
            self.batch_size * self.num_workers, batch_id
        ).keys

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def step(self) -> StepResult:
        """Run one synchronous step over ``num_workers`` worker shards."""
        with self.tracer.span("train.step", batch=self.next_batch) as span:
            result = self._step()
            span.set(loss=result.loss, requests=result.requests)
            return result

    def _step(self) -> StepResult:
        batch_id = self.next_batch
        global_batch = self.dataset.batch(
            self.batch_size * self.num_workers, batch_id
        )
        shards = [
            (
                global_batch.keys[w * self.batch_size : (w + 1) * self.batch_size],
                global_batch.labels[w * self.batch_size : (w + 1) * self.batch_size],
                global_batch.dense[w * self.batch_size : (w + 1) * self.batch_size],
            )
            for w in range(self.num_workers)
        ]

        # Phase 1: the pull burst — every worker pulls simultaneously.
        # On the pipelined path, demand misses are pulled once (deduped)
        # and the shards are served from the lookahead buffer.
        with self.tracer.span("train.pull", batch=batch_id):
            if self.pipeline is not None:
                self.pipeline.begin_batch(batch_id, global_batch.keys)
                pulled = [self.pipeline.gather(keys) for keys, *__ in shards]
            else:
                pulled = [
                    self.embedding.pull(keys, batch_id) for keys, *__ in shards
                ]
            first_pulled = None
            if self.first_order is not None:
                first_pulled = [
                    self.first_order.pull(keys, batch_id) for keys, *__ in shards
                ]
                self.first_order_server.maintain(batch_id)

        # Phase 2: the PS maintenance round, overlapped with GPU compute
        # in the performance model; functionally it runs here, between
        # the batch's pulls and its updates (Algorithm 2's lock order).
        # The pipeline folds next-window prefetch into the same overlap.
        if self.pipeline is not None:
            self.pipeline.run_overlap(batch_id)
        else:
            self.backend.maintain(batch_id)

        # Phase 3: per-worker compute, then the update burst. Dense
        # gradients accumulate across workers (allreduce-sum) and are
        # averaged; sparse gradients are scaled by 1/num_workers so the
        # effective loss is the global-batch mean.
        self.model.zero_grad()
        losses = []
        requests = 0
        with self.tracer.span("train.compute", batch=batch_id):
            worker_grads = []
            for w, (keys, labels, dense) in enumerate(shards):
                if getattr(self.model, "uses_dense_features", False):
                    grads = self.model.train_batch(pulled[w], labels, dense)
                else:
                    first = first_pulled[w] if first_pulled is not None else None
                    grads = self.model.train_batch(pulled[w], labels, first)
                losses.append(grads.loss)
                worker_grads.append(grads)
        with self.tracer.span("train.push", batch=batch_id):
            for w, (keys, labels, dense) in enumerate(shards):
                grads = worker_grads[w]
                scale = 1.0 / self.num_workers
                if self.pipeline is not None:
                    # Identical flattening to PSEmbedding.push so the
                    # backend sees byte-for-byte the same update burst.
                    flat_grads = np.asarray(
                        grads.embedding_grads * scale, dtype=np.float32
                    ).reshape(-1, self.model.dim)
                    self.pipeline.push(
                        np.asarray(keys).reshape(-1).tolist(),
                        flat_grads,
                        batch_id,
                    )
                else:
                    self.embedding.push(
                        keys, grads.embedding_grads * scale, batch_id
                    )
                if self.first_order is not None:
                    self.first_order.push(
                        keys, grads.first_order_grads * scale, batch_id
                    )
                requests += keys.size
            params = self.model.mlp.parameters()
            grads_dense = [
                g / self.num_workers for g in self.model.mlp.gradients()
            ]
            self.dense_optimizer.step(params, grads_dense)
            if self.pipeline is not None:
                self.pipeline.end_batch(batch_id)

        self.next_batch += 1
        loss = float(np.mean(losses))
        self.loss_history.append(loss)
        if (
            self.checkpoint_every is not None
            and (batch_id + 1) % self.checkpoint_every == 0
        ):
            with self.tracer.span(
                "train.checkpoint", track="checkpoint", batch=batch_id
            ):
                self.request_checkpoint()
        return StepResult(batch_id=batch_id, loss=loss, requests=requests)

    def train(self, num_batches: int) -> list[StepResult]:
        """Run ``num_batches`` steps; returns their results.

        With a prefetch pipeline the lookahead horizon is clipped to
        the last batch this call will train, so prefetch never creates
        server entries a serial run would not have.
        """
        if self.pipeline is not None:
            self.pipeline.horizon = self.next_batch + num_batches - 1
        return [self.step() for __ in range(num_batches)]

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def request_checkpoint(self) -> int:
        """Queue a checkpoint of the latest trained batch.

        The sparse side completes opportunistically inside later cache
        maintenance; the dense snapshot is taken now (training is at a
        batch boundary, so the state is exactly batch ``b``'s).
        """
        if self.next_batch == 0:
            raise CheckpointError("nothing trained yet")
        batch_id = self.next_batch - 1
        self.server.request_checkpoint(batch_id)
        if self.first_order_server is not None:
            self.first_order_server.request_checkpoint(batch_id)
        self.dense_checkpoints.save(
            TrainerCheckpoint(
                batch_id=batch_id,
                dense_state=self.model.dense_state(),
                optimizer_state=self.dense_optimizer.state(),
            )
        )
        return batch_id

    def barrier_checkpoint(self) -> int:
        """Checkpoint and force completion (clean-shutdown semantics)."""
        batch_id = self.request_checkpoint()
        self.server.complete_pending_checkpoints()
        if self.first_order_server is not None:
            self.first_order_server.complete_pending_checkpoints()
        return batch_id

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash(self):
        """Kill every process; returns what survives.

        Returns ``(sparse_pools, first_order_pools, dense_checkpoints)``
        — the PMem DIMM contents and the dense checkpoint files.
        """
        pools = self.server.crash()
        first_pools = (
            self.first_order_server.crash()
            if self.first_order_server is not None
            else None
        )
        return pools, first_pools, self.dense_checkpoints

    @classmethod
    def recover(
        cls,
        pools,
        dense_checkpoints: DenseCheckpointStore,
        *,
        model: DeepFM,
        dataset: CriteoSynthetic,
        server_config: ServerConfig,
        cache_config: CacheConfig | None = None,
        ps_optimizer: PSOptimizer | None = None,
        first_order_pools=None,
        first_order_config: ServerConfig | None = None,
        num_workers: int = 2,
        batch_size: int = 64,
        dense_optimizer: DenseOptimizer | None = None,
        checkpoint_every: int | None = None,
        prefetch: PrefetchConfig | None = None,
        tracer: Tracer | None = None,
    ) -> "SynchronousTrainer":
        """Rebuild a trainer from surviving state.

        The sparse side recovers to the newest cluster-wide checkpoint;
        the matching dense snapshot is loaded; training resumes at the
        following batch. Because the dataset is deterministic by batch
        id, resumed training replays exactly what an uninterrupted run
        would have produced.
        """
        server, __ = OpenEmbeddingServer.recover(
            pools, server_config, cache_config, ps_optimizer, tracer=tracer
        )
        checkpoint_id = server.global_completed_checkpoint
        first_server = None
        if first_order_pools is not None:
            if first_order_config is None:
                raise RecoveryError("first_order_pools given without its config")
            first_server, __ = OpenEmbeddingServer.recover(
                first_order_pools, first_order_config, cache_config, ps_optimizer
            )
            if first_server.global_completed_checkpoint != checkpoint_id:
                raise RecoveryError(
                    "sparse tables recovered to different checkpoints: "
                    f"{checkpoint_id} vs {first_server.global_completed_checkpoint}"
                )
        snapshot = dense_checkpoints.load(checkpoint_id)
        model.load_dense_state(snapshot.dense_state)
        dense_optimizer = dense_optimizer or Adam()
        dense_optimizer.load_state(snapshot.optimizer_state)
        trainer = cls(
            server,
            model,
            dataset,
            num_workers=num_workers,
            batch_size=batch_size,
            dense_optimizer=dense_optimizer,
            first_order_server=first_server,
            checkpoint_every=checkpoint_every,
            prefetch=prefetch,
            tracer=tracer,
        )
        trainer.dense_checkpoints = dense_checkpoints
        trainer.next_batch = checkpoint_id + 1
        return trainer
