"""Lookahead prefetch pipeline over a :class:`TrainBackend`.

The paper's central performance claim (Section V-B, Figure 5) is that
cache/PMem maintenance can be deferred off the pull critical path and
hidden behind GPU compute. BagPipe-style lookahead generalises the
trick to the *pull* itself: because the training stream is known ahead
of time, the keys of the next ``lookahead`` batches can be

1. **deduplicated** against what is already buffered (cross-batch key
   reuse is heavy under Zipfian access skew), and
2. **prefetched** during the current batch's GPU compute, together with
   the deferred ``maintain`` round,

so that by the time batch ``b+1`` starts, its pull burst is (mostly)
already resident client-side and only a small *demand* remainder hits
the critical path.

Staleness invariant
-------------------
Weights must be **bit-identical** to serial execution. The one hazard
is a buffered entry whose key is touched by an in-flight push: its
buffered copy is stale the moment the push applies. The pipeline
therefore *invalidates* every pushed key, and restores it either

* **eagerly** (``PrefetchConfig.patch=True``): re-pulled at the end of
  the step, off the next batch's critical path, or
* **lazily** (``patch=False``): the next batch's demand pull fetches
  it again.

Both are bit-identical — a re-pull simply observes the post-push
weights, exactly what a serial pull at the later batch would see.

Access-queue discipline
-----------------------
Every backend pull carries the batch tag of the *next* maintenance
round that will process it: demand pulls of batch ``b`` are tagged
``b`` (consumed by ``maintain(b)`` inside the overlap window), while
prefetch and patch pulls issued after ``maintain(b)`` are tagged
``b + 1``. The server-side access queue therefore never observes a tag
from the future, and cache versions advance exactly one round at a
time. An entry served from the buffer skips its batch's maintenance
round entirely; the cache's update path compensates by applying
maintain's flush-before-advance rule on push (see
:meth:`repro.core.cache.PipelinedCache.update`).

Timing
------
When constructed with a :class:`~repro.simulation.clock.SimClock` (the
remote-RPC backend shares one), the overlap window is charged
faithfully: maintenance and prefetch RPCs advance the clock — including
any retry/timeout/backoff time on a faulty link — and GPU compute of
``gpu_batch_time_s`` is then charged *overlapping* that work via
:meth:`SimClock.advance_overlapping`, so the window costs
``max(ps_work, gpu)`` instead of their sum. With ``lookahead=0`` the
pipeline degrades to the strictly serial schedule (maintain on the
critical path, GPU charged separately), which is the baseline the
benchmarks compare against.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.config import PrefetchConfig
from repro.core.backend import TrainBackend, check_backend
from repro.core.cache import MaintainResult
from repro.errors import ConfigError, ServerError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.clock import SimClock
from repro.simulation.metrics import Metrics, PrefetchStats


class PrefetchPipeline:
    """Client-side lookahead buffer in front of a :class:`TrainBackend`.

    One trainer step drives the pipeline through four calls::

        pipeline.begin_batch(b, batch_keys)   # demand pulls (tag b)
        rows = pipeline.gather(key_matrix)    # serve lookups from buffer
        pipeline.run_overlap(b)               # maintain(b) + prefetch (tag b+1)
        pipeline.push(keys, grads, b)         # push + invalidate
        pipeline.end_batch(b)                 # patch (tag b+1) + prune

    Args:
        backend: any :class:`TrainBackend` (in-process server, remote RPC
            client, or a baseline).
        config: lookahead depth / patching / buffer cap.
        dim: embedding dimension of the buffered rows.
        keys_for_batch: deterministic peek into the workload stream —
            returns the key array (any shape) of a future global batch.
        clock: optional shared simulated clock for overlap accounting.
        gpu_batch_time_s: simulated GPU forward+backward time that the
            overlap window hides PS work behind (0 disables timing).
        horizon: last batch id that will ever be trained; the window is
            clipped to it so prefetch never creates entries for batches
            that no serial run would touch. ``None`` = unbounded
            (set by ``SynchronousTrainer.train``).
        tracer: span sink for demand/overlap/patch phases; the overlap
            window additionally emits a ``gpu.compute`` span on the
            ``gpu`` track so traces show PS work hidden behind it.
        metrics: share a :class:`~repro.simulation.metrics.Metrics`
            bundle — the pipeline then accumulates into its
            ``prefetch`` sub-bundle instead of a private one.
    """

    def __init__(
        self,
        backend: TrainBackend,
        config: PrefetchConfig,
        dim: int,
        keys_for_batch: Callable[[int], np.ndarray],
        *,
        clock: SimClock | None = None,
        gpu_batch_time_s: float = 0.0,
        horizon: int | None = None,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
    ):
        if dim <= 0:
            raise ConfigError(f"dim must be positive, got {dim}")
        if gpu_batch_time_s < 0:
            raise ConfigError("gpu_batch_time_s must be non-negative")
        self.backend = check_backend(backend, role="train")
        self.config = config
        self.dim = dim
        self.keys_for_batch = keys_for_batch
        self.clock = clock
        self.gpu_batch_time_s = float(gpu_batch_time_s)
        self.horizon = horizon
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = metrics.prefetch if metrics is not None else PrefetchStats()
        self._buffer: dict[int, np.ndarray] = {}
        self._window: set[int] = set()
        self._pushed: set[int] = set()

    # ------------------------------------------------------------------
    # step protocol
    # ------------------------------------------------------------------

    def begin_batch(self, batch_id: int, keys: np.ndarray) -> None:
        """Demand-pull the batch's keys that are not validly buffered.

        Tagged ``batch_id``: these are the only pulls of the batch on
        the critical path, and the ones its ``maintain`` round will
        process. Under warm lookahead the demand set is (near) empty.
        """
        flat = np.asarray(keys).reshape(-1)
        missing = self._missing_in_order(flat)
        self.stats.demand_keys += len(missing)
        self.stats.buffer_hits += int(flat.size) - len(missing)
        if missing:
            with self.tracer.span(
                "prefetch.demand",
                track="prefetch",
                batch=batch_id,
                keys=len(missing),
            ):
                self._pull_into_buffer(missing, batch_id)

    def gather(self, key_matrix: np.ndarray) -> np.ndarray:
        """Serve a (batch, fields) lookup matrix from the buffer.

        Returns a float32 tensor of shape (batch, fields, dim) — the
        same values a direct ``backend.pull`` at this batch would have
        produced (the staleness invariant guarantees it).
        """
        key_matrix = np.asarray(key_matrix)
        if key_matrix.ndim != 2:
            raise ConfigError(
                f"key matrix must be 2-D, got shape {key_matrix.shape}"
            )
        out = np.empty((*key_matrix.shape, self.dim), dtype=np.float32)
        for i in range(key_matrix.shape[0]):
            for j in range(key_matrix.shape[1]):
                key = int(key_matrix[i, j])
                row = self._buffer.get(key)
                if row is None:
                    raise ServerError(
                        f"key {key} not buffered; begin_batch not run?"
                    )
                out[i, j] = row
        return out

    def run_overlap(self, batch_id: int) -> list[MaintainResult]:
        """The overlap window: deferred maintain + lookahead prefetch.

        Runs ``maintain(batch_id)`` (Algorithm 2's deferred round) and
        then prefetches the deduplicated keys of the next ``lookahead``
        batches, tagged ``batch_id + 1``. On a clocked backend the
        whole window is charged overlapping ``gpu_batch_time_s``. With
        ``lookahead == 0`` this is the strictly serial schedule:
        maintain sits on the critical path and GPU time follows it.
        """
        if not self.config.enabled:
            with self.tracer.span(
                "prefetch.maintain", track="maintainer", batch=batch_id
            ):
                results = self.backend.maintain(batch_id)
            self._window = set()
            if self.clock is not None and self.gpu_batch_time_s > 0:
                gpu_start = self.clock.now
                self.clock.advance(self.gpu_batch_time_s)
                self.tracer.add_span(
                    "gpu.compute",
                    start=gpu_start,
                    duration=self.gpu_batch_time_s,
                    track="gpu",
                    batch=batch_id,
                )
            return results

        start = self.clock.now if self.clock is not None else 0.0
        with self.tracer.span(
            "prefetch.maintain", track="maintainer", batch=batch_id
        ):
            results = self.backend.maintain(batch_id)
        window_keys = self._peek_window(batch_id)
        self._window = window_keys
        candidates = sorted(window_keys - self._buffer.keys())
        self.stats.deduped_keys += len(window_keys) - len(candidates)
        cap = self.config.max_buffer_entries
        if cap is not None:
            room = max(0, cap - len(self._buffer))
            candidates = candidates[:room]
        if candidates:
            with self.tracer.span(
                "prefetch.prefetch_pull",
                track="maintainer",
                batch=batch_id,
                keys=len(candidates),
            ):
                self._pull_into_buffer(candidates, batch_id + 1)
            self.stats.prefetch_keys += len(candidates)
        if self.clock is not None and self.gpu_batch_time_s > 0:
            work = self.clock.now - start
            self.clock.advance_overlapping(start, self.gpu_batch_time_s)
            self.stats.overlap_hidden_seconds += min(
                work, self.gpu_batch_time_s
            )
            # GPU compute starts when the overlap window opens — the
            # trace shows maintainer-track work riding underneath it.
            self.tracer.add_span(
                "gpu.compute",
                start=start,
                duration=self.gpu_batch_time_s,
                track="gpu",
                batch=batch_id,
                hidden_s=min(work, self.gpu_batch_time_s),
            )
        return results

    def push(
        self, keys: Sequence[int], grads: np.ndarray | None, batch_id: int
    ) -> int:
        """Forward a push and invalidate every touched buffered key.

        Invalidation is the first half of the staleness invariant: a
        pushed key's buffered copy is stale and must never be served
        again. :meth:`end_batch` (eager) or the next
        :meth:`begin_batch` (lazy) re-pulls it.
        """
        updated = self.backend.push(keys, grads, batch_id)
        for key in keys:
            key = int(key)
            self._pushed.add(key)
            if self._buffer.pop(key, None) is not None:
                self.stats.invalidated_keys += 1
        return updated

    def end_batch(self, batch_id: int) -> None:
        """Patch pushed window keys and prune the buffer.

        With eager patching, every pushed key still scheduled inside
        the lookahead window is re-pulled now (tagged ``batch_id + 1``,
        after this batch's maintenance round), restoring the second
        half of the staleness invariant off the next batch's critical
        path. The buffer is then pruned to the window, bounding it to
        roughly ``lookahead`` batches' worth of distinct keys.
        """
        if self.config.patch and self.config.enabled:
            to_patch = sorted(self._pushed & self._window)
            if to_patch:
                with self.tracer.span(
                    "prefetch.patch",
                    track="prefetch",
                    batch=batch_id,
                    keys=len(to_patch),
                ):
                    self._pull_into_buffer(to_patch, batch_id + 1)
                self.stats.patched_keys += len(to_patch)
        if self._window:
            self._buffer = {
                key: row
                for key, row in self._buffer.items()
                if key in self._window
            }
        else:
            self._buffer.clear()
        self._pushed.clear()
        self.stats.batches += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def buffered_keys(self) -> int:
        """Distinct keys currently held in the lookahead buffer."""
        return len(self._buffer)

    def validate(self) -> None:
        """No buffered key may be marked pushed-but-unpatched."""
        stale = self._pushed & self._buffer.keys()
        if stale:
            raise ServerError(
                f"staleness invariant violated for keys {sorted(stale)[:8]}"
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _missing_in_order(self, flat: np.ndarray) -> list[int]:
        """Unique keys absent from the buffer, first-appearance order."""
        seen: set[int] = set()
        missing: list[int] = []
        for key in flat.tolist():
            key = int(key)
            if key in seen or key in self._buffer:
                continue
            seen.add(key)
            missing.append(key)
        return missing

    def _peek_window(self, batch_id: int) -> set[int]:
        """Deduplicated keys of batches ``batch_id+1 .. batch_id+L``."""
        last = batch_id + self.config.lookahead
        if self.horizon is not None:
            last = min(last, self.horizon)
        window: set[int] = set()
        for future in range(batch_id + 1, last + 1):
            keys = np.asarray(self.keys_for_batch(future)).reshape(-1)
            window.update(int(k) for k in keys.tolist())
        return window

    def _pull_into_buffer(self, keys: list[int], tag: int) -> None:
        result = self.backend.pull(keys, tag)
        if result.weights is None:
            raise ConfigError(
                "prefetch pipeline requires a value-mode backend"
            )
        for i, key in enumerate(keys):
            self._buffer[int(key)] = np.array(result.weights[i], copy=True)
