"""The formal parameter-server backend protocols.

Every embedding store a trainer can run against — the in-process
:class:`~repro.core.server.OpenEmbeddingServer`, the wire-level
:class:`~repro.network.frontend.RemotePSClient`, and the baselines in
:mod:`repro.baselines` — implements :class:`TrainBackend`. Trainers,
the prefetch pipeline and the simulators accept *only* this protocol,
so any conforming backend is interchangeable; tests assert that
training the same model over different backends yields bit-identical
weights.

The surface is split by role:

* :class:`ReadBackend` — what a *reader* needs: ``pull`` (training-order
  reads that feed the cache), ``lookup`` (snapshot-pinned serving
  reads), and the ``num_entries`` / ``latest_completed_batch`` /
  ``latest_serving_snapshot`` / ``checkpoints_completed``
  introspection properties. The online
  inference tier (:class:`~repro.dlrm.hps.HierarchicalPS`,
  :meth:`~repro.dlrm.serving.InferenceSession.from_backend`) requires
  only this.
* :class:`TrainBackend` — a :class:`ReadBackend` that can also mutate:
  ``push`` / ``maintain`` plus checkpoint control and
  ``state_snapshot``. Trainers require this.

Both protocols are structural (:class:`typing.Protocol`): backends do
not inherit from them, they merely expose the right surface, which
``isinstance(backend, TrainBackend)`` verifies at runtime thanks to
``@runtime_checkable``. :func:`check_backend` validates either role
with a friendlier error.

``PSBackend`` — the pre-split name for the whole surface — remains
importable as a deprecated alias of :class:`TrainBackend` and warns on
first access.

``maintain`` returns ``list[MaintainResult]`` — one element per shard —
on every backend. Baselines without deferred maintenance return an
empty list (nothing was maintained), and the remote client wires the
per-shard counts back through the Maintain RPC; use
:func:`aggregate_maintain` to collapse any backend's return value into
one summed :class:`~repro.core.cache.MaintainResult`.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.cache import MaintainResult, PullResult
from repro.core.serving_backend import LookupResult

#: Method names every reader must expose (used by conformance tests).
READ_BACKEND_METHODS = (
    "pull",
    "lookup",
)

#: Read-only attributes every reader must expose.
READ_BACKEND_PROPERTIES = (
    "num_entries",
    "latest_completed_batch",
    "latest_serving_snapshot",
    "checkpoints_completed",
)

#: Additional method names a trainable backend must expose.
TRAIN_BACKEND_METHODS = (
    "push",
    "maintain",
    "request_checkpoint",
    "barrier_checkpoint",
    "complete_pending_checkpoints",
    "state_snapshot",
)

#: The full (train-role) method surface — kept for back-compat with
#: pre-split callers that iterated the fat-protocol tuples.
PS_BACKEND_METHODS = READ_BACKEND_METHODS + TRAIN_BACKEND_METHODS

#: The full (train-role) property surface.
PS_BACKEND_PROPERTIES = READ_BACKEND_PROPERTIES


@runtime_checkable
class ReadBackend(Protocol):
    """Structural protocol of a read-only embedding backend.

    Two read paths with different contracts:

    * ``pull(keys, b)`` — the *training* read: serves the live (newest)
      weights and feeds the cache's access stream for batch ``b``;
    * ``lookup(keys, snapshot_id)`` — the *serving* read: pinned to a
      Checkpointed Batch ID so concurrent training never tears a row,
      and side-effect-free on cache state.
    """

    def pull(self, keys: Sequence[int], batch_id: int) -> PullResult:
        """Gather live weights for ``keys``, in request order."""
        ...

    def lookup(
        self, keys: Sequence[int], snapshot_id: int | None = None
    ) -> LookupResult:
        """Snapshot-pinned serving read of ``keys``, in request order."""
        ...

    @property
    def num_entries(self) -> int:
        """Distinct embedding entries stored."""
        ...

    @property
    def latest_completed_batch(self) -> int:
        """Newest batch whose updates fully applied (-1 before training)."""
        ...

    @property
    def latest_serving_snapshot(self) -> int:
        """Newest checkpoint completed by every shard (-1 if none)."""
        ...

    @property
    def checkpoints_completed(self) -> int:
        """Monotone count of completed checkpoints.

        Checkpoint ids are batch ids (not consecutive), so "at most k
        checkpoints stale" can only be measured against this counter.
        """
        ...


@runtime_checkable
class TrainBackend(ReadBackend, Protocol):
    """Structural protocol of a trainable embedding parameter server.

    The synchronous-batch contract (Figure 5):

    1. ``pull(keys, b)`` for every worker of batch ``b`` — never
       reorders the cache;
    2. ``maintain(b)`` once all of batch ``b``'s pulls are in — the
       deferred cache-maintenance round;
    3. ``push(keys, grads, b)`` applies the batch's gradients.

    Checkpoint control (``request_checkpoint`` queues, completion is
    opportunistic; ``barrier_checkpoint`` forces completion) and
    introspection (``state_snapshot``) round out the surface.
    """

    def push(
        self, keys: Sequence[int], grads: np.ndarray | None, batch_id: int
    ) -> int:
        """Apply gradients for ``keys``; returns distinct entries updated."""
        ...

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """Run the deferred maintenance round; one result per shard."""
        ...

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """Queue a checkpoint of ``batch_id`` (default: newest trained)."""
        ...

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Checkpoint and synchronously complete (a training barrier)."""
        ...

    def complete_pending_checkpoints(self) -> None:
        """Force every queued checkpoint to complete."""
        ...

    def state_snapshot(self) -> dict[int, np.ndarray]:
        """Live weights of every key.

        Training/debug-only: the result is *not* checkpoint-consistent —
        it reads whatever each shard holds right now, so rows pushed by
        an in-flight batch are visible. Serving and model export must go
        through the snapshot-pinned ``lookup`` path instead (see
        :mod:`repro.core.serving_backend` and
        :func:`repro.dlrm.serving.export_model`).
        """
        ...


_EMPTY = MaintainResult(
    processed=0, loads=0, flushes=0, evictions=0, checkpoints_completed=0
)


def aggregate_maintain(
    results: Iterable[MaintainResult] | MaintainResult | None,
) -> MaintainResult:
    """Collapse a backend's ``maintain`` return into one summed result.

    Accepts the protocol's ``list[MaintainResult]``, a bare
    :class:`MaintainResult` (single-shard components such as
    :class:`~repro.core.ps_node.PSNode`), or ``None`` (legacy
    maintenance-free backends), so callers can account maintenance work
    uniformly without caring which backend produced it.
    """
    if results is None:
        return _EMPTY
    if isinstance(results, MaintainResult):
        return results
    processed = loads = flushes = evictions = completed = 0
    for result in results:
        processed += result.processed
        loads += result.loads
        flushes += result.flushes
        evictions += result.evictions
        completed += result.checkpoints_completed
    return MaintainResult(
        processed=processed,
        loads=loads,
        flushes=flushes,
        evictions=evictions,
        checkpoints_completed=completed,
    )


_ROLE_SURFACES = {
    "read": (READ_BACKEND_METHODS, READ_BACKEND_PROPERTIES, "ReadBackend"),
    "train": (PS_BACKEND_METHODS, PS_BACKEND_PROPERTIES, "TrainBackend"),
}


def check_backend(backend: object, role: str = "train"):
    """Validate ``backend`` against the protocol for ``role``; returns it.

    Args:
        backend: the candidate object.
        role: ``"train"`` (default) checks the full
            :class:`TrainBackend` surface; ``"read"`` checks only the
            :class:`ReadBackend` surface the serving tier needs.

    Raises:
        ValueError: ``role`` is not ``"read"`` or ``"train"``.
        TypeError: the object is missing part of the surface, with the
            missing names spelled out (friendlier than a bare
            ``isinstance`` failure).
    """
    try:
        methods, properties, proto_name = _ROLE_SURFACES[role]
    except KeyError:
        raise ValueError(
            f"unknown backend role {role!r}; choose 'read' or 'train'"
        ) from None
    missing = [
        name
        for name in (*methods, *properties)
        if not hasattr(backend, name)
    ]
    if missing:
        raise TypeError(
            f"{type(backend).__name__} does not implement {proto_name}; "
            f"missing: {', '.join(sorted(missing))}"
        )
    return backend


def __getattr__(name: str):
    # Deprecated alias kept importable without triggering the warning at
    # module-import time (so merely importing repro.core stays silent).
    if name == "PSBackend":
        warnings.warn(
            "PSBackend is deprecated; use TrainBackend (trainer-facing) "
            "or ReadBackend (serving-facing) from repro.core.backend",
            DeprecationWarning,
            stacklevel=2,
        )
        return TrainBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
