"""Figure 10: workload fitting and distribution adjustment.

Sorts features by access frequency, fits the exponential-decay model
``freq = a * exp(-b * rank/N)`` (the paper's fit), and generates the
more-/less-skewed variants used by Figure 11, keeping total accesses
fixed while the decay rate changes.
"""

from benchmarks.conftest import run_once
from repro.simulation.profiles import DEFAULT_PROFILE
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import AccessTraceAnalyzer

SKEWS = {"less skew": 0.85, "original": 1.0, "more skew": 1.15}


def test_fig10_distribution_fit(benchmark, report):
    profile = DEFAULT_PROFILE

    def run():
        fits = {}
        for name, temperature in SKEWS.items():
            generator = WorkloadGenerator(profile.workload_config(temperature))
            stream = generator.access_stream(num_batches=150, batch_size=256)
            analyzer = AccessTraceAnalyzer(stream)
            a, b = analyzer.fit_exponential()
            fits[name] = (a, b, analyzer.total_accesses)
        return fits

    fits = run_once(benchmark, run)
    report.title(
        "fig10_distribution",
        "Figure 10: exponential fit freq = a*exp(-b*rank/N) per skew variant",
    )
    for name, (a, b, total) in fits.items():
        report.row(
            name,
            "exp decay",
            f"a={a:9.1f} b={b:6.1f}",
            note=f"({total} accesses)",
        )

    # Total access volume is held constant across variants (the paper
    # adjusts the distribution "while keeping the total amount of
    # accesses the same").
    totals = {total for *_, total in fits.values()}
    assert len(totals) == 1
    # More skew -> faster decay (larger b).
    assert fits["more skew"][1] > fits["original"][1] > fits["less skew"][1]
    # The head dominates: fitted a (head frequency) far exceeds the tail.
    assert fits["original"][0] > 50
