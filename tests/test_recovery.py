"""Node recovery: scan, discard, rebuild — Section V-C / Figure 14."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.entry import Location
from repro.core.recovery import estimate_recovery_seconds, recover_node
from repro.errors import RecoveryError

from tests.conftest import DIM, make_node


def grads(n, value=1.0):
    return np.full((n, DIM), value, dtype=np.float32)


def train(node, keys, batch):
    node.pull(keys, batch)
    node.maintain(batch)
    node.push(keys, grads(len(keys)), batch)


def node_configs(node):
    return node.server_config, node.cache_config


class TestRecoverNode:
    def test_roundtrip_restores_checkpoint_state(self):
        node = make_node()
        keys = list(range(10))
        train(node, keys, 0)
        node.barrier_checkpoint()
        snapshot = node.state_snapshot()
        train(node, keys, 1)  # post-checkpoint updates to discard
        pool = node.crash()
        server_config, cache_config = node_configs(node)
        recovered, report = recover_node(pool, server_config, cache_config)
        assert report.checkpoint_batch_id == 0
        assert report.entries_recovered == 10
        restored = recovered.state_snapshot()
        for key, weights in snapshot.items():
            assert np.array_equal(restored[key], weights)

    def test_recovered_entries_are_pmem_resident(self):
        node = make_node()
        train(node, [1, 2], 0)
        node.barrier_checkpoint()
        pool = node.crash()
        recovered, __ = recover_node(pool, *node_configs(node))
        assert recovered.cache.cached_entries == 0
        for key in (1, 2):
            assert recovered.cache.index.location_of(key) == Location.PMEM

    def test_keys_created_after_checkpoint_dropped(self):
        node = make_node()
        train(node, [1, 2], 0)
        node.barrier_checkpoint()
        train(node, [1, 2, 3], 1)
        node.cache.flush_all()  # key 3 is durable but post-checkpoint
        pool = node.crash()
        recovered, report = recover_node(pool, *node_configs(node))
        assert 3 not in recovered.cache.index
        assert report.versions_discarded > 0

    def test_recovery_without_checkpoint_fails(self):
        node = make_node()
        train(node, [1], 0)
        pool = node.crash()
        with pytest.raises(RecoveryError):
            recover_node(pool, *node_configs(node))

    def test_target_newer_than_durable_rejected(self):
        node = make_node()
        train(node, [1], 0)
        node.barrier_checkpoint()
        pool = node.crash()
        with pytest.raises(RecoveryError):
            recover_node(pool, *node_configs(node), target_batch_id=5)

    def test_recover_to_older_target(self):
        node = make_node()
        keys = [1, 2]
        train(node, keys, 0)
        node.barrier_checkpoint()
        state_at_0 = node.state_snapshot()
        train(node, keys, 1)
        node.coordinator.set_external_barrier(0)  # cluster held at 0
        node.request_checkpoint(1)
        node.cache.complete_pending_checkpoints()
        pool = node.crash()
        recovered, report = recover_node(
            pool, *node_configs(node), target_batch_id=0
        )
        assert report.checkpoint_batch_id == 0
        restored = recovered.state_snapshot()
        for key in keys:
            assert np.array_equal(restored[key], state_at_0[key])

    def test_training_continues_after_recovery(self):
        node = make_node()
        train(node, [1, 2], 0)
        node.barrier_checkpoint()
        pool = node.crash()
        recovered, __ = recover_node(pool, *node_configs(node))
        train(recovered, [1, 2, 3], 1)
        assert recovered.num_entries == 3

    def test_coordinator_state_after_recovery(self):
        node = make_node()
        train(node, [1], 0)
        node.barrier_checkpoint()
        pool = node.crash()
        recovered, __ = recover_node(pool, *node_configs(node))
        assert recovered.coordinator.last_completed == 0
        assert recovered.latest_completed_batch == 0
        # A fresh checkpoint request for a newer batch must work.
        train(recovered, [1], 1)
        recovered.barrier_checkpoint()
        assert recovered.coordinator.last_completed == 1


class TestRecoveryTiming:
    def test_time_scales_with_entries(self):
        small = estimate_recovery_seconds(entries=1000, versions=1000, entry_bytes=256)
        large = estimate_recovery_seconds(entries=10_000, versions=10_000, entry_bytes=256)
        assert large > small

    def test_parallelism_divides_time(self):
        solo = estimate_recovery_seconds(entries=10_000, versions=10_000, entry_bytes=256)
        sharded = estimate_recovery_seconds(
            entries=10_000, versions=10_000, entry_bytes=256, parallelism=4
        )
        assert sharded == pytest.approx(solo / 4)

    def test_paper_scale_matches_figure_14(self):
        """At the paper's scale (2.1 B entries, 256 B each) the model
        should land near the reported 380.2 s."""
        seconds = estimate_recovery_seconds(
            entries=2_100_000_000, versions=2_100_000_000, entry_bytes=256
        )
        assert 330 < seconds < 430

    def test_invalid_parallelism(self):
        node = make_node()
        train(node, [1], 0)
        node.barrier_checkpoint()
        pool = node.crash()
        with pytest.raises(RecoveryError):
            recover_node(pool, *node_configs(node), parallelism=0)
