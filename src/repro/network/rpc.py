"""RPC channel and server dispatcher over the simulated link.

A :class:`RpcChannel` is one worker's connection to one PS node: it
frames a request, charges the link for the request bytes, invokes the
server's handler, charges the link for the response bytes, and advances
the shared simulated clock. Traffic statistics accumulate per channel
so benchmarks can report real wire bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.network.messages import MessageError, decode_message, encode_message
from repro.simulation.clock import SimClock
from repro.simulation.network import NetworkModel


@dataclass
class RpcStats:
    """Per-channel traffic counters."""

    calls: int = 0
    request_bytes: int = 0
    response_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes


class RpcServer:
    """Server-side dispatch: message type -> handler.

    Handlers receive the decoded request and return a response message.
    """

    def __init__(self) -> None:
        self._handlers: dict[int, Callable] = {}

    def register(self, message_type: int, handler: Callable) -> None:
        if message_type in self._handlers:
            raise ReproError(f"handler for type 0x{message_type:02x} already set")
        self._handlers[message_type] = handler

    def dispatch(self, frame: bytes) -> bytes:
        """Decode one request frame, run its handler, encode the reply."""
        request = decode_message(frame)
        handler = self._handlers.get(type(request).TYPE)
        if handler is None:
            raise MessageError(
                f"no handler registered for {type(request).__name__}"
            )
        response = handler(request)
        return encode_message(response)


class RpcChannel:
    """A worker's connection to one PS node.

    Args:
        server: the node-side dispatcher.
        network: the shared link model (bytes -> seconds).
        clock: simulated clock advanced by each call's wire time; pass
            None to skip timing (pure-functional use).
    """

    def __init__(
        self,
        server: RpcServer,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
    ):
        self.server = server
        self.network = network or NetworkModel()
        self.clock = clock
        self.stats = RpcStats()

    def call(self, request, concurrent_flows: int = 1):
        """Round-trip one request; returns the decoded response."""
        frame = encode_message(request)
        elapsed = self.network.transfer_time(len(frame), concurrent_flows)
        reply = self.server.dispatch(frame)
        elapsed += self.network.transfer_time(len(reply), concurrent_flows)
        if self.clock is not None:
            self.clock.advance(elapsed)
        self.stats.calls += 1
        self.stats.request_bytes += len(frame)
        self.stats.response_bytes += len(reply)
        return decode_message(reply)
