"""Stat-bundle algebra: merge accumulation and reset round-trips.

Multi-node aggregation relies on ``merge`` being exact addition and on
``reset`` returning a bundle to its zero element — these tests pin the
algebra for every bundle the registry bridge hoists.
"""

import dataclasses

import pytest

from repro.obs.registry import MetricsRegistry, collect_bundle
from repro.simulation.metrics import (
    CacheStats,
    Metrics,
    PrefetchStats,
    RpcReliabilityStats,
)


def _fill(bundle, start: int) -> None:
    """Give every numeric field a distinct nonzero value."""
    for i, field in enumerate(dataclasses.fields(bundle)):
        current = getattr(bundle, field.name)
        if isinstance(current, float):
            setattr(bundle, field.name, float(start + i) / 2.0)
        elif isinstance(current, int):
            setattr(bundle, field.name, start + i)


@pytest.mark.parametrize(
    "bundle_cls", [CacheStats, RpcReliabilityStats, PrefetchStats]
)
class TestBundleAlgebra:
    def test_merge_is_fieldwise_sum(self, bundle_cls):
        a, b = bundle_cls(), bundle_cls()
        _fill(a, 1)
        _fill(b, 100)
        expected = {
            f.name: getattr(a, f.name) + getattr(b, f.name)
            for f in dataclasses.fields(a)
        }
        a.merge(b)
        for name, value in expected.items():
            assert getattr(a, name) == pytest.approx(value), name

    def test_merge_zero_is_identity(self, bundle_cls):
        a = bundle_cls()
        _fill(a, 5)
        before = dataclasses.asdict(a)
        a.merge(bundle_cls())
        assert dataclasses.asdict(a) == before

    def test_reset_roundtrip(self, bundle_cls):
        a = bundle_cls()
        _fill(a, 9)
        a.reset()
        assert dataclasses.asdict(a) == dataclasses.asdict(bundle_cls())

    def test_merge_then_reset_then_merge_again(self, bundle_cls):
        """reset() must not leave residue that later merges compound."""
        a, b = bundle_cls(), bundle_cls()
        _fill(b, 3)
        a.merge(b)
        a.reset()
        a.merge(b)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestMetricsBundle:
    def _metrics(self, seed: int) -> Metrics:
        m = Metrics()
        _fill(m.cache, seed)
        _fill(m.rpc, seed + 10)
        _fill(m.prefetch, seed + 20)
        m.pulls = seed
        m.updates = seed + 1
        m.entries_created = seed + 2
        m.checkpoints_completed = seed + 3
        m.pmem_flush_entries = seed + 4
        m.pmem_load_entries = seed + 5
        return m

    def test_merge_accumulates_every_sub_bundle(self):
        a, b = self._metrics(1), self._metrics(50)
        expected_pulls = a.pulls + b.pulls
        expected_hits = a.cache.hits + b.cache.hits
        expected_retries = a.rpc.retries + b.rpc.retries
        expected_demand = a.prefetch.demand_keys + b.prefetch.demand_keys
        a.merge(b)
        assert a.pulls == expected_pulls
        assert a.cache.hits == expected_hits
        assert a.rpc.retries == expected_retries
        assert a.prefetch.demand_keys == expected_demand

    def test_merge_does_not_touch_traces(self):
        a, b = Metrics(), Metrics()
        b.trace.enabled = True
        b.trace.record(0.5, "pull", 3)
        a.merge(b)
        assert a.trace.events == []

    def test_reset_clears_prefetch_too(self):
        m = self._metrics(4)
        m.trace.enabled = True
        m.trace.record(0.1, "pull")
        m.reset()
        assert m.prefetch.demand_keys == 0
        assert m.cache.hits == 0 and m.pulls == 0
        assert m.trace.events == []

    def test_registry_roundtrip_matches_merged_bundle(self):
        """collect per-node then sum across labels == merge then collect."""
        nodes = [self._metrics(1), self._metrics(30)]
        per_node = MetricsRegistry()
        for i, bundle in enumerate(nodes):
            collect_bundle(per_node, bundle, {"node": str(i)})
        merged = Metrics()
        for bundle in nodes:
            merged.merge(bundle)
        rolled = MetricsRegistry()
        collect_bundle(rolled, merged, {"node": "all"})
        for name, __, metric in rolled.items():
            if name == "repro_cache_miss_rate":
                continue  # gauge: a ratio, not additive
            total = sum(
                m.value for n, __, m in per_node.items() if n == name
            )
            assert total == pytest.approx(metric.value), name
