"""Figure 7: pipelined cache management (no checkpoints).

Paper (ratio to DRAM-PS at the same GPU count):
  PMem-OE:   1.012 (4), 1.043 (8), 1.087 (16)
  Ori-Cache: 1.24 (4),  1.56 (8),  2.27 (16)
and DRAM-PS's own epoch shrinks 40 % / 65 % going 4 -> 8 / 16 GPUs.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import pytest

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind

PAPER_OE = {4: 1.012, 8: 1.043, 16: 1.087}
PAPER_ORI = {4: 1.24, 8: 1.56, 16: 2.27}
PAPER_DRAM_SCALING = {8: 0.60, 16: 0.35}


def test_fig7_pipelined_cache(benchmark, report):
    def run():
        epochs = {}
        for workers in (4, 8, 16):
            epochs[workers] = {
                system: simulate_epoch(system, workers)
                for system in (
                    SystemKind.DRAM_PS,
                    SystemKind.PMEM_OE,
                    SystemKind.ORI_CACHE,
                )
            }
        return epochs

    epochs = run_once(benchmark, run)
    report.title("fig7_pipeline", "Figure 7: training time without checkpoints")
    for workers, row in epochs.items():
        dram = row[SystemKind.DRAM_PS].sim_seconds
        oe = row[SystemKind.PMEM_OE].sim_seconds / dram
        ori = row[SystemKind.ORI_CACHE].sim_seconds / dram
        report.row(
            f"PMem-OE   @ {workers} GPUs", f"{PAPER_OE[workers]:.3f}x", f"{oe:.3f}x"
        )
        report.row(
            f"Ori-Cache @ {workers} GPUs", f"{PAPER_ORI[workers]:.2f}x", f"{ori:.2f}x"
        )
    dram4 = epochs[4][SystemKind.DRAM_PS].sim_seconds
    for workers, paper in PAPER_DRAM_SCALING.items():
        measured = epochs[workers][SystemKind.DRAM_PS].sim_seconds / dram4
        report.row(
            f"DRAM-PS epoch {workers}/{4} GPUs", f"{paper:.2f}x", f"{measured:.2f}x"
        )

    for workers in (4, 8, 16):
        dram = epochs[workers][SystemKind.DRAM_PS].sim_seconds
        oe = epochs[workers][SystemKind.PMEM_OE].sim_seconds / dram
        ori = epochs[workers][SystemKind.ORI_CACHE].sim_seconds / dram
        # PMem-OE tracks DRAM-PS closely; Ori-Cache falls away.
        assert oe == pytest.approx(PAPER_OE[workers], abs=0.06)
        assert ori == pytest.approx(PAPER_ORI[workers], rel=0.25)
        assert oe < ori


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    if metrics["oe_ratio"] >= metrics["ori_ratio"]:
        return ["pipelined PMem-OE should beat the inline Ori-Cache"]
    return []


@register(
    "fig7_pipeline",
    params=[Param("workers", "int", 16)],
    headline={
        "oe_ratio": Headline(direction="lower", max_regression=0.05),
        "ori_ratio": Headline(direction="lower", max_regression=0.10),
    },
    check=_check,
)
def entry(*, workers):
    """Checkpoint-free training-time ratios to DRAM-PS: pipelined
    PMem-OE vs the inline Ori-Cache."""
    dram = simulate_epoch(SystemKind.DRAM_PS, workers).sim_seconds
    oe = simulate_epoch(SystemKind.PMEM_OE, workers).sim_seconds
    ori = simulate_epoch(SystemKind.ORI_CACHE, workers).sim_seconds
    return {"oe_ratio": oe / dram, "ori_ratio": ori / dram}


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig7_pipeline"))
