"""Ablation: always-flush (the paper) vs dirty-only eviction writeback.

Algorithm 2 flushes every eviction victim to PMem whether or not it was
updated since its last flush. Tracking dirtiness skips clean
write-backs — fewer PMem writes at the cost of a dirty bit per entry.
Because DLRM pulls and updates come in pairs, most accessed entries ARE
dirty, so the paper's simpler design gives up little; this bench
quantifies exactly how much at the benchmark operating point.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE


def test_ablation_dirty_tracking(benchmark, report):
    def run():
        base_cache = DEFAULT_PROFILE.cache_config(paper_mb=2048)
        always = simulate_epoch(SystemKind.PMEM_OE, 16, cache=base_cache)
        tracked = simulate_epoch(
            SystemKind.PMEM_OE,
            16,
            cache=DEFAULT_PROFILE.cache_config(paper_mb=2048, track_dirty=True),
        )
        return always, tracked

    always, tracked = run_once(benchmark, run)
    report.title(
        "ablation_dirty_tracking",
        "Ablation: eviction write-back policy (16 GPUs, 2 GB cache)",
    )
    report.row("epoch, always-flush (paper)", "-", f"{always.sim_seconds:.2f} s")
    report.row("epoch, dirty-tracked", "-", f"{tracked.sim_seconds:.2f} s")
    saving = 1 - tracked.sim_seconds / always.sim_seconds
    report.row("epoch-time saving", "expected small", f"{saving:.2%}")

    # Dirty tracking can only help, and because pull/update pairs make
    # most victims dirty anyway, the win stays small — supporting the
    # paper's choice of the simpler always-flush design.
    assert tracked.sim_seconds <= always.sim_seconds * (1 + 1e-9)
    assert saving < 0.10


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["saving"] < 0:
        failures.append("dirty tracking made the epoch slower")
    if metrics["saving"] >= 0.10:
        failures.append(
            f"saving {metrics['saving']:.1%} too large — pull/update pairing "
            "should make most victims dirty"
        )
    return failures


@register(
    "ablation_dirty_tracking",
    params=[
        Param("cache_mb", "float", 2048.0),
        Param("workers", "int", 16),
    ],
    headline={"saving": Headline(direction="higher", max_regression=0.10,
                                 noise=0.005)},
    check=_check,
)
def entry(*, cache_mb, workers):
    """Epoch-time saving of dirty-only eviction write-back over the
    paper's always-flush design."""
    always = simulate_epoch(
        SystemKind.PMEM_OE, workers,
        cache=DEFAULT_PROFILE.cache_config(paper_mb=cache_mb),
    )
    tracked = simulate_epoch(
        SystemKind.PMEM_OE, workers,
        cache=DEFAULT_PROFILE.cache_config(paper_mb=cache_mb, track_dirty=True),
    )
    return {"saving": 1 - tracked.sim_seconds / always.sim_seconds}


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_dirty_tracking"))
