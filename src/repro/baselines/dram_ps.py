"""'DRAM-PS': the classic pure-DRAM parameter server baseline.

Table III row 1: a DRAM-based hash of embedding entries, checkpointed
with the incremental scheme to a separate checkpoint device. This is
the paper's performance upper bound (no PMem on any path) and its cost
lower bound's counterpoint (DRAM capacity is expensive — Table V needs
two large-DRAM servers where one PMem server suffices).

The node shares the deterministic key-seeded initializer and PS-side
optimizer with :class:`repro.core.ps_node.PSNode`, so weight-for-weight
comparisons in tests are exact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.config import ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.optimizers import PSOptimizer, PSSGD
from repro.core.serving_backend import LookupResult
from repro.baselines.incremental import CheckpointStats, IncrementalCheckpointer
from repro.errors import (
    CheckpointError,
    KeyNotFoundError,
    RecoveryError,
    ServerError,
)
from repro.pmem.pool import PmemPool
from repro.simulation.device import MemoryDevice, PMEM_SPEC
from repro.simulation.metrics import Metrics


class DRAMPSNode:
    """A pure-DRAM PS node with incremental checkpointing.

    Args:
        server_config: dim / seed / init scale (pool sizing unused —
            everything lives in DRAM).
        optimizer: PS-side update rule.
        checkpoint_pool: the checkpoint device; defaults to a PMem pool
            (Section VI-A fixes PMem as every configuration's
            checkpoint device).
        metadata_only: skip weight arrays (performance simulations).
        dram_capacity_bytes: optional hard DRAM budget; exceeding it
            raises — this is how the "500 GB model does not fit"
            scenario of Section VI-F is expressed.
    """

    def __init__(
        self,
        server_config: ServerConfig | None = None,
        optimizer: PSOptimizer | None = None,
        checkpoint_pool: PmemPool | None = None,
        metadata_only: bool = False,
        dram_capacity_bytes: int | None = None,
    ):
        self.server_config = server_config or ServerConfig()
        self.optimizer = optimizer or PSSGD()
        self.metadata_only = metadata_only
        self.dram_capacity_bytes = dram_capacity_bytes
        self.metrics = Metrics()
        dim = self.server_config.embedding_dim
        self.entry_bytes = (dim + self.optimizer.state_width(dim)) * 4
        self._weights: dict[int, np.ndarray | None] = {}
        self._opt_state: dict[int, np.ndarray | None] = {}
        self.latest_completed_batch = -1
        if checkpoint_pool is None:
            checkpoint_pool = PmemPool(
                self.server_config.pmem_capacity_bytes,
                MemoryDevice(PMEM_SPEC),
            )
        self.checkpointer = IncrementalCheckpointer(
            checkpoint_pool, self.entry_bytes, self._read_state
        )

    # ------------------------------------------------------------------
    # PS protocol
    # ------------------------------------------------------------------

    def pull(self, keys: Sequence[int], batch_id: int) -> PullResult:
        """Serve a pull; every access is a DRAM hit."""
        dim = self.server_config.embedding_dim
        value_mode = not self.metadata_only
        out = np.empty((len(keys), dim), dtype=np.float32) if value_mode else None
        created = 0
        for i, key in enumerate(keys):
            if key not in self._weights:
                if not self.server_config.auto_create:
                    raise KeyNotFoundError(key)
                self._create(key)
                created += 1
            if out is not None:
                out[i] = self._weights[key]
        self.metrics.pulls += len(keys)
        self.metrics.cache.hits += len(keys) - created
        self.metrics.entries_created += created
        return PullResult(
            weights=out, hits=len(keys) - created, misses=0, created=created
        )

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """No cache tier to maintain; returns an empty shard list."""
        return []

    @property
    def latest_serving_snapshot(self) -> int:
        """Batch id of the newest durable incremental checkpoint."""
        return self.checkpointer.last_checkpoint_batch

    @property
    def checkpoints_completed(self) -> int:
        """Monotone count of committed checkpoints (staleness clock)."""
        return self.checkpointer.checkpoint_epoch

    def lookup(self, keys: Sequence[int], snapshot_id: int | None = None) -> LookupResult:
        """Snapshot-pinned read from the durable checkpoint.

        The incremental checkpointer retains only the *newest* committed
        checkpoint (each dump overwrites the per-key ``("ckpt", key)``
        entry), so the only servable pin is
        :attr:`latest_serving_snapshot`; older pins raise. Keys never
        checkpointed serve the deterministic key-seeded initializer.

        Raises:
            ServerError: metadata-only node.
            CheckpointError: no committed checkpoint, or ``snapshot_id``
                names any checkpoint other than the retained one.
        """
        if self.metadata_only:
            raise ServerError("lookup requires a value-mode node")
        latest = self.checkpointer.last_checkpoint_batch
        if snapshot_id is None:
            snapshot_id = latest
        if snapshot_id < 0 or snapshot_id != latest:
            raise CheckpointError(
                f"snapshot {snapshot_id} is not servable (incremental "
                f"checkpointing retains only checkpoint {latest})"
            )
        cfg = self.server_config
        dim = cfg.embedding_dim
        n = len(keys)
        weights = np.empty((n, dim), dtype=np.float32)
        hits = cold = 0
        for i, key in enumerate(keys):
            try:
                stored = self.checkpointer.read_entry(int(key))
            except KeyError:
                stored = None
            if stored is None:
                rng = np.random.default_rng((cfg.seed, int(key)))
                weights[i] = rng.uniform(
                    -cfg.initializer_scale, cfg.initializer_scale, dim
                ).astype(np.float32)
                cold += 1
            else:
                weights[i] = np.asarray(stored)[:dim]
                hits += 1
        self.metrics.serving_lookups += 1
        self.metrics.serving_rows += n
        self.metrics.serving_cold_rows += cold
        return LookupResult(
            weights=weights,
            snapshot_id=snapshot_id,
            hits=hits,
            cold=cold,
            row_snapshots=np.full(n, snapshot_id, dtype=np.int64),
        )

    def push(
        self, keys: Sequence[int], grads: np.ndarray | None, batch_id: int
    ) -> int:
        """Apply pushed gradients (duplicates aggregated first)."""
        value_mode = not self.metadata_only
        if value_mode and grads is None:
            raise ServerError("value-mode DRAM-PS requires gradients on push")
        aggregated: dict[int, np.ndarray | None] = {}
        for i, key in enumerate(keys):
            if key not in self._weights:
                raise KeyNotFoundError(key)
            if not value_mode:
                aggregated[key] = None
            elif key in aggregated:
                aggregated[key] = aggregated[key] + grads[i]
            else:
                aggregated[key] = np.array(grads[i], copy=True)
        for key, grad in aggregated.items():
            if value_mode:
                self.optimizer.apply(self._weights[key], self._opt_state[key], grad)
        self.checkpointer.mark_dirty(aggregated)
        # Distinct entries updated, matching the return value (duplicate
        # keys in one push aggregate into a single update).
        self.metrics.updates += len(aggregated)
        self.latest_completed_batch = max(self.latest_completed_batch, batch_id)
        return len(aggregated)

    # ------------------------------------------------------------------
    # checkpoint / recovery
    # ------------------------------------------------------------------

    def checkpoint(self, batch_id: int | None = None) -> CheckpointStats:
        """Synchronous incremental checkpoint (training is paused)."""
        if batch_id is None:
            batch_id = self.latest_completed_batch
        stats = self.checkpointer.checkpoint(batch_id)
        self.metrics.checkpoints_completed += 1
        return stats

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """PSBackend checkpoint entry point.

        An incremental checkpoint has no deferred-completion machinery:
        the dump is synchronous, so requesting IS completing.

        Raises:
            CheckpointError: no trained batch to snapshot.
        """
        if batch_id is None:
            batch_id = self.latest_completed_batch
        if batch_id < 0:
            raise CheckpointError("no completed batch to checkpoint")
        self.checkpoint(batch_id)
        return batch_id

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Same as :meth:`request_checkpoint` (already synchronous)."""
        return self.request_checkpoint(batch_id)

    def complete_pending_checkpoints(self) -> None:
        """No-op: incremental checkpoints complete synchronously."""

    def crash(self) -> PmemPool:
        """Process death: ALL live state is volatile DRAM and is lost.

        Only the checkpoint pool survives.
        """
        self._weights.clear()
        self._opt_state.clear()
        pool = self.checkpointer.pool
        pool.crash()
        return pool

    @classmethod
    def recover(
        cls,
        checkpoint_pool: PmemPool,
        server_config: ServerConfig,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
    ) -> tuple["DRAMPSNode", int]:
        """Rebuild a node by replaying the checkpoint file into DRAM.

        Returns ``(node, checkpoint_batch_id)``.

        Raises:
            RecoveryError: no checkpoint was committed before the crash.
        """
        batch_id, state = IncrementalCheckpointer.restore_from_pool(checkpoint_pool)
        node = cls(
            server_config,
            optimizer,
            checkpoint_pool=checkpoint_pool,
            metadata_only=metadata_only,
        )
        dim = server_config.embedding_dim
        for key, stored in state.items():
            if stored is None:
                node._weights[key] = None
                node._opt_state[key] = None
            else:
                node._weights[key] = np.array(stored[:dim], copy=True)
                node._opt_state[key] = (
                    np.array(stored[dim:], copy=True) if stored.size > dim else None
                )
        node.latest_completed_batch = batch_id
        return node, batch_id

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._weights)

    @property
    def dram_bytes_used(self) -> int:
        return len(self._weights) * self.entry_bytes

    def read_weights(self, key: int) -> np.ndarray:
        if key not in self._weights:
            raise KeyNotFoundError(key)
        return np.array(self._weights[key], copy=True)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        return {
            key: np.array(weights, copy=True)
            for key, weights in self._weights.items()
            if weights is not None
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _create(self, key: int) -> None:
        if (
            self.dram_capacity_bytes is not None
            and self.dram_bytes_used + self.entry_bytes > self.dram_capacity_bytes
        ):
            raise MemoryError(
                f"DRAM-PS out of memory: {self.dram_bytes_used} bytes used, "
                f"capacity {self.dram_capacity_bytes}"
            )
        if self.metadata_only:
            self._weights[key] = None
            self._opt_state[key] = None
        else:
            cfg = self.server_config
            rng = np.random.default_rng((cfg.seed, key))
            self._weights[key] = rng.uniform(
                -cfg.initializer_scale, cfg.initializer_scale, cfg.embedding_dim
            ).astype(np.float32)
            self._opt_state[key] = self.optimizer.init_state(cfg.embedding_dim)
        self.checkpointer.mark_dirty([key])

    def _read_state(self, keys: Iterable[int]) -> dict[int, np.ndarray | None]:
        state: dict[int, np.ndarray | None] = {}
        for key in keys:
            weights = self._weights.get(key)
            opt_state = self._opt_state.get(key)
            if weights is None:
                state[key] = None
            elif opt_state is None:
                state[key] = np.array(weights, copy=True)
            else:
                state[key] = np.concatenate([weights, opt_state])
        return state
