"""Regression tests for the hot-path accounting and dtype bugfixes.

Covers the four bugs fixed alongside the arena refactor:

* decoded wire arrays are read-only views — the ownership contract is
  explicit and the update path works without mutating them;
* ``metrics.updates`` counts distinct entries (duplicates aggregate);
* a float64 gradient cannot perturb the float32 arithmetic;
* ``StatusResponse`` detail truncation respects UTF-8 boundaries.

Plus a deterministic roundtrip of the columnar migration payload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad, PSSGD
from repro.core.ps_node import PSNode
from repro.network.messages import (
    MigrateRequest,
    MigrateResponse,
    PushRequest,
    StatusResponse,
    decode_message,
    encode_message,
)

DIM = 4


def make_node(optimizer=None, arena=True) -> PSNode:
    entry_bytes = (DIM + (optimizer or PSSGD()).state_width(DIM)) * 4
    return PSNode(
        0,
        ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=3),
        CacheConfig(capacity_bytes=64 * entry_bytes, arena=arena),
        optimizer or PSSGD(lr=0.5),
    )


class TestReadonlyWirePush:
    def test_decoded_grads_are_readonly(self):
        msg = PushRequest(
            batch_id=0,
            keys=np.array([1, 2], dtype=np.uint64),
            grads=np.ones((2, DIM), dtype=np.float32),
        )
        decoded = decode_message(bytes(encode_message(msg)))
        with pytest.raises(ValueError):
            decoded.grads[0, 0] = 9.0
        with pytest.raises(ValueError):
            decoded.keys[0] = 9

    @pytest.mark.parametrize("arena", [True, False])
    def test_push_through_wire_path_matches_mutable_twin(self, arena):
        """The update path must not require writable request arrays:
        pushing decoded (frozen) views lands the same bits as pushing a
        writable copy — including with duplicate keys, where the
        aggregation adds rows together."""
        keys = [3, 5, 3, 7]
        rng = np.random.default_rng(11)
        grads = rng.standard_normal((len(keys), DIM)).astype(np.float32)
        frame = bytes(
            encode_message(
                PushRequest(
                    batch_id=0,
                    keys=np.asarray(keys, dtype=np.uint64),
                    grads=grads,
                )
            )
        )
        decoded = decode_message(frame)
        assert not decoded.grads.flags.writeable

        wire_node = make_node(arena=arena)
        twin_node = make_node(arena=arena)
        for node in (wire_node, twin_node):
            node.pull(keys, 0)
            node.maintain(0)
        wire_node.push(decoded.keys, decoded.grads, 0)
        twin_node.push(list(keys), grads.copy(), 0)
        for key in set(keys):
            assert np.array_equal(
                wire_node.cache.read_current_weights(key),
                twin_node.cache.read_current_weights(key),
            )


class TestDistinctUpdateAccounting:
    @pytest.mark.parametrize("arena", [True, False])
    def test_duplicate_keys_count_once(self, arena):
        node = make_node(arena=arena)
        keys = [1, 1, 2, 1, 2]
        node.pull(keys, 0)
        node.maintain(0)
        before = node.metrics.updates
        updated = node.push(
            keys, np.ones((len(keys), DIM), dtype=np.float32), 0
        )
        assert updated == 2  # distinct entries
        assert node.metrics.updates - before == updated


class TestDtypeStability:
    def test_adagrad_float64_gradient_matches_float32(self):
        """A float64 gradient used to make ``state += grad * grad``
        compute in float64 and truncate back — different bits from the
        float32 path. The aggregation-boundary coercion removes that."""
        opt = PSAdagrad(lr=0.1)
        w32 = np.full(DIM, 0.5, dtype=np.float32)
        s32 = opt.init_state(DIM)
        w64 = w32.copy()
        s64 = opt.init_state(DIM)
        g32 = np.full(DIM, 0.3, dtype=np.float32)
        for __ in range(10):
            opt.apply(w32, s32, g32)
            opt.apply(w64, s64, g32.astype(np.float64))
        assert w32.dtype == w64.dtype == np.float32
        assert np.array_equal(w32, w64)
        assert np.array_equal(s32, s64)

    def test_node_push_float64_matches_float32(self):
        a = make_node(PSAdagrad(lr=0.1))
        b = make_node(PSAdagrad(lr=0.1))
        keys = [1, 2, 1]
        grads = np.random.default_rng(5).standard_normal((3, DIM)).astype(np.float32)
        for node, g in ((a, grads), (b, grads.astype(np.float64))):
            node.pull(keys, 0)
            node.maintain(0)
            node.push(keys, g, 0)
        for key in (1, 2):
            assert np.array_equal(
                a.cache.read_current_weights(key),
                b.cache.read_current_weights(key),
            )


class TestDetailTruncation:
    def test_truncation_respects_utf8_boundaries(self):
        """A raw 512-byte slice can split a multibyte character; the
        frame must decode to clean UTF-8 with no replacement chars."""
        msg = StatusResponse(StatusResponse.ERR_INTERNAL, detail="é" * 300)
        decoded = decode_message(bytes(encode_message(msg)))
        assert "�" not in decoded.detail
        assert decoded.detail == "é" * 256  # 512 bytes / 2 bytes per char

    def test_short_detail_unchanged(self):
        msg = StatusResponse(StatusResponse.OK, detail="fine")
        decoded = decode_message(bytes(encode_message(msg)))
        assert decoded.detail == "fine"

    def test_boundary_exact(self):
        msg = StatusResponse(StatusResponse.OK, detail="a" * 512)
        decoded = decode_message(bytes(encode_message(msg)))
        assert decoded.detail == "a" * 512


class TestColumnarMigratePayload:
    def test_put_roundtrip(self):
        width = 6
        entries = (
            (7, [(0, np.arange(width, dtype=np.float32))]),
            (9, [
                (1, np.full(width, 2.0, dtype=np.float32)),
                (4, np.full(width, 3.0, dtype=np.float32)),
            ]),
        )
        msg = MigrateRequest(
            op=MigrateRequest.OP_PUT, source=1, seq=5, width=width, entries=entries
        )
        decoded = decode_message(bytes(encode_message(msg)))
        assert decoded.op == MigrateRequest.OP_PUT
        assert len(decoded.entries) == 2
        for (k0, v0), (k1, v1) in zip(entries, decoded.entries):
            assert k0 == k1
            assert [b for b, __ in v0] == [b for b, __ in v1]
            for (__, a), (__, b) in zip(v0, v1):
                assert np.array_equal(a, b)
                assert not b.flags.writeable  # zero-copy frame view

    def test_metadata_only_roundtrip(self):
        entries = ((3, [(0, None), (2, None)]), (4, [(1, None)]))
        msg = MigrateResponse(width=0, entries=entries)
        decoded = decode_message(bytes(encode_message(msg)))
        assert decoded.entries == ((3, [(0, None), (2, None)]), (4, [(1, None)]))

    def test_empty_payload(self):
        decoded = decode_message(
            bytes(encode_message(MigrateResponse(width=4, entries=())))
        )
        assert decoded.entries == ()
