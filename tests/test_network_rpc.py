"""Wire messages, RPC channel, and the remote PS frontend."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.server import OpenEmbeddingServer
from repro.network.frontend import RemotePSClient
from repro.network.messages import (
    CheckpointRequest,
    MessageError,
    PullRequest,
    PullResponse,
    PushRequest,
    StatusResponse,
    decode_message,
    encode_message,
)
from repro.network.rpc import RpcChannel, RpcServer

DIM = 4


class TestMessageRoundtrips:
    def test_pull_request(self):
        msg = PullRequest(batch_id=7, keys=np.array([1, 2, 3], dtype=np.uint64))
        decoded = decode_message(encode_message(msg))
        assert decoded.batch_id == 7
        assert np.array_equal(decoded.keys, msg.keys)
        # Identity defaults: anonymous pulls bypass staleness admission.
        assert decoded.worker_id == -1
        assert decoded.progress == -1

    def test_pull_request_progress_header(self):
        msg = PullRequest(
            batch_id=7,
            keys=np.array([1, 2], dtype=np.uint64),
            worker_id=4,
            progress=123,
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.worker_id == 4
        assert decoded.progress == 123
        assert np.array_equal(decoded.keys, msg.keys)

    def test_pull_response(self):
        weights = np.arange(8, dtype=np.float32).reshape(2, 4)
        decoded = decode_message(encode_message(PullResponse(3, weights)))
        assert decoded.batch_id == 3
        assert np.array_equal(decoded.weights, weights)

    def test_push_request(self):
        keys = np.array([9, 11], dtype=np.uint64)
        grads = np.ones((2, 4), dtype=np.float32)
        decoded = decode_message(encode_message(PushRequest(5, keys, grads)))
        assert decoded.batch_id == 5
        assert np.array_equal(decoded.keys, keys)
        assert np.array_equal(decoded.grads, grads)

    def test_push_request_dedup_header(self):
        keys = np.array([9], dtype=np.uint64)
        grads = np.ones((1, 4), dtype=np.float32)
        decoded = decode_message(
            encode_message(PushRequest(5, keys, grads, worker_id=3, seq=77))
        )
        assert decoded.worker_id == 3
        assert decoded.seq == 77
        assert decoded.dedup_key == (3, 77)
        assert PushRequest(5, keys, grads).dedup_key is None  # seq=0 opts out

    def test_pull_response_cache_stats(self):
        weights = np.zeros((2, 4), dtype=np.float32)
        decoded = decode_message(
            encode_message(PullResponse(1, weights, hits=5, misses=2, created=1))
        )
        assert (decoded.hits, decoded.misses, decoded.created) == (5, 2, 1)

    def test_checkpoint_request(self):
        decoded = decode_message(encode_message(CheckpointRequest(42)))
        assert decoded.batch_id == 42

    def test_checkpoint_request_signed(self):
        """-1 (untrained cluster) must travel so the server can reject it."""
        decoded = decode_message(encode_message(CheckpointRequest(-1)))
        assert decoded.batch_id == -1

    def test_status_response_detail(self):
        msg = StatusResponse(StatusResponse.ERR_CHECKPOINT, detail="no batch")
        decoded = decode_message(encode_message(msg))
        assert decoded.code == StatusResponse.ERR_CHECKPOINT
        assert decoded.detail == "no batch"
        assert not decoded.ok

    def test_status_response(self):
        decoded = decode_message(encode_message(StatusResponse(0, value=-5)))
        assert decoded.ok
        assert decoded.value == -5

    def test_empty_pull(self):
        msg = PullRequest(batch_id=0, keys=np.array([], dtype=np.uint64))
        decoded = decode_message(encode_message(msg))
        assert len(decoded.keys) == 0

    def test_decoded_arrays_are_readonly_views(self):
        """The ownership contract: decode is zero-copy, views are frozen.

        A consumer that needs to mutate must copy explicitly; writing
        through the view must fail loudly, never silently alias the
        received frame.
        """
        msg = PullRequest(batch_id=0, keys=np.array([1], dtype=np.uint64))
        decoded = decode_message(encode_message(msg))
        with pytest.raises(ValueError):
            decoded.keys[0] = 99
        owned = decoded.keys.copy()
        owned[0] = 99  # the documented escape hatch
        assert owned[0] == 99 and decoded.keys[0] == 1


class TestMessageValidation:
    def test_unknown_type(self):
        frame = bytes([0x7F]) + (0).to_bytes(4, "little")
        with pytest.raises(MessageError):
            decode_message(frame)

    def test_truncated_frame(self):
        with pytest.raises(MessageError):
            decode_message(b"\x01")

    def test_length_mismatch(self):
        frame = encode_message(CheckpointRequest(1))
        with pytest.raises(MessageError):
            decode_message(frame + b"extra")

    def test_truncated_body(self):
        msg = PullRequest(batch_id=7, keys=np.array([1, 2], dtype=np.uint64))
        body = msg.encode_body()[:-4]
        with pytest.raises(MessageError):
            PullRequest.decode_body(body)

    def test_checksum_detects_byte_flip(self):
        frame = bytearray(encode_message(CheckpointRequest(1)))
        frame[-1] ^= 0xFF  # damage the body; header length still matches
        with pytest.raises(MessageError, match="checksum"):
            decode_message(bytes(frame))

    def test_grads_keys_mismatch(self):
        with pytest.raises(MessageError):
            PushRequest(
                0, np.array([1], dtype=np.uint64), np.ones((2, 4), dtype=np.float32)
            ).encode_body()


class TestRpcChannel:
    def _echo_server(self):
        server = RpcServer()
        server.register(
            CheckpointRequest.TYPE,
            lambda req: StatusResponse(StatusResponse.OK, req.batch_id),
        )
        return server

    def test_call_roundtrip(self):
        channel = RpcChannel(self._echo_server())
        response = channel.call(CheckpointRequest(9))
        assert response.ok
        assert response.value == 9

    def test_stats_count_real_bytes(self):
        channel = RpcChannel(self._echo_server())
        channel.call(CheckpointRequest(1))
        expected_request = len(encode_message(CheckpointRequest(1)))
        expected_response = len(encode_message(StatusResponse(0, 1)))
        assert channel.stats.calls == 1
        assert channel.stats.request_bytes == expected_request
        assert channel.stats.response_bytes == expected_response

    def test_clock_advances_with_traffic(self):
        from repro.simulation.clock import SimClock

        clock = SimClock()
        channel = RpcChannel(self._echo_server(), clock=clock)
        channel.call(CheckpointRequest(1))
        assert clock.now > 0

    def test_unhandled_type_rejected(self):
        channel = RpcChannel(RpcServer())
        with pytest.raises(MessageError):
            channel.call(CheckpointRequest(1))

    def test_duplicate_handler_rejected(self):
        server = self._echo_server()
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            server.register(CheckpointRequest.TYPE, lambda req: None)


class TestRemotePSClient:
    def _configs(self):
        return (
            ServerConfig(
                num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=4
            ),
            CacheConfig(capacity_bytes=8 * DIM * 4),
        )

    def test_pull_matches_local_server(self):
        server_config, cache_config = self._configs()
        remote = RemotePSClient(server_config, cache_config)
        local = OpenEmbeddingServer(server_config, cache_config)
        keys = [3, 99, 3, 42]
        remote_weights = remote.pull(keys, 0).weights
        local_weights = local.pull(keys, 0).weights
        assert np.array_equal(remote_weights, local_weights)

    def test_staleness_rejection_is_typed_over_the_wire(self):
        """ERR_STALENESS decodes back into StalenessError client-side."""
        from repro.errors import StalenessError

        __, cache_config = self._configs()
        server_config = ServerConfig(
            num_nodes=2,
            embedding_dim=DIM,
            pmem_capacity_bytes=1 << 22,
            seed=4,
            staleness_bound=1,
        )
        remote = RemotePSClient(server_config, cache_config)
        remote.pull([1, 2], 0, worker_id=0, progress=10)
        with pytest.raises(StalenessError):
            remote.pull([1, 2], 1, worker_id=1, progress=0)  # lag 10 > 1
        # Anonymous pulls keep bypassing admission entirely.
        remote.pull([1, 2], 2)

    def test_training_over_rpc_matches_local(self):
        server_config, cache_config = self._configs()
        remote = RemotePSClient(server_config, cache_config)
        local = OpenEmbeddingServer(server_config, cache_config)
        rng = np.random.default_rng(0)
        for batch in range(6):
            keys = sorted(rng.choice(30, size=5, replace=False).tolist())
            grads = rng.normal(0, 0.1, (5, DIM)).astype(np.float32)
            for backend in (remote, local):
                backend.pull(keys, batch)
                backend.maintain(batch)
                backend.push(keys, grads, batch)
        remote_state = remote.state_snapshot()
        local_state = local.state_snapshot()
        assert set(remote_state) == set(local_state)
        for key in local_state:
            assert np.array_equal(remote_state[key], local_state[key])

    def test_checkpoint_over_rpc(self):
        server_config, cache_config = self._configs()
        remote = RemotePSClient(server_config, cache_config)
        keys = [1, 2, 3]
        remote.pull(keys, 0)
        remote.maintain(0)
        remote.push(keys, np.ones((3, DIM), dtype=np.float32), 0)
        assert remote.request_checkpoint() == 0
        remote.complete_pending_checkpoints()
        assert all(n.coordinator.last_completed == 0 for n in remote.nodes)

    def test_wire_bytes_accumulate(self):
        server_config, cache_config = self._configs()
        remote = RemotePSClient(server_config, cache_config)
        remote.pull([1, 2, 3, 4], 0)
        bytes_after_pull = remote.wire_bytes()
        assert bytes_after_pull > 4 * DIM * 4  # at least the weights
        remote.maintain(0)
        remote.push([1, 2], np.ones((2, DIM), dtype=np.float32), 0)
        assert remote.wire_bytes() > bytes_after_pull

    def test_simulated_time_advances(self):
        server_config, cache_config = self._configs()
        remote = RemotePSClient(server_config, cache_config)
        remote.pull([1], 0)
        assert remote.clock.now > 0
