"""TrainingSimulator: end-to-end simulated epochs (small scale)."""

import pytest

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    ClusterConfig,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from repro.errors import ConfigError
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator
from repro.workload.generator import WorkloadGenerator

NUM_KEYS = 20_000
DIM = 16


def make_sim(system, workers=4, ckpt=None, cache_entries=200, **kwargs):
    server = ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 26)
    cache = CacheConfig(capacity_bytes=cache_entries * DIM * 4)
    cluster = ClusterConfig(
        num_workers=workers,
        batch_size=32,
        network=NetworkConfig(bandwidth_bytes_per_s=60e6),
    )
    workload = WorkloadGenerator(
        WorkloadConfig(num_keys=NUM_KEYS, features_per_sample=4, seed=1)
    )
    return TrainingSimulator(
        system, cluster, server, cache, ckpt or CheckpointConfig.none(), workload,
        **kwargs,
    )


class TestBasics:
    def test_run_advances_clock(self):
        sim = make_sim(SystemKind.PMEM_OE)
        result = sim.run(10)
        assert result.sim_seconds > 0
        assert result.iterations == 10
        assert result.total_requests > 0

    def test_miss_rate_in_range(self):
        result = make_sim(SystemKind.PMEM_OE).run(20)
        assert 0.0 <= result.miss_rate <= 1.0

    def test_dram_ps_never_misses(self):
        result = make_sim(SystemKind.DRAM_PS).run(10)
        assert result.miss_rate == 0.0

    def test_invalid_iterations(self):
        with pytest.raises(ConfigError):
            make_sim(SystemKind.PMEM_OE).run(0)

    def test_batch_aware_requires_pmem_oe(self):
        with pytest.raises(ConfigError):
            make_sim(
                SystemKind.DRAM_PS,
                ckpt=CheckpointConfig(CheckpointMode.BATCH_AWARE, 1.0),
            )

    def test_phase_totals_consistent(self):
        result = make_sim(SystemKind.PMEM_OE).run(10)
        reconstructed = (
            result.net_seconds
            + result.pull_service_seconds
            + result.push_service_seconds
            + result.maintain_inline_seconds
        )
        # gpu and deferred overlap, so total >= parts without them.
        assert result.sim_seconds >= reconstructed


class TestSystemComparisons:
    def test_pmem_oe_close_to_dram_ps(self):
        dram = make_sim(SystemKind.DRAM_PS).run(30).sim_seconds
        oe = make_sim(SystemKind.PMEM_OE).run(30).sim_seconds
        assert dram <= oe < dram * 1.35

    def test_ori_cache_slower_than_oe(self):
        oe = make_sim(SystemKind.PMEM_OE).run(30).sim_seconds
        ori = make_sim(SystemKind.ORI_CACHE).run(30).sim_seconds
        assert ori > oe

    def test_pmem_hash_slowest(self):
        ori = make_sim(SystemKind.ORI_CACHE).run(30).sim_seconds
        ph = make_sim(SystemKind.PMEM_HASH).run(30).sim_seconds
        assert ph > ori

    def test_bigger_cache_not_slower(self):
        small = make_sim(SystemKind.PMEM_OE, cache_entries=20).run(30)
        large = make_sim(SystemKind.PMEM_OE, cache_entries=2000).run(30)
        assert large.miss_rate < small.miss_rate
        assert large.sim_seconds <= small.sim_seconds


class TestCheckpointing:
    def _epoch(self, ckpt=None):
        return make_sim(SystemKind.PMEM_OE, ckpt=ckpt).run(40)

    def test_batch_aware_near_zero_overhead(self):
        base = self._epoch()
        interval = base.sim_seconds / 4
        with_ckpt = self._epoch(
            CheckpointConfig(CheckpointMode.SPARSE_ONLY, interval, include_dense=False)
        )
        assert with_ckpt.checkpoints_completed >= 3
        overhead = with_ckpt.sim_seconds / base.sim_seconds - 1
        assert overhead < 0.02

    def test_incremental_costs_more_than_batch_aware(self):
        base = self._epoch()
        interval = base.sim_seconds / 4
        batch_aware = self._epoch(
            CheckpointConfig(CheckpointMode.BATCH_AWARE, interval)
        )
        incremental = self._epoch(
            CheckpointConfig(CheckpointMode.INCREMENTAL, interval)
        )
        assert incremental.sim_seconds > batch_aware.sim_seconds
        assert incremental.checkpoint_pause_seconds > 0

    def test_interval_scaling_helper(self):
        interval = TrainingSimulator.interval_for_epoch_fraction(100.0, 20, 5.0)
        assert interval == pytest.approx(100.0 * (20 / 60) / 5.0)
        with pytest.raises(ConfigError):
            TrainingSimulator.interval_for_epoch_fraction(0, 20, 5)


class TestTrace:
    def test_figure2_pattern(self):
        """Pulls and updates appear in equal-sized paired bursts."""
        sim = make_sim(SystemKind.PMEM_OE, record_trace=True)
        result = sim.run(5)
        totals = result.trace.totals()
        assert totals["pull"] == totals["update"] == result.total_requests
        # Bursts are instants: few distinct milliseconds carry traffic.
        buckets = result.trace.per_millisecond()
        assert len(buckets) <= 2 * 5

    def test_trace_disabled_by_default(self):
        result = make_sim(SystemKind.PMEM_OE).run(3)
        assert result.trace is None
