"""Figure 11: training time & miss rate under different skews (16 GPUs).

Paper, with a 2 GB cache: miss rate 13.63 % (original) / 10.04 % (more
skew) / 17.08 % (less skew); PMem-OE's gap to DRAM-PS shrinks from 9 %
to 7 % with more skew; with less skew Ori-Cache loses >20 % more time
while PMem-OE loses <5 %.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind

PAPER_MISS = {"more skew": 0.1004, "original": 0.1363, "less skew": 0.1708}
SKEWS = {"more skew": 1.15, "original": 1.0, "less skew": 0.85}


def test_fig11_distribution_skews(benchmark, report):
    def run():
        rows = {}
        for name, temperature in SKEWS.items():
            dram = simulate_epoch(SystemKind.DRAM_PS, 16, skew=temperature)
            oe = simulate_epoch(SystemKind.PMEM_OE, 16, skew=temperature)
            ori = simulate_epoch(SystemKind.ORI_CACHE, 16, skew=temperature)
            rows[name] = {
                "miss": oe.miss_rate,
                "oe_ratio": oe.sim_seconds / dram.sim_seconds,
                "ori_ratio": ori.sim_seconds / dram.sim_seconds,
                "oe_seconds": oe.sim_seconds,
                "ori_seconds": ori.sim_seconds,
            }
        return rows

    rows = run_once(benchmark, run)
    report.title("fig11_skew", "Figure 11: miss rate & training time by skew")
    for name, row in rows.items():
        report.row(
            f"{name} miss rate",
            f"{PAPER_MISS[name]:.2%}",
            f"{row['miss']:.2%}",
        )
        report.row(
            f"{name} PMem-OE vs DRAM-PS", "<= 9% gap", f"{row['oe_ratio'] - 1:.1%} gap"
        )
        report.row(
            f"{name} Ori-Cache vs DRAM-PS", "large gap", f"{row['ori_ratio'] - 1:.1%} gap"
        )
    oe_delta = rows["less skew"]["oe_seconds"] / rows["original"]["oe_seconds"] - 1
    ori_delta = rows["less skew"]["ori_seconds"] / rows["original"]["ori_seconds"] - 1
    report.line()
    report.row("less-skew slowdown PMem-OE", "<5%", f"{oe_delta:.1%}")
    report.row("less-skew slowdown Ori-Cache", ">20% (see note)", f"{ori_delta:.1%}")
    report.line(
        "  note: at benchmark scale the skew knob moves miss rates by a few"
    )
    report.line(
        "  points (the paper's trace moves ~3.5pp on 1000x more requests),"
    )
    report.line(
        "  so Ori-Cache's absolute slowdown compresses; the ordering and"
    )
    report.line("  PMem-OE's insensitivity are preserved.")

    # Shape: miss rate orders with skew; OE's gap to DRAM-PS stays in
    # single digits at every skew while Ori-Cache's is massive; and a
    # less skewed workload slows both (Ori at least as much as OE).
    assert rows["more skew"]["miss"] < rows["original"]["miss"] < rows["less skew"]["miss"]
    for row in rows.values():
        assert row["oe_ratio"] < 1.12
        assert row["ori_ratio"] > 1.5
    assert rows["more skew"]["oe_ratio"] < rows["less skew"]["oe_ratio"]
    assert oe_delta > 0 and ori_delta > 0


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["oe_ratio"] >= 1.12:
        failures.append(
            f"PMem-OE gap to DRAM-PS {metrics['oe_ratio'] - 1:.1%} "
            "exceeds the 12% envelope"
        )
    if metrics["ori_ratio"] <= 1.5:
        failures.append("Ori-Cache should lose badly at every skew")
    return failures


@register(
    "fig11_skew",
    params=[
        Param("skew", "float", 1.0, help="skew temperature (1.0 = original)"),
        Param("workers", "int", 16),
    ],
    headline={
        "miss_rate": Headline(direction="lower", max_regression=0.10),
        "oe_ratio": Headline(direction="lower", max_regression=0.05),
    },
    check=_check,
)
def entry(*, skew, workers):
    """Miss rate and training-time ratios to DRAM-PS at one skew
    temperature."""
    dram = simulate_epoch(SystemKind.DRAM_PS, workers, skew=skew)
    oe = simulate_epoch(SystemKind.PMEM_OE, workers, skew=skew)
    ori = simulate_epoch(SystemKind.ORI_CACHE, workers, skew=skew)
    return {
        "miss_rate": oe.miss_rate,
        "oe_ratio": oe.sim_seconds / dram.sim_seconds,
        "ori_ratio": ori.sim_seconds / dram.sim_seconds,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig11_skew"))
