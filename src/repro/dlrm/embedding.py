"""PS-backed embedding table for functional training.

This is the client side of the paper's TensorFlow operators
(``PullWeights`` / ``PushGradients``): it turns a (batch, fields) key
matrix into a (batch, fields, dim) embedding tensor by pulling from the
distributed server, and pushes the per-lookup gradients back.

The synchronous-batch protocol is: ``pull`` at the start of the batch,
``maintain`` once every worker's pulls are in (the trainer calls it),
``push`` at the end. Duplicate keys inside one batch are pulled as
duplicates (they all see the same pre-batch weights) and their
gradients are aggregated by the server on push — exactly the paired
burst pattern of Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.server import OpenEmbeddingServer
from repro.errors import ConfigError


class PSEmbedding:
    """Embedding lookups against an :class:`OpenEmbeddingServer`.

    Also works with any object exposing the same ``pull``/``push``
    protocol (the baselines), which is how comparison tests train the
    same model on different PS systems.
    """

    def __init__(self, server, dim: int):
        if dim <= 0:
            raise ConfigError(f"dim must be positive, got {dim}")
        self.server = server
        self.dim = dim

    def pull(self, key_matrix: np.ndarray, batch_id: int) -> np.ndarray:
        """Pull embeddings for a (batch, fields) int key matrix.

        Returns a float32 tensor of shape (batch, fields, dim).
        """
        key_matrix = np.asarray(key_matrix)
        if key_matrix.ndim != 2:
            raise ConfigError(f"key matrix must be 2-D, got shape {key_matrix.shape}")
        flat = key_matrix.reshape(-1).tolist()
        result = self.server.pull(flat, batch_id)
        if result.weights is None:
            raise ConfigError("server is metadata-only; cannot train weights")
        return result.weights.reshape(*key_matrix.shape, self.dim)

    def push(
        self, key_matrix: np.ndarray, grads: np.ndarray, batch_id: int
    ) -> int:
        """Push per-lookup gradients of shape (batch, fields, dim)."""
        key_matrix = np.asarray(key_matrix)
        grads = np.asarray(grads, dtype=np.float32)
        expected = (*key_matrix.shape, self.dim)
        if grads.shape != expected:
            raise ConfigError(f"grads shape {grads.shape}, want {expected}")
        flat_keys = key_matrix.reshape(-1).tolist()
        flat_grads = grads.reshape(-1, self.dim)
        return self.server.push(flat_keys, flat_grads, batch_id)
