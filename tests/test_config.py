"""Config validation and derived quantities."""

import pytest

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CheckpointMode,
    ClusterConfig,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_capacity_entries(self):
        config = CacheConfig(capacity_bytes=1024)
        assert config.capacity_entries(256) == 4

    def test_capacity_entries_at_least_one(self):
        config = CacheConfig(capacity_bytes=10)
        assert config.capacity_entries(256) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            CacheConfig(capacity_bytes=0)

    def test_invalid_entry_bytes(self):
        with pytest.raises(ConfigError):
            CacheConfig().capacity_entries(0)

    def test_invalid_threads(self):
        with pytest.raises(ConfigError):
            CacheConfig(maintainer_threads=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CacheConfig().capacity_bytes = 1


class TestCheckpointConfig:
    def test_defaults(self):
        config = CheckpointConfig()
        assert config.mode == CheckpointMode.BATCH_AWARE
        assert config.interval_seconds == 1200.0

    def test_none_factory(self):
        config = CheckpointConfig.none()
        assert config.mode == CheckpointMode.NONE
        assert not config.include_dense

    def test_sparse_only_factory(self):
        config = CheckpointConfig.sparse_only(600.0)
        assert config.mode == CheckpointMode.SPARSE_ONLY
        assert not config.include_dense

    def test_invalid_interval(self):
        with pytest.raises(ConfigError):
            CheckpointConfig(interval_seconds=0)


class TestServerConfig:
    def test_entry_bytes(self):
        assert ServerConfig(embedding_dim=64).entry_bytes == 256

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServerConfig(num_nodes=0)
        with pytest.raises(ConfigError):
            ServerConfig(embedding_dim=0)
        with pytest.raises(ConfigError):
            ServerConfig(pmem_capacity_bytes=0)


class TestClusterAndNetwork:
    def test_cluster_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ConfigError):
            ClusterConfig(batch_size=0)
        with pytest.raises(ConfigError):
            ClusterConfig(gpu_batch_time_s=-1)

    def test_network_validation(self):
        with pytest.raises(ConfigError):
            NetworkConfig(bandwidth_bytes_per_s=0)
        with pytest.raises(ConfigError):
            NetworkConfig(rpc_latency_s=-1)

    def test_default_network_is_30gbit(self):
        assert NetworkConfig().bandwidth_bytes_per_s == pytest.approx(30e9 / 8)


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(num_keys=0)
        with pytest.raises(ConfigError):
            WorkloadConfig(features_per_sample=0)
        with pytest.raises(ConfigError):
            WorkloadConfig(skew=0)


class TestBenchProfile:
    def test_cache_scaling(self):
        from repro.simulation.profiles import DEFAULT_PROFILE

        scaled = DEFAULT_PROFILE.cache_bytes_for_paper_mb(2048)
        fraction = scaled / DEFAULT_PROFILE.model_bytes
        assert fraction == pytest.approx(2048 / (500 * 1024), rel=0.01)

    def test_iterations_divide_by_workers(self):
        from repro.simulation.profiles import DEFAULT_PROFILE

        assert DEFAULT_PROFILE.iterations(4) == 2 * DEFAULT_PROFILE.iterations(8)

    def test_config_factories(self):
        from repro.simulation.profiles import DEFAULT_PROFILE

        server = DEFAULT_PROFILE.server_config(num_nodes=2)
        assert server.num_nodes == 2
        cluster = DEFAULT_PROFILE.cluster_config(8)
        assert cluster.num_workers == 8
        assert cluster.network is DEFAULT_PROFILE.network
