"""Figure 2: access pattern in two batches — burst I/O in pairs.

Records every pull/update request timestamp over a few synchronous
batches and buckets them per millisecond. The figure's two signatures:

1. pulls and updates come in equal totals ("in pairs"),
2. traffic concentrates in instantaneous bursts at batch boundaries
   with an idle gap (GPU compute) in between.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind
from repro.simulation.metrics import RequestTrace


def test_fig2_burst_pattern(benchmark, report):
    result = run_once(
        benchmark,
        lambda: simulate_epoch(
            SystemKind.PMEM_OE, workers=4, iterations=4, record_trace=True
        ),
    )
    trace = result.trace
    totals = trace.totals()
    pull_buckets = trace.per_millisecond(RequestTrace.PULL)
    update_buckets = trace.per_millisecond(RequestTrace.UPDATE)

    report.title("fig2_burst", "Figure 2: per-ms request pattern over batches")
    report.row(
        "pull == update totals (pairs)",
        "equal",
        f"{totals['pull']} == {totals['update']}",
    )
    busy_ms = len(set(pull_buckets) | set(update_buckets))
    span_ms = int(result.sim_seconds * 1000) + 1
    report.row(
        "bursts at batch boundaries",
        "sharp spikes",
        f"{busy_ms} busy ms of {span_ms} total ms",
    )
    report.line("  per-ms request counts (P=pull burst, U=update burst):")
    for ms in sorted(set(pull_buckets) | set(update_buckets)):
        pulls = pull_buckets.get(ms, 0)
        updates = update_buckets.get(ms, 0)
        tag = "P" if pulls else " "
        tag += "U" if updates else " "
        report.line(f"    t={ms:5d} ms  [{tag}]  pulls={pulls:<6d} updates={updates}")

    assert totals["pull"] == totals["update"]
    # The bursts occupy a small fraction of wall time: idle GPU-compute
    # gaps separate them.
    assert busy_ms <= 2 * result.iterations
    assert busy_ms < span_ms


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["pairs_equal"]:
        failures.append("pull and update totals differ (requests not paired)")
    if metrics["busy_ms"] > 2 * params["iterations"]:
        failures.append(
            f"traffic not bursty: {metrics['busy_ms']} busy ms for "
            f"{params['iterations']} iterations"
        )
    return failures


@register(
    "fig2_burst",
    params=[
        Param("workers", "int", 4),
        Param("iterations", "int", 4),
    ],
    headline={"pairs_equal": Headline()},
    check=_check,
)
def entry(*, workers, iterations):
    """Per-millisecond request trace over a few synchronous batches:
    pull/update pairing and burst concentration."""
    result = simulate_epoch(
        SystemKind.PMEM_OE, workers=workers, iterations=iterations,
        record_trace=True,
    )
    trace = result.trace
    totals = trace.totals()
    pull_buckets = trace.per_millisecond(RequestTrace.PULL)
    update_buckets = trace.per_millisecond(RequestTrace.UPDATE)
    busy_ms = len(set(pull_buckets) | set(update_buckets))
    return {
        "pairs_equal": totals["pull"] == totals["update"],
        "pull_total": totals["pull"],
        "update_total": totals["update"],
        "busy_ms": busy_ms,
        "span_ms": int(result.sim_seconds * 1000) + 1,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig2_burst"))
