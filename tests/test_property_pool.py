"""Property-based durability model for PmemPool (hypothesis).

A reference model tracks what SHOULD be durable/visible after any
sequence of writes (flushed or staged), drains, frees and crashes; the
pool must agree exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem.pool import PmemPool

KEYS = list(range(6))


def operations():
    write = st.tuples(
        st.just("write"),
        st.sampled_from(KEYS),
        st.integers(0, 100),
        st.booleans(),  # flush?
    )
    free = st.tuples(st.just("free"), st.sampled_from(KEYS), st.just(0), st.just(False))
    drain = st.tuples(st.just("drain"), st.just(0), st.just(0), st.just(False))
    crash = st.tuples(st.just("crash"), st.just(0), st.just(0), st.just(False))
    return st.lists(
        st.one_of(write, free, drain, crash), min_size=1, max_size=40
    )


class Reference:
    """Oracle for pool visibility and durability."""

    def __init__(self):
        self.durable: dict[int, int] = {}
        self.staged: dict[int, int] = {}

    def write(self, key, value, flush):
        if flush:
            self.durable[key] = value
            self.staged.pop(key, None)
        else:
            self.staged[key] = value

    def free(self, key):
        existed = key in self.staged or key in self.durable
        self.staged.pop(key, None)
        self.durable.pop(key, None)
        return existed

    def drain(self):
        self.durable.update(self.staged)
        self.staged.clear()

    def crash(self):
        self.staged.clear()

    def visible(self):
        merged = dict(self.durable)
        merged.update(self.staged)
        return merged


@given(ops=operations())
@settings(max_examples=120, deadline=None)
def test_pool_matches_reference_model(ops):
    pool = PmemPool(1 << 16)
    reference = Reference()
    for op, key, value, flush in ops:
        if op == "write":
            pool.write(key, np.array([value], dtype=np.float32), flush=flush)
            reference.write(key, value, flush)
        elif op == "free":
            if reference.free(key):
                pool.free(key)
        elif op == "drain":
            pool.drain()
            reference.drain()
        elif op == "crash":
            pool.crash()
            reference.crash()
        # Invariant: visible contents match the oracle at every step.
        visible = reference.visible()
        assert set(pool.keys()) == set(visible)
        for k, v in visible.items():
            assert pool.read(k)[0] == v
    # Final crash: only durable contents remain.
    pool.crash()
    reference.crash()
    assert set(pool.keys()) == set(reference.visible())
    # Space accounting is consistent with the contents.
    assert pool.used_bytes == 4 * len(reference.visible())
