"""Table I: performance comparison of DRAM / PMem / flash SSD.

Regenerates the table from the device models by measuring effective
bandwidth over large sequential transfers and per-op latency on tiny
accesses — the same quantities the paper's microbenchmarks report.
"""

from benchmarks.conftest import run_once
from repro.simulation.device import DRAM_SPEC, GB, MemoryDevice, PMEM_SPEC, SSD_SPEC

PAPER = {
    "DRAM": ("115 / 79", "81 / 86"),
    "PMem": ("39 / 14", "305 / 94"),
    "Flash SSD": ("2~3 / 1~2", ">10000"),
}


def measure(spec):
    device = MemoryDevice(spec)
    big = 4 * GB
    read_bw = big / device.read(big)
    write_elapsed = device.write(big)
    write_bw = big / write_elapsed
    read_latency_ns = spec.read_time(0) * 1e9
    write_latency_ns = spec.write_time(0) * 1e9
    return read_bw / GB, write_bw / GB, read_latency_ns, write_latency_ns


def test_table1_device_comparison(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: {spec.name: measure(spec) for spec in (DRAM_SPEC, PMEM_SPEC, SSD_SPEC)},
    )
    report.title("table1_devices", "Table I: device bandwidth (GB/s) and latency (ns)")
    for name, (r_bw, w_bw, r_lat, w_lat) in rows.items():
        paper_bw, paper_lat = PAPER[name]
        report.row(
            f"{name} bandwidth R/W", paper_bw, f"{r_bw:.0f} / {w_bw:.0f}"
        )
        report.row(
            f"{name} latency R/W", paper_lat, f"{r_lat:.0f} / {w_lat:.0f}"
        )
    dram = rows["DRAM"]
    pmem = rows["PMem"]
    report.line()
    report.row(
        "PMem/DRAM read throughput", "~1/3", f"1/{dram[0] / pmem[0]:.1f}"
    )
    report.row(
        "PMem/DRAM write throughput", "~1/5", f"1/{dram[1] / pmem[1]:.1f}"
    )
    assert 2.5 < dram[0] / pmem[0] < 3.5
    assert 4.5 < dram[1] / pmem[1] < 6.5
