"""Cross-system semantic equivalence (integration).

The paper's pipeline, cache sizing and PMem tiering are *performance*
mechanisms; they must not change the trained model. These tests train
the same DeepFM on every PS backend and configuration axis and demand
bitwise-equal weights.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DRAMPSNode, OriCacheNode, PMemHashNode
from repro.config import CacheConfig, ServerConfig
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSAdagrad, PSSGD

DIM = 4
SEED = 13


def server_config():
    return ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 24, seed=SEED)


def cache_config(entries):
    return CacheConfig(capacity_bytes=entries * DIM * 4 * 2)


def drive(node, stream, *, optimizer_grad=0.3, needs_maintain=True):
    """Run a pull/maintain/push stream and return the final weights."""
    for batch_id, keys in enumerate(stream):
        node.pull(keys, batch_id)
        if needs_maintain:
            node.maintain(batch_id)
        grads = np.full((len(keys), DIM), optimizer_grad, dtype=np.float32)
        node.push(keys, grads, batch_id)
    return node.state_snapshot()


def random_stream(rng, batches=12, keyspace=20):
    return [
        sorted(rng.choice(keyspace, size=rng.integers(1, 6), replace=False).tolist())
        for __ in range(batches)
    ]


STREAM = random_stream(np.random.default_rng(0))


class TestSystemEquivalence:
    def test_all_backends_train_identically(self):
        """DRAM-PS, PMem-OE, Ori-Cache and PMem-Hash produce the same
        weights for the same schedule — storage tier is semantics-free."""
        results = {}
        results["dram"] = drive(DRAMPSNode(server_config()), STREAM)
        results["oe"] = drive(
            PSNode(0, server_config(), cache_config(4)), STREAM
        )
        results["ori"] = drive(
            OriCacheNode(0, server_config(), cache_config(4)), STREAM
        )
        results["hash"] = drive(PMemHashNode(server_config()), STREAM)
        reference = results["dram"]
        for name, snapshot in results.items():
            assert set(snapshot) == set(reference), name
            for key in reference:
                assert np.array_equal(snapshot[key], reference[key]), (name, key)

    @given(
        capacity=st.integers(1, 24),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_cache_size_is_semantics_free(self, capacity, seed):
        stream = random_stream(np.random.default_rng(seed))
        tiny = drive(PSNode(0, server_config(), cache_config(capacity)), stream)
        huge = drive(PSNode(0, server_config(), cache_config(10_000)), stream)
        assert set(tiny) == set(huge)
        for key in huge:
            assert np.array_equal(tiny[key], huge[key])

    def test_adagrad_equivalence_across_tiers(self):
        """Optimizer state rides through evictions: Adagrad on a
        one-entry cache equals Adagrad on pure DRAM."""
        tiny = drive(
            PSNode(0, server_config(), cache_config(1), PSAdagrad(lr=0.1)), STREAM
        )
        dram = drive(
            DRAMPSNode(server_config(), PSAdagrad(lr=0.1)), STREAM
        )
        for key in dram:
            assert np.allclose(tiny[key], dram[key], atol=0)

    def test_checkpointing_is_semantics_free(self):
        """Taking checkpoints mid-stream must not perturb training."""
        plain = drive(PSNode(0, server_config(), cache_config(3)), STREAM)
        node = PSNode(0, server_config(), cache_config(3))
        for batch_id, keys in enumerate(STREAM):
            node.pull(keys, batch_id)
            node.maintain(batch_id)
            node.push(
                keys, np.full((len(keys), DIM), 0.3, dtype=np.float32), batch_id
            )
            if batch_id % 3 == 2:
                node.request_checkpoint(batch_id)
        checkpointed = node.state_snapshot()
        for key in plain:
            assert np.array_equal(plain[key], checkpointed[key])

    def test_maintainer_round_timing_is_semantics_free(self):
        """Deferring maintenance across several batches (a slow
        maintainer) still converges to the same weights."""
        eager = drive(PSNode(0, server_config(), cache_config(3)), STREAM)
        lazy_node = PSNode(0, server_config(), cache_config(3))
        for batch_id, keys in enumerate(STREAM):
            lazy_node.pull(keys, batch_id)
            lazy_node.maintain(batch_id)
            lazy_node.push(
                keys, np.full((len(keys), DIM), 0.3, dtype=np.float32), batch_id
            )
        lazy = lazy_node.state_snapshot()
        for key in eager:
            assert np.array_equal(eager[key], lazy[key])


class TestMissRateEquivalence:
    def test_ori_and_oe_identical_miss_streams(self):
        """Section VI-C4: same LRU -> same miss rate. We assert the
        stronger per-batch equality."""
        oe = PSNode(0, server_config(), cache_config(3))
        ori = OriCacheNode(0, server_config(), cache_config(3))
        for batch_id, keys in enumerate(STREAM):
            r_oe = oe.pull(keys, batch_id)
            oe.maintain(batch_id)
            r_ori = ori.pull(keys, batch_id)
            assert (r_oe.hits, r_oe.misses, r_oe.created) == (
                r_ori.hits,
                r_ori.misses,
                r_ori.created,
            )
            grads = np.full((len(keys), DIM), 0.3, dtype=np.float32)
            oe.push(keys, grads, batch_id)
            ori.push(keys, grads, batch_id)
        assert oe.metrics.cache.miss_rate == ori.metrics.cache.miss_rate
