"""Ablation: LRU vs FIFO replacement under the DLRM skew.

The paper explicitly does NOT innovate on replacement policy ("we do
not focus on improving the cache replacement policies") and uses LRU.
This bench checks that default IS load-bearing: FIFO roughly doubles
the miss rate at the 400 MB operating point, because recency matters in
the warm mid-band of the skew even though the very hot head survives
either policy.
"""

from benchmarks.conftest import run_once, simulate_epoch
from repro.config import EvictionPolicy
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE


def test_ablation_eviction_policy(benchmark, report):
    def run():
        lru = simulate_epoch(
            SystemKind.PMEM_OE, 16, cache=DEFAULT_PROFILE.cache_config(paper_mb=400)
        )
        fifo = simulate_epoch(
            SystemKind.PMEM_OE,
            16,
            cache=DEFAULT_PROFILE.cache_config(
                paper_mb=400, policy=EvictionPolicy.FIFO
            ),
        )
        return lru, fifo

    lru, fifo = run_once(benchmark, run)
    report.title(
        "ablation_eviction_policy",
        "Ablation: LRU vs FIFO (16 GPUs, 400 MB-eq cache)",
    )
    report.row("LRU miss rate (paper's choice)", "-", f"{lru.miss_rate:.2%}")
    report.row("FIFO miss rate", "-", f"{fifo.miss_rate:.2%}")
    report.row(
        "epoch time LRU / FIFO",
        "-",
        f"{lru.sim_seconds:.2f} s / {fifo.sim_seconds:.2f} s",
    )

    # LRU never loses, and at this cache size the gap is material —
    # supporting the paper's LRU default.
    assert lru.miss_rate <= fifo.miss_rate + 1e-9
    assert fifo.miss_rate - lru.miss_rate > 0.02
    assert lru.sim_seconds < fifo.sim_seconds
