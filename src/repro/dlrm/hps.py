"""Hierarchical inference parameter server (the online serving tier).

Production DLRM deployments serve recommendations from the *same*
embedding tables that training keeps mutating. NVIDIA's HPS and the
paper's 4Paradigm scenarios both converge on the same read-path shape,
reproduced here as a client-side tier over any
:class:`~repro.core.backend.ReadBackend`:

1. **Per-client hot-row cache** — a small LRU (optionally
   frequency-gated) of the hottest embedding rows. Under the paper's
   Table-2 power-law skew, a cache holding ~1% of keys absorbs the
   vast majority of row reads without any network or device traffic.
2. **Replica fan-out** — misses go to the backend, which (for a
   replicated cluster) spreads them across the primary *and* backup of
   each shard (:class:`~repro.core.serving_backend.ReplicaSelector`).
3. **Authoritative shard** — the versioned store answers with rows
   pinned to a completed checkpoint.

Consistency contract (the part a cache can silently break):

* Every row this tier returns is stamped with the **Checkpointed Batch
  ID** it was read at (``LookupResult.row_snapshots``). Rows are never
  served from a torn, mid-push state — backends only serve completed
  checkpoint barriers.
* Cached rows may be *older* than the backend's newest checkpoint, but
  never older than ``staleness_bound_k`` **completed checkpoints**
  behind it. Checkpoint ids are batch ids — not consecutive — so the
  bound is enforced against the backend's monotone
  ``checkpoints_completed`` counter: each cached row remembers the
  counter value at admission, and on every request the tier re-reads
  the counter and invalidates (lazily) any row admitted more than ``k``
  completions ago — even when several checkpoints landed between two
  lookups. ``staleness_bound_k=0`` makes every row current.
* An explicitly pinned ``lookup(keys, snapshot_id=...)`` bypasses the
  cache entirely and reads the backend at that pin.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.backend import check_backend
from repro.core.serving_backend import LookupResult
from repro.errors import ConfigError
from repro.obs import NULL_TRACER


@dataclass
class ServingStats:
    """One hierarchical client's serving counters."""

    requests: int = 0
    rows: int = 0
    cache_hits: int = 0
    remote_rows: int = 0
    cold_rows: int = 0
    invalidated: int = 0
    refreshes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.rows if self.rows else 0.0


@dataclass
class _CachedRow:
    weights: np.ndarray
    snapshot_id: int
    #: Backend ``checkpoints_completed`` at admission — the row's
    #: staleness clock reading (lag = current count - this).
    ckpt_count: int
    touches: int = field(default=1)


class HierarchicalPS:
    """Hot-row cache → replica fan-out → authoritative shard.

    Args:
        backend: any :class:`~repro.core.backend.ReadBackend` — an
            in-process :class:`~repro.core.server.PSServer`, a
            :class:`~repro.network.frontend.RemotePSClient` (which adds
            the replica fan-out and the simulated wire), or a baseline.
        capacity_rows: hot-row cache size in rows; 0 disables caching
            (every lookup goes to the backend).
        staleness_bound_k: max checkpoints a served row may lag the
            backend's newest completed checkpoint. 0 = always current.
        freq_admission: admit a row into the cache only on its second
            touch (CacheEmbedding-style frequency gating) so one-off
            tail keys don't evict the hot set.
        registry: optional :class:`~repro.obs.MetricsRegistry`; serving
            counters are published as ``repro_serving_*`` series.
        tracer: optional :class:`~repro.obs.Tracer` for ``serving.*``
            spans on the ``serving`` track.
        slo: optional :class:`~repro.obs.SLOTracker`. The tier
            registers (get-or-create) its two intrinsic objectives —
            ``serving_availability`` (a lookup that raises is a bad
            event) and ``serving_staleness`` (the bound the cache
            enforces; violations are fed by the soak auditor) — and
            records an availability event per unpinned lookup.
    """

    def __init__(
        self,
        backend,
        capacity_rows: int = 4096,
        staleness_bound_k: int = 1,
        freq_admission: bool = False,
        registry=None,
        tracer=None,
        slo=None,
    ):
        self.backend = check_backend(backend, role="read")
        if capacity_rows < 0:
            raise ConfigError(f"capacity_rows must be >= 0, got {capacity_rows}")
        if staleness_bound_k < 0:
            raise ConfigError(
                f"staleness_bound_k must be >= 0, got {staleness_bound_k}"
            )
        self.capacity_rows = capacity_rows
        self.staleness_bound_k = staleness_bound_k
        self.freq_admission = freq_admission
        self.registry = registry
        self.tracer = tracer or NULL_TRACER
        self.slo = slo
        if slo is not None:
            slo.availability("serving_availability")
            slo.staleness("serving_staleness", staleness_bound_k)
        self.stats = ServingStats()
        self._cache: OrderedDict[int, _CachedRow] = OrderedDict()
        self._touched: OrderedDict[int, int] = OrderedDict()
        # Staleness clock: the backend's newest completed checkpoint id
        # and its monotone checkpoints_completed counter, as of the last
        # refresh. A cached row is servable iff the counter has advanced
        # at most staleness_bound_k since the row was admitted.
        self._snapshot: int = -1
        self._ckpt_count: int = -1

    # ------------------------------------------------------------------
    # staleness clock
    # ------------------------------------------------------------------

    @property
    def current_snapshot(self) -> int:
        """Newest completed checkpoint seen (-1 before any refresh)."""
        return self._snapshot

    def refresh(self) -> int:
        """Re-read the backend's checkpoint watermark and counter.

        Advancing the counter implicitly invalidates cached rows
        admitted more than ``staleness_bound_k`` completions ago (they
        are dropped lazily on their next touch). A counter *regression*
        — the backend was rebuilt or failed over to a replica whose
        counter restarted — drops the whole cache: admission clocks are
        no longer comparable, and serving conservatively is always safe.
        Called automatically at the start of every unpinned lookup.
        """
        latest = self.backend.latest_serving_snapshot
        count = self.backend.checkpoints_completed
        if count < self._ckpt_count or latest < self._snapshot:
            self.invalidate()
        if latest > self._snapshot or self._ckpt_count < 0:
            self.stats.refreshes += 1
            if self.registry is not None:
                self.registry.counter("repro_serving_refreshes_total").add(1)
        self._snapshot = latest
        self._ckpt_count = count
        return latest

    def invalidate(self) -> int:
        """Drop every cached row; returns how many were dropped."""
        dropped = len(self._cache)
        self._cache.clear()
        self._touched.clear()
        self.stats.invalidated += dropped
        return dropped

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------

    def lookup(
        self, keys: Sequence[int], snapshot_id: int | None = None
    ) -> LookupResult:
        """Batched hierarchical read.

        Unpinned (``snapshot_id=None``): refresh the staleness clock,
        serve cached rows still within the bound, fetch the rest from
        the backend at the newest checkpoint, and admit the fetched
        rows.

        Pinned: bypass the cache and read the backend at exactly that
        checkpoint (used by snapshot-consistent export).
        """
        if snapshot_id is not None:
            # Pinned reads must be exact — the cache may hold rows at
            # other pins, so it cannot serve any part of the request.
            return self.backend.lookup(keys, snapshot_id)
        if self.slo is None:
            return self._lookup_unpinned(keys)
        try:
            result = self._lookup_unpinned(keys)
        except Exception:
            self.slo.record("serving_availability", bad=1)
            raise
        self.slo.record("serving_availability", good=1)
        return result

    def _lookup_unpinned(self, keys: Sequence[int]) -> LookupResult:
        n = len(keys)
        with self.tracer.span("serving.lookup", track="serving", rows=n) as span:
            current = self.refresh()
            count = self._ckpt_count
            dim_hint = None
            hits: list[tuple[int, _CachedRow]] = []
            miss_keys: list[int] = []
            miss_positions: list[int] = []
            for i, key in enumerate(keys):
                key = int(key)
                row = self._cache.get(key)
                if (
                    row is not None
                    and count - row.ckpt_count <= self.staleness_bound_k
                ):
                    self._cache.move_to_end(key)
                    row.touches += 1
                    hits.append((i, row))
                    dim_hint = row.weights.shape[0]
                else:
                    if row is not None:
                        # Pinned below the staleness bound: stale.
                        del self._cache[key]
                        self.stats.invalidated += 1
                    miss_keys.append(key)
                    miss_positions.append(i)
            fetched: LookupResult | None = None
            if miss_keys:
                fetched = self.backend.lookup(miss_keys, current)
                dim_hint = fetched.weights.shape[1]
            weights = np.empty((n, dim_hint or 0), dtype=np.float32)
            row_snapshots = np.empty(n, dtype=np.int64)
            for i, row in hits:
                weights[i] = row.weights
                row_snapshots[i] = row.snapshot_id
            cold = 0
            if fetched is not None:
                positions = np.asarray(miss_positions, dtype=np.intp)
                weights[positions] = fetched.weights
                if fetched.row_snapshots is not None:
                    row_snapshots[positions] = fetched.row_snapshots
                else:
                    row_snapshots[positions] = fetched.snapshot_id
                cold = fetched.cold
                self._admit(miss_keys, fetched, count)
            self._note(n, len(hits), len(miss_keys), cold)
            span.set(
                snapshot=current, hits=len(hits), remote=len(miss_keys), cold=cold
            )
        return LookupResult(
            weights=weights,
            snapshot_id=current,
            hits=len(hits) + (fetched.hits if fetched is not None else 0),
            cold=cold,
            row_snapshots=row_snapshots,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _admit(
        self, miss_keys: list[int], fetched: LookupResult, ckpt_count: int
    ) -> None:
        if self.capacity_rows == 0:
            return
        for j, key in enumerate(miss_keys):
            if self.freq_admission:
                seen = self._touched.get(key, 0) + 1
                self._touched[key] = seen
                self._touched.move_to_end(key)
                if len(self._touched) > 8 * max(1, self.capacity_rows):
                    self._touched.popitem(last=False)
                if seen < 2:
                    continue
            pin = (
                int(fetched.row_snapshots[j])
                if fetched.row_snapshots is not None
                else fetched.snapshot_id
            )
            self._cache[key] = _CachedRow(
                weights=np.array(fetched.weights[j], copy=True),
                snapshot_id=pin,
                ckpt_count=ckpt_count,
            )
            self._cache.move_to_end(key)
            while len(self._cache) > self.capacity_rows:
                self._cache.popitem(last=False)

    def _note(self, rows: int, hits: int, remote: int, cold: int) -> None:
        self.stats.requests += 1
        self.stats.rows += rows
        self.stats.cache_hits += hits
        self.stats.remote_rows += remote
        self.stats.cold_rows += cold
        if self.registry is not None:
            self.registry.counter("repro_serving_requests_total").add(1)
            self.registry.counter("repro_serving_rows_total").add(rows)
            if hits:
                self.registry.counter("repro_serving_cache_hits_total").add(hits)
            if remote:
                self.registry.counter("repro_serving_remote_rows_total").add(remote)
            if cold:
                self.registry.counter("repro_serving_cold_rows_total").add(cold)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def cached_rows(self) -> int:
        return len(self._cache)

    @property
    def latest_serving_snapshot(self) -> int:
        """Delegates to the backend (this tier adds no snapshots)."""
        return self.backend.latest_serving_snapshot

    @property
    def checkpoints_completed(self) -> int:
        """Delegates to the backend (this tier adds no checkpoints)."""
        return self.backend.checkpoints_completed

    @property
    def num_entries(self) -> int:
        return self.backend.num_entries
