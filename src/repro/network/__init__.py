"""RPC layer between training workers and PS nodes.

Section V-C: the TensorFlow operators (``PullWeights`` /
``PushGradients`` / ``UpdateWeights``) talk to the PS backend over a
low-overhead RPC on RDMA. This package reproduces that boundary with
real wire messages:

* :mod:`repro.network.messages` — binary encode/decode of every
  request/response (numpy payloads, fixed little-endian headers, CRC32
  frame checksums);
* :mod:`repro.network.rpc` — a channel that moves encoded bytes over
  the simulated link, charging transfer time, with retry + exponential
  backoff + per-call timeout budgets and wire-error discipline
  (server-side exceptions arrive as error-coded status frames and are
  re-raised as typed errors), plus a server-side dispatcher;
* :mod:`repro.network.frontend` — ``RemotePSClient``, a drop-in for
  :class:`~repro.core.server.OpenEmbeddingServer` whose every operation
  round-trips through encoded messages, so byte counts and wire timing
  are real; pushes carry ``(worker_id, seq)`` dedup headers so retries
  never double-apply gradients.

Fault injection on this boundary lives in
:mod:`repro.failure.network_faults`.
"""

from repro.network.frontend import PSNodeService, RemotePSClient
from repro.network.messages import (
    CheckpointRequest,
    MaintainRequest,
    MaintainResponse,
    MessageError,
    PullRequest,
    PullResponse,
    PushRequest,
    StatusResponse,
    decode_message,
)
from repro.network.rpc import (
    Delivery,
    PerfectLink,
    RpcChannel,
    RpcServer,
    RpcStats,
)

__all__ = [
    "PullRequest",
    "PullResponse",
    "PushRequest",
    "CheckpointRequest",
    "MaintainRequest",
    "MaintainResponse",
    "StatusResponse",
    "MessageError",
    "decode_message",
    "Delivery",
    "PerfectLink",
    "RpcChannel",
    "RpcServer",
    "RpcStats",
    "RemotePSClient",
    "PSNodeService",
]
