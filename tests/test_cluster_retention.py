"""Regression tests for distributed checkpoint-retention races.

Both scenarios were found by the stateful server machine
(tests/test_stateful_server.py) and are pinned here explicitly:

1. **Empty-shard recovery**: a shard that owns no keys still carries
   the durable *Checkpointed Batch ID*; recovery must read it (the
   original code's `pool or PmemPool(...)` dropped empty pools because
   ``PmemPool`` defines ``__len__``).
2. **Straggler retention**: a shard completing checkpoint N+1 must NOT
   recycle checkpoint N's versions while N is still the newest
   checkpoint completed by EVERY shard — in cluster mode the
   coordinator retains its completed history until the external
   (cluster-wide) barrier confirms supersession.
"""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.server import OpenEmbeddingServer
from repro.core.optimizers import PSSGD
from repro.pmem.pool import PmemPool
from repro.pmem.space import VersionedEntryStore

DIM = 2


def make_server(num_nodes=3):
    config = ServerConfig(
        num_nodes=num_nodes, embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=31
    )
    cache = CacheConfig(capacity_bytes=2 * DIM * 4)
    return OpenEmbeddingServer(config, cache, PSSGD(lr=0.25)), config, cache


def train(server, keys, batch):
    server.pull(keys, batch)
    server.maintain(batch)
    server.push(keys, np.zeros((len(keys), DIM), dtype=np.float32), batch)


class TestEmptyShardRecovery:
    def test_recovery_with_keyless_shards(self):
        """One key, three shards: two shards hold nothing but must still
        recover their checkpoint root."""
        server, config, cache = make_server()
        train(server, [0], 0)
        server.barrier_checkpoint(0)
        expected = server.state_snapshot()
        pools = server.crash()
        assert sum(1 for pool in pools if len(pool) == 0) >= 1
        recovered, reports = OpenEmbeddingServer.recover(
            pools, config, cache, PSSGD(lr=0.25)
        )
        assert all(r.checkpoint_batch_id == 0 for r in reports)
        got = recovered.state_snapshot()
        for key, weights in expected.items():
            assert np.array_equal(got[key], weights)


class TestStragglerRetention:
    def test_racing_shard_keeps_cluster_checkpoint_versions(self):
        """Replays the falsifying schedule: shard completes checkpoints
        0 and 2 back-to-back while a sibling shard is still at 0; the
        cluster must remain recoverable to 0."""
        server, config, cache = make_server()
        train(server, [0, 1], 0)
        server.request_checkpoint(0)
        snapshot_at_0 = server.state_snapshot()
        # Shard 0 races ahead on checkpoint 0.
        server.nodes[0].cache.complete_pending_checkpoints()
        server._sync_external_barriers()
        train(server, [0, 1, 2], 1)
        train(server, [4], 2)
        server.request_checkpoint(2)
        # Key 1's shard completes BOTH pending checkpoints while some
        # sibling has only completed 0 -> global stays 0.
        owner = server.partitioner.node_of(1)
        server.nodes[owner].cache.complete_pending_checkpoints()
        server._sync_external_barriers()
        assert server.global_completed_checkpoint == 0
        # Key 1's batch-0 state must still be recoverable on its shard.
        node = server.nodes[owner]
        entry = node.cache.index.find(1)
        recoverable = (entry.in_dram and entry.version <= 0) or any(
            v <= 0 for v in node.store.versions_of(1)
        )
        assert recoverable
        # And a full-cluster crash restores batch 0 exactly.
        pools = server.crash()
        recovered, __ = OpenEmbeddingServer.recover(pools, config, cache, PSSGD(lr=0.25))
        assert recovered.global_completed_checkpoint == 0
        got = recovered.state_snapshot()
        for key, weights in snapshot_at_0.items():
            assert np.array_equal(got[key], weights), key


class TestCoordinatorClusterMode:
    @pytest.fixture
    def store(self):
        return VersionedEntryStore(PmemPool(1 << 16), entry_bytes=8)

    def test_history_retained_until_external_confirms(self, store):
        coordinator = CheckpointCoordinator(store, cluster_mode=True)
        coordinator.request(0)
        coordinator.complete_head()
        coordinator.request(2)
        coordinator.complete_head()
        # Both completed checkpoints remain barriers (external unknown).
        store.put(1, 0, None)
        store.put(1, 2, None)
        store.put(1, 5, None)
        assert store.versions_of(1) == [0, 2, 5]
        # Cluster confirms 2 is globally complete: 0 may be recycled.
        coordinator.set_external_barrier(2)
        store.recycle()
        assert store.versions_of(1) == [2, 5]

    def test_standalone_mode_keeps_only_last_completed(self, store):
        coordinator = CheckpointCoordinator(store, cluster_mode=False)
        coordinator.request(0)
        coordinator.complete_head()
        coordinator.request(2)
        coordinator.complete_head()
        store.put(1, 0, None)
        store.put(1, 2, None)
        store.put(1, 5, None)
        # Only the newest completed checkpoint (2) is protected.
        assert store.versions_of(1) == [2, 5]

    def test_history_survives_recovery_construction(self, store):
        store.set_checkpointed_batch_id(4)
        coordinator = CheckpointCoordinator(store, cluster_mode=True)
        store.put(1, 3, None)
        store.put(1, 7, None)
        # The durable checkpoint (4) seeds the history: version 3 stays.
        assert store.versions_of(1) == [3, 7]
