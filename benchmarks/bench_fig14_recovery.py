"""Figure 14: recovery-time comparison.

Paper (2.1 B entries, 500 GB model):
  DRAM-PS restoring its checkpoint from SSD:  1512.8 s
  DRAM-PS restoring its checkpoint from PMem:  751.1 s
  PMem-OE scan + index rebuild:                380.2 s  (3.97x faster)

Two parts here: (a) the analytic model evaluated at the paper's scale,
(b) an actual end-to-end crash/recover of scaled-down live systems to
show the same ordering with real data structures.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import pytest

from benchmarks.conftest import run_once
from repro.baselines.dram_ps import DRAMPSNode
from repro.bench import Headline, Param, register
from repro.config import CacheConfig, ServerConfig
from repro.core.ps_node import PSNode
from repro.core.recovery import (
    estimate_dram_ps_recovery_seconds,
    estimate_recovery_seconds,
    recover_node,
)

PAPER = {"dram_ps_ssd": 1512.8, "dram_ps_pmem": 751.08, "pmem_oe": 380.2}
ENTRIES = 2_100_000_000
ENTRY_BYTES = 256


def live_recovery_demo(num_keys: int = 5000):
    """Crash scaled-down live systems; return their recovery reports."""
    import numpy as np

    server_config = ServerConfig(
        embedding_dim=16, pmem_capacity_bytes=1 << 26, seed=1
    )
    cache_config = CacheConfig(capacity_bytes=64 << 10)
    keys = list(range(num_keys))
    grads = np.full((len(keys), 16), 0.1, dtype=np.float32)

    oe = PSNode(0, server_config, cache_config)
    oe.pull(keys, 0)
    oe.maintain(0)
    oe.push(keys, grads, 0)
    oe.barrier_checkpoint()
    oe_pool = oe.crash()
    __, oe_report = recover_node(oe_pool, server_config, cache_config)

    dram = DRAMPSNode(server_config)
    dram.pull(keys, 0)
    dram.push(keys, grads, 0)
    dram.checkpoint()
    dram_pool = dram.crash()
    recovered, batch_id = DRAMPSNode.recover(dram_pool, server_config)
    return oe_report, recovered.num_entries, batch_id


def test_fig14_recovery_time(benchmark, report):
    def run():
        analytic = {
            "dram_ps_ssd": estimate_dram_ps_recovery_seconds(
                entries=ENTRIES, entry_bytes=ENTRY_BYTES, checkpoint_device="ssd"
            ),
            "dram_ps_pmem": estimate_dram_ps_recovery_seconds(
                entries=ENTRIES, entry_bytes=ENTRY_BYTES, checkpoint_device="pmem"
            ),
            "pmem_oe": estimate_recovery_seconds(
                entries=ENTRIES, versions=ENTRIES, entry_bytes=ENTRY_BYTES
            ),
        }
        return analytic, live_recovery_demo()

    analytic, (oe_report, dram_entries, dram_batch) = run_once(benchmark, run)
    report.title("fig14_recovery", "Figure 14: recovery time (paper scale, seconds)")
    labels = {
        "dram_ps_ssd": "DRAM-PS, checkpoint on SSD",
        "dram_ps_pmem": "DRAM-PS, checkpoint on PMem",
        "pmem_oe": "PMem-OE, scan + rebuild",
    }
    for key, label in labels.items():
        report.row(label, f"{PAPER[key]:.1f}", f"{analytic[key]:.1f}")
        assert analytic[key] == pytest.approx(PAPER[key], rel=0.12)
    speedup = analytic["dram_ps_ssd"] / analytic["pmem_oe"]
    report.row("PMem-OE speedup vs SSD path", "3.97x", f"{speedup:.2f}x")
    assert speedup == pytest.approx(3.97, rel=0.15)

    report.line()
    report.line(
        f"  live demo (5000 entries): PMem-OE recovered "
        f"{oe_report.entries_recovered} entries to checkpoint "
        f"{oe_report.checkpoint_batch_id}; DRAM-PS restored "
        f"{dram_entries} entries to checkpoint {dram_batch}"
    )
    assert oe_report.entries_recovered == dram_entries == 5000


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["live_recovered_equal"]:
        failures.append("live PMem-OE and DRAM-PS recovered entry counts differ")
    if metrics["speedup_vs_ssd"] <= 2.0:
        failures.append(
            f"PMem-OE recovery speedup {metrics['speedup_vs_ssd']:.2f}x "
            "vs SSD checkpoint below 2x"
        )
    return failures


@register(
    "fig14_recovery",
    params=[
        Param("entries", "int", ENTRIES, help="analytic model scale"),
        Param("live_entries", "int", 5000, help="live crash/recover demo size"),
    ],
    smoke={"live_entries": 2000},
    headline={
        "speedup_vs_ssd": Headline(direction="higher", max_regression=0.05),
        "live_recovered_equal": Headline(),
    },
    check=_check,
)
def entry(*, entries, live_entries):
    """Analytic recovery times at paper scale plus a live scaled-down
    crash/recover on real data structures."""
    dram_ssd = estimate_dram_ps_recovery_seconds(
        entries=entries, entry_bytes=ENTRY_BYTES, checkpoint_device="ssd"
    )
    dram_pmem = estimate_dram_ps_recovery_seconds(
        entries=entries, entry_bytes=ENTRY_BYTES, checkpoint_device="pmem"
    )
    pmem_oe = estimate_recovery_seconds(
        entries=entries, versions=entries, entry_bytes=ENTRY_BYTES
    )
    oe_report, dram_entries, __ = live_recovery_demo(live_entries)
    return {
        "dram_ssd_s": dram_ssd,
        "dram_pmem_s": dram_pmem,
        "pmem_oe_s": pmem_oe,
        "speedup_vs_ssd": dram_ssd / pmem_oe,
        "live_recovered_equal": (
            oe_report.entries_recovered == dram_entries == live_entries
        ),
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig14_recovery"))
