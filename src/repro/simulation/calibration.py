"""Calibration constants for the performance model.

The paper's absolute numbers come from a specific cloud testbed (V100
GPU machines, ``re6p.13xlarge`` PMem servers, 30 Gb intranet). This
reproduction's substrate is a simulator, so absolute times are not
expected to match; these constants are chosen so the *shapes* of the
evaluation figures hold — who wins, by roughly what factor, where gaps
grow. Each constant documents its derivation from a paper datapoint.

All times are seconds (simulated), bandwidths bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1 << 30


@dataclass(frozen=True)
class Calibration:
    """Tunable cost constants of the cluster performance model.

    Attributes:
        hash_lookup_s: DRAM hash probe + response-buffer copy per entry
            on the pull path (Algorithm 1's read-locked fast path).
        entry_create_s: one-time cost of initialising a new entry under
            the write lock (Algorithm 1 lines 6-12).
        inline_maint_section_s: serialized critical section an
            *inline*-maintained cache (Ori-Cache) pays per access: LRU
            list splice under a global lock. The deferred maintainer
            pays the same work but off the critical path.
        lock_contention_factor: per-extra-contender surcharge on
            serialized sections. Drives the Figure 3/7 scaling gap:
            Ori-Cache's inline sections are contended by every worker's
            request threads at the batch-boundary burst.
        update_apply_s: per-entry optimizer application on the PS.
        maintainer_entry_s: deferred maintainer bookkeeping per accessed
            entry (version check, reorder) — runs on maintainer threads.
        index_rebuild_pmem_oe_s: recovery index-rebuild cost per entry
            for PMem-OE. Figure 14: 380.2 s for the 2.1 B-entry model,
            of which ~13 s is the PMem scan at 39 GB/s -> ~175 ns/entry.
        index_insert_dram_ps_s: recovery per-entry cost for DRAM-PS
            (hash insert + entry allocation + copy). Figure 14: 751.1 s
            from PMem = ~13 s device read + 2.1 B * ~351 ns.
        checkpoint_ssd_read_bw: effective read bandwidth when DRAM-PS
            loads its checkpoint file from SSD/NAS. Figure 14's
            1512.8 s implies ~0.65 GB/s effective (cloud NAS-backed
            volume, not a local NVMe at spec sheet speed).
        dense_ckpt_pause_s: per-checkpoint pause for TensorFlow's dense
            checkpoint (one GPU dumps the MLP; Figure 12/13 attribute
            PMem-OE's entire residual overhead, ~1-2 % at 20-min
            intervals, to this).
        tf_ps_entry_s: per-entry service cost of the TensorFlow
            parameter-server baseline in Section VI-F (single-process,
            no burst-optimised path).
    """

    hash_lookup_s: float = 0.15e-6
    entry_create_s: float = 1.0e-6
    inline_maint_section_s: float = 3.6e-6
    lock_contention_factor: float = 0.20
    update_apply_s: float = 0.20e-6
    maintainer_entry_s: float = 0.15e-6
    #: Per-access software overhead of a PMem-resident operation on the
    #: request path (persistent pointer chasing, fences); serialized and
    #: contended during the batch-boundary burst.
    pmem_op_overhead_s: float = 6.8e-6
    #: Per-access critical section of the PMem-aware concurrent hash
    #: (libpmemobj allocator + bucket locks + transactional metadata).
    #: Large because it aggregates a full persistent-transaction round
    #: trip; its contention factor is ~0 because the cost is already
    #: fully serialized.
    pmem_hash_section_s: float = 38e-6
    pmem_hash_contention_factor: float = 0.0
    #: Contention surcharge per extra worker for PMem-side sections —
    #: worse than DRAM locks because the section itself includes fenced
    #: PMem writes.
    pmem_contention_factor: float = 0.20
    index_rebuild_pmem_oe_s: float = 175e-9
    index_insert_dram_ps_s: float = 351e-9
    checkpoint_ssd_read_bw: float = 0.65 * GB
    dense_ckpt_pause_s: float = 12.0
    tf_ps_entry_s: float = 6.0e-6
    #: Additional per-byte cost of the TensorFlow PS request path
    #: (single-process session: extra tensor copies through protocol
    #: buffers), which is why its gap widens at embedding dim 64
    #: (Figure 15).
    tf_ps_per_byte_s: float = 20e-9
    #: Per-entry cost of an incremental checkpoint dump (allocator +
    #: transactional metadata on the checkpoint device) on top of raw
    #: bandwidth.
    incremental_entry_dump_s: float = 16e-6
    #: Slowdown multiplier when the incremental dump's writes land on
    #: the same PMem the training system is using (Figure 12's
    #: interference effect).
    incremental_interference_factor: float = 2.2
    #: Multiplier on DRAM-PS's synchronous incremental dump: the pause
    #: includes quiescing all request threads and serializing the dirty
    #: snapshot out of the live hash before the device write. Calibrated
    #: against Figure 6's DRAM-PS vs PMem-OE gap (5.6-7.2 %).
    incremental_dram_ps_factor: float = 2.7
    #: Dense (MLP) share of the total model size; <1 % per Section VI-A.
    dense_model_fraction: float = 0.008
    #: Effective bandwidth of the dense checkpoint path (GPU -> network
    #: -> backup storage).
    dense_ckpt_bw: float = 0.08 * GB


DEFAULT_CALIBRATION = Calibration()
