"""Metrics collection: counters, cache statistics, request traces.

``RequestTrace`` records per-request timestamps on the simulated clock
and buckets them per millisecond — the exact view of Figure 2 ("Access
pattern in two batches"), where pull and update bursts appear in pairs
at batch boundaries.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A named monotone counter."""

    name: str
    value: int = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


@dataclass
class CacheStats:
    """Hit/miss accounting for a DRAM cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    loads: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when no accesses yet)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats bundle into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.flushes += other.flushes
        self.loads += other.loads

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0
        self.loads = 0


@dataclass
class RpcReliabilityStats:
    """Retry/timeout/dedup observability for the RPC path.

    Channels contribute ``retries`` / ``timeouts`` / ``wire_errors`` /
    ``backoff_seconds``; the server side contributes
    ``dup_suppressed`` (retried pushes whose replay was absorbed by
    the dedup window) and fault-injection totals come from the link.
    """

    retries: int = 0
    timeouts: int = 0
    wire_errors: int = 0
    dup_suppressed: int = 0
    backoff_seconds: float = 0.0
    faults_injected: int = 0

    def merge(self, other: "RpcReliabilityStats") -> None:
        """Accumulate another stats bundle into this one."""
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.wire_errors += other.wire_errors
        self.dup_suppressed += other.dup_suppressed
        self.backoff_seconds += other.backoff_seconds
        self.faults_injected += other.faults_injected

    def reset(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.wire_errors = 0
        self.dup_suppressed = 0
        self.backoff_seconds = 0.0
        self.faults_injected = 0


@dataclass
class PrefetchStats:
    """Observability for the lookahead prefetch pipeline.

    ``demand_keys`` are pulls that had to run on the critical path
    (batch keys not validly buffered); ``buffer_hits`` were served from
    the lookahead buffer without touching the backend; ``prefetch_keys``
    were pulled ahead of time in the overlap window; ``patched_keys``
    are pushed keys re-pulled to restore the staleness invariant;
    ``deduped_keys`` are window keys skipped because a valid buffered
    copy already existed; ``overlap_hidden_seconds`` is simulated
    maintenance + prefetch time hidden behind GPU compute.
    """

    demand_keys: int = 0
    buffer_hits: int = 0
    prefetch_keys: int = 0
    patched_keys: int = 0
    invalidated_keys: int = 0
    deduped_keys: int = 0
    batches: int = 0
    overlap_hidden_seconds: float = 0.0

    @property
    def backend_keys(self) -> int:
        """Keys actually pulled from the backend (all causes)."""
        return self.demand_keys + self.prefetch_keys + self.patched_keys

    @property
    def hit_rate(self) -> float:
        """Fraction of trainer lookups served from the buffer."""
        total = self.demand_keys + self.buffer_hits
        if total == 0:
            return 0.0
        return self.buffer_hits / total

    def merge(self, other: "PrefetchStats") -> None:
        """Accumulate another stats bundle into this one."""
        self.demand_keys += other.demand_keys
        self.buffer_hits += other.buffer_hits
        self.prefetch_keys += other.prefetch_keys
        self.patched_keys += other.patched_keys
        self.invalidated_keys += other.invalidated_keys
        self.deduped_keys += other.deduped_keys
        self.batches += other.batches
        self.overlap_hidden_seconds += other.overlap_hidden_seconds

    def reset(self) -> None:
        self.demand_keys = 0
        self.buffer_hits = 0
        self.prefetch_keys = 0
        self.patched_keys = 0
        self.invalidated_keys = 0
        self.deduped_keys = 0
        self.batches = 0
        self.overlap_hidden_seconds = 0.0


class RequestTrace:
    """Timestamped request log bucketed per millisecond.

    Args:
        enabled: tracing costs memory proportional to request count, so
            it is off by default and switched on only by the Figure 2
            bench and trace-analysis tests.
    """

    PULL = "pull"
    UPDATE = "update"

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._events: list[tuple[float, str, int]] = []

    def record(self, sim_time: float, op: str, count: int = 1) -> None:
        """Log ``count`` requests of type ``op`` at ``sim_time`` seconds."""
        if self.enabled:
            self._events.append((sim_time, op, count))

    @property
    def events(self) -> list[tuple[float, str, int]]:
        """All recorded (time, op, count) events, in arrival order."""
        return list(self._events)

    def per_millisecond(self, op: str | None = None) -> dict[int, int]:
        """Request counts bucketed by integer millisecond.

        Args:
            op: restrict to one op type (``PULL``/``UPDATE``); None sums
                everything.
        """
        buckets: dict[int, int] = defaultdict(int)
        for time_s, event_op, count in self._events:
            if op is not None and event_op != op:
                continue
            buckets[int(time_s * 1000)] += count
        return dict(buckets)

    def totals(self) -> dict[str, int]:
        """Total request count per op type."""
        totals: dict[str, int] = defaultdict(int)
        for _, event_op, count in self._events:
            totals[event_op] += count
        return dict(totals)

    def clear(self) -> None:
        self._events.clear()


@dataclass
class Metrics:
    """A bundle of all statistics one PS node (or run) collects.

    Every sub-bundle lives here — cache, RPC reliability, prefetch
    pipeline, request trace — so one ``Metrics`` object snapshots (and
    one :meth:`reset` clears) a whole run. The observability layer
    hoists the bundle into labeled registry metrics via
    :func:`repro.obs.registry.collect_bundle`.
    """

    cache: CacheStats = field(default_factory=CacheStats)
    rpc: RpcReliabilityStats = field(default_factory=RpcReliabilityStats)
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
    trace: RequestTrace = field(default_factory=RequestTrace)
    pulls: int = 0
    updates: int = 0
    entries_created: int = 0
    checkpoints_completed: int = 0
    pmem_flush_entries: int = 0
    pmem_load_entries: int = 0
    serving_lookups: int = 0
    serving_rows: int = 0
    serving_cold_rows: int = 0

    def merge(self, other: "Metrics") -> None:
        """Accumulate another node's bundle (multi-node aggregation).

        Request traces are not merged — they are per-run event logs,
        not additive counters.
        """
        self.cache.merge(other.cache)
        self.rpc.merge(other.rpc)
        self.prefetch.merge(other.prefetch)
        self.pulls += other.pulls
        self.updates += other.updates
        self.entries_created += other.entries_created
        self.checkpoints_completed += other.checkpoints_completed
        self.pmem_flush_entries += other.pmem_flush_entries
        self.pmem_load_entries += other.pmem_load_entries
        self.serving_lookups += other.serving_lookups
        self.serving_rows += other.serving_rows
        self.serving_cold_rows += other.serving_cold_rows

    def reset(self) -> None:
        self.cache.reset()
        self.rpc.reset()
        self.prefetch.reset()
        self.trace.clear()
        self.pulls = 0
        self.updates = 0
        self.entries_created = 0
        self.checkpoints_completed = 0
        self.pmem_flush_entries = 0
        self.pmem_load_entries = 0
        self.serving_lookups = 0
        self.serving_rows = 0
        self.serving_cold_rows = 0
