"""The parallel sweep runner: grid -> cells -> records -> trajectories.

``SweepRunner`` expands a declarative :class:`~repro.bench.space.Grid`
(whose canonical ``bench`` axis names the registered benchmark each
cell runs) into validated cells with deterministic per-cell seeds, fans
the cells out over a ``multiprocessing`` pool, isolates per-run
failures (a crashed run records an *error* record, it never kills the
sweep), and appends schema-versioned ``repro-bench-v1`` records to the
per-benchmark ``BENCH_<name>.json`` trajectories.

Design invariants:

* **Determinism** — cell order, fingerprints, and derived seeds depend
  only on the grid and base seed, never on scheduling. Parallel and
  serial sweeps produce identical records (up to wall-clock duration
  and timestamps); a test pins this.
* **Resume** — ``resume=True`` skips cells whose ``(fingerprint,
  repeat)`` already has an ``ok`` record at the sweep's scale, so a
  partially-written trajectory continues instead of restarting.
* **Isolation** — worker exceptions are caught and serialized into the
  record's ``error`` field with a traceback.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import time
import traceback
from dataclasses import dataclass, field

from repro.bench.records import (
    RunRecord,
    Trajectory,
    cell_fingerprint,
    derive_seed,
    environment_info,
)
from repro.bench.registry import REGISTRY, BenchRegistry
from repro.bench.space import Grid
from repro.errors import ConfigError

__all__ = ["SweepCell", "SweepResult", "SweepRunner", "default_results_dir"]


def default_results_dir() -> pathlib.Path:
    """``benchmarks/results`` of the enclosing checkout."""
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved run: benchmark, params, seed, identity."""

    bench: str
    params: dict
    seed: int
    repeat: int
    fingerprint: str


@dataclass
class SweepResult:
    """What a sweep did: the records plus bookkeeping."""

    records: list = field(default_factory=list)
    skipped: int = 0
    paths: list = field(default_factory=list)

    @property
    def ok(self) -> int:
        return sum(1 for record in self.records if record.status == "ok")

    @property
    def errors(self) -> int:
        return sum(1 for record in self.records if record.status == "error")


# -- worker side ---------------------------------------------------------

_WORKER_REGISTRY: BenchRegistry | None = None


def _pool_init(registry: BenchRegistry | None) -> None:
    """Pool initializer: install the registry in the worker process."""
    global _WORKER_REGISTRY
    if registry is None:
        from repro.bench.registry import discover

        discover()
        registry = REGISTRY
    _WORKER_REGISTRY = registry


def _run_cell(payload: dict) -> dict:
    """Execute one cell; *always* returns a record dict, never raises.

    Module-level (picklable) so a Pool can map it; failure isolation
    lives here — any exception from the benchmark becomes an ``error``
    record with a traceback.
    """
    registry = _WORKER_REGISTRY if _WORKER_REGISTRY is not None else REGISTRY
    start = time.perf_counter()
    base = dict(
        bench=payload["bench"],
        params=payload["params"],
        seed=payload["seed"],
        scale=payload["scale"],
        repeat=payload["repeat"],
        fingerprint=payload["fingerprint"],
        env=payload["env"],
    )
    try:
        spec = registry.get(payload["bench"])
        metrics = spec.run(payload["params"])
        record = RunRecord(
            status="ok",
            metrics={key: _plain(value) for key, value in metrics.items()},
            duration_s=time.perf_counter() - start,
            **base,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        raise
    except BaseException:
        record = RunRecord(
            status="error",
            error=traceback.format_exc(limit=20),
            duration_s=time.perf_counter() - start,
            **base,
        )
    return record.to_dict()


def _plain(value):
    """Strip numpy scalars etc. down to JSON-serializable numbers."""
    if isinstance(value, bool):
        return value
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, (int, float)):
        return value
    return float(value)


# -- driver side ---------------------------------------------------------


class SweepRunner:
    """Expand grids, run cells (optionally in parallel), write records."""

    def __init__(
        self,
        registry: BenchRegistry | None = None,
        results_dir=None,
        jobs: int = 1,
        scale: str = "smoke",
        base_seed: int = 0,
        repeats: int = 1,
        keep_history: bool = False,
    ):
        if scale not in ("smoke", "full"):
            raise ConfigError(f"scale {scale!r} must be 'smoke' or 'full'")
        if jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if repeats < 1:
            raise ConfigError("repeats must be >= 1")
        self.registry = registry if registry is not None else REGISTRY
        self.results_dir = pathlib.Path(
            results_dir if results_dir is not None else default_results_dir()
        )
        self.jobs = jobs
        self.scale = scale
        self.base_seed = base_seed
        self.repeats = repeats
        self.keep_history = keep_history

    # -- expansion -----------------------------------------------------

    def expand(self, grid: Grid) -> list:
        """Grid -> validated :class:`SweepCell` list (deterministic).

        Every cell dict must carry a ``bench`` key naming a registered
        benchmark; the remaining keys are coerced against that
        benchmark's typed parameter space (smoke overrides applied
        first at smoke scale). A derived seed is injected into the
        ``seed`` param when the benchmark declares one and the grid did
        not pin it.
        """
        cells = []
        for raw in grid.cells():
            if "bench" not in raw:
                raise ConfigError(
                    f"grid {grid.name!r}: every cell needs a 'bench' axis "
                    f"(got {sorted(raw)})"
                )
            overrides = {key: value for key, value in raw.items() if key != "bench"}
            spec = self.registry.get(raw["bench"])
            params = spec.resolve(overrides, scale=self.scale)
            for repeat in range(self.repeats):
                seed = derive_seed(self.base_seed, spec.name, params, repeat)
                cell_params = dict(params)
                if "seed" in spec.params and "seed" not in overrides:
                    cell_params["seed"] = spec.params["seed"].coerce(
                        seed % (2**31 - 1)
                    )
                cells.append(
                    SweepCell(
                        bench=spec.name,
                        params=cell_params,
                        seed=seed,
                        repeat=repeat,
                        fingerprint=cell_fingerprint(spec.name, cell_params),
                    )
                )
        return cells

    # -- execution -----------------------------------------------------

    def run(self, cells, resume: bool = False, progress=None) -> SweepResult:
        """Run cells, write trajectories, return the sweep summary."""
        cells = list(cells)
        result = SweepResult()
        if resume:
            done: dict[str, set] = {}
            for bench in {cell.bench for cell in cells}:
                trajectory = Trajectory.load_or_create(self.results_dir, bench)
                done[bench] = trajectory.completed_keys(self.scale)
            remaining = []
            for cell in cells:
                if (cell.fingerprint, cell.repeat) in done.get(cell.bench, set()):
                    result.skipped += 1
                else:
                    remaining.append(cell)
            cells = remaining
        if not cells:
            return result

        env = environment_info()
        payloads = [
            {
                "bench": cell.bench,
                "params": cell.params,
                "seed": cell.seed,
                "scale": self.scale,
                "repeat": cell.repeat,
                "fingerprint": cell.fingerprint,
                "env": env,
            }
            for cell in cells
        ]
        if self.jobs == 1 or len(cells) == 1:
            _pool_init(self.registry)
            raws = []
            for payload in payloads:
                raws.append(_run_cell(payload))
                self._report(progress, raws[-1])
        else:
            raws = self._run_pool(payloads, progress)

        records = [RunRecord.from_dict(raw) for raw in raws]
        result.records.extend(records)
        by_bench: dict[str, list] = {}
        for record in records:
            by_bench.setdefault(record.bench, []).append(record)
        for bench, bench_records in sorted(by_bench.items()):
            trajectory = Trajectory.load_or_create(self.results_dir, bench)
            for record in bench_records:
                trajectory.append(record, keep_history=self.keep_history)
            result.paths.append(trajectory.save(self.results_dir))
        return result

    def _run_pool(self, payloads, progress):
        """Fan out over a process pool; falls back to in-process when
        the platform cannot fork/pickle the registry."""
        initargs = (None if self.registry is REGISTRY else self.registry,)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            context = multiprocessing.get_context()
        raws = []
        with context.Pool(
            processes=min(self.jobs, len(payloads)),
            initializer=_pool_init,
            initargs=initargs,
        ) as pool:
            for raw in pool.imap(_run_cell, payloads):
                raws.append(raw)
                self._report(progress, raw)
        return raws

    @staticmethod
    def _report(progress, raw: dict) -> None:
        if progress is None:
            return
        status = raw["status"]
        label = " ".join(
            f"{key}={value}" for key, value in sorted(raw["params"].items())
        )
        progress(
            f"  [{status:>5}] {raw['bench']} {label} "
            f"({raw['duration_s']:.2f}s)"
        )

    # -- one-shot convenience ------------------------------------------

    def run_single(self, bench: str, overrides: dict | None = None) -> RunRecord:
        """Resolve + run one benchmark in-process; returns the record."""
        spec = self.registry.get(bench)
        params = spec.resolve(overrides or {}, scale=self.scale)
        seed = derive_seed(self.base_seed, bench, params, 0)
        if "seed" in spec.params and "seed" not in (overrides or {}):
            params["seed"] = spec.params["seed"].coerce(seed % (2**31 - 1))
        payload = {
            "bench": bench,
            "params": params,
            "seed": seed,
            "scale": self.scale,
            "repeat": 0,
            "fingerprint": cell_fingerprint(bench, params),
            "env": environment_info(),
        }
        _pool_init(self.registry)
        return RunRecord.from_dict(_run_cell(payload))
