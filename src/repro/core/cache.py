"""The pipelined DRAM cache with co-designed checkpointing.

This module is the paper's core: Algorithm 1 (*Pull Weights*) and
Algorithm 2 (*Cache Replacement & Checkpoint*), plus the update path.

The functional contract (independent of timing):

* ``pull(keys, n)`` serves weights from DRAM or PMem and enqueues the
  accessed entries on the access queue — it never mutates the LRU list
  or moves data between tiers (that is deferred, the "pipeline").
* ``maintain(n)`` is one cache-maintainer round for batch ``n``: flush
  entries whose version is covered by an outstanding checkpoint, advance
  versions, reorder the LRU, load missed entries into DRAM and evict
  victims — completing the on-going checkpoint when the victim's version
  has moved past it (Algorithm 2 lines 22-28).
* ``update(keys, grads, n)`` applies pushed gradients via the PS-side
  optimizer.

Whether the *time* of ``maintain`` overlaps GPU compute is decided by
the performance model (``CacheConfig.pipelined``); the functional
behaviour — and therefore the trained weights — is identical either
way, which tests assert.

The cache supports a **metadata-only mode** (``initializer=None``) where
entries carry no weight arrays: all bookkeeping, versioning, eviction
and checkpoint logic runs identically, but pulls return None. The
performance benchmarks run in this mode to simulate billions-scale
models cheaply.

**Vectorized hot path** (``CacheConfig.arena``, the default): resident
payloads live in a contiguous :class:`~repro.core.arena.EmbeddingArena`
and the all-hits common case of pull/maintain/update runs batched —
one ``itemgetter`` residency probe, one fancy-index gather or
``np.add.at`` segment-sum, one vectorized optimizer application —
falling back to the per-key reference loop whenever a key is missing,
cold, or checkpoint/eviction work is due. The two paths are
bit-identical (the equivalence and Hypothesis suites compare them);
``arena=False`` keeps the reference path for comparison benchmarks.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import CacheConfig, EvictionPolicy
from repro.core.admission import FrequencyAdmission
from repro.core.arena import EmbeddingArena
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.entry import EmbeddingEntry, Location
from repro.core.hash_index import HashIndex
from repro.core.lru import LRUList
from repro.core.optimizers import PSOptimizer, PSSGD, coerce_f32
from repro.core.queues import AccessQueue
from repro.errors import KeyNotFoundError, ServerError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmem.space import VersionedEntryStore
from repro.simulation.metrics import Metrics


@dataclass(frozen=True)
class PullResult:
    """Outcome of one pull request (Algorithm 1)."""

    weights: np.ndarray | None
    hits: int
    misses: int
    created: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.created


@dataclass(frozen=True)
class MaintainResult:
    """Outcome of one maintenance round (Algorithm 2)."""

    processed: int
    loads: int
    flushes: int
    evictions: int
    checkpoints_completed: int


class PipelinedCache:
    """DRAM cache over a versioned PMem store (Figures 4 and 5).

    Args:
        config: capacity / policy / pipelining / arena flags.
        store: the PMem-side versioned entry store.
        coordinator: checkpoint request/completion tracking.
        dim: embedding dimension.
        initializer: ``key -> float32[dim]`` for new entries; None puts
            the cache in metadata-only mode.
        optimizer: PS-side update rule (default plain SGD).
        metrics: statistics sink (a fresh one is created if omitted).
        tracer: span/event sink — maintenance rounds become
            ``cache.maintain`` spans, per-entry PMem traffic becomes
            ``pmem.store`` / ``pmem.load`` instants, and opportunistic
            checkpoint completion emits ``checkpoint.completed``.
    """

    def __init__(
        self,
        config: CacheConfig,
        store: VersionedEntryStore,
        coordinator: CheckpointCoordinator,
        dim: int,
        initializer: Callable[[int], np.ndarray] | None = None,
        optimizer: PSOptimizer | None = None,
        metrics: Metrics | None = None,
        auto_create: bool = True,
        tracer: Tracer | None = None,
    ):
        self.config = config
        self.store = store
        self.coordinator = coordinator
        self.dim = dim
        self.initializer = initializer
        self.optimizer = optimizer or PSSGD()
        self.metrics = metrics or Metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.auto_create = auto_create
        self.index = HashIndex()
        self.lru = LRUList()
        self.access_queue = AccessQueue()
        self.capacity_entries = config.capacity_entries(self._stored_bytes())
        self.admission = (
            FrequencyAdmission(config.admission_threshold)
            if config.admission_threshold > 0
            else None
        )
        self.state_width = self.optimizer.state_width(dim)
        # Vectorized fast paths apply in both value and metadata modes;
        # the arena itself only exists when there are real payloads.
        self.vectorized = config.arena
        self.arena = (
            EmbeddingArena(dim, self.state_width)
            if (config.arena and initializer is not None)
            else None
        )
        self._arena_generation = 0
        # DRAM-residency maps: every entry whose weights are resident is
        # in ``_dram``; every arena-backed one also maps to its row in
        # ``_rows``. These mirror ``index``/``lru`` state and exist so
        # the fast paths can probe a whole batch with one itemgetter.
        self._dram: dict[int, EmbeddingEntry] = {}
        self._rows: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Algorithm 1: pull
    # ------------------------------------------------------------------

    def pull(self, keys: Sequence[int], batch_id: int) -> PullResult:
        """Serve a pull request for ``keys`` at batch ``batch_id``.

        Weights are copied out of DRAM or PMem as found; accessed
        entries are appended to the access queue for the maintainer
        (Algorithm 1 line 17). New keys are initialised in DRAM
        (lines 6-12).

        Raises:
            KeyNotFoundError: unseen key with ``auto_create`` disabled.
        """
        value_mode = self.initializer is not None
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        if self.vectorized and len(keys) > 0:
            fast = self._pull_fast(keys, batch_id, value_mode)
            if fast is not None:
                return fast
        out = (
            np.empty((len(keys), self.dim), dtype=np.float32) if value_mode else None
        )
        entries: list[EmbeddingEntry] = []
        hits = misses = created = 0
        for i, key in enumerate(keys):
            entry = self.index.find(key)
            if entry is None:
                if not self.auto_create:
                    raise KeyNotFoundError(key)
                entry = self._create_entry(key, batch_id)
                created += 1
            elif entry.in_dram:
                hits += 1
            else:
                misses += 1
            if out is not None:
                out[i] = self._read_weights(entry)
            entries.append(entry)
        self.access_queue.append(batch_id, entries)
        self.metrics.pulls += len(keys)
        self.metrics.cache.hits += hits
        self.metrics.cache.misses += misses
        self.metrics.entries_created += created
        return PullResult(weights=out, hits=hits, misses=misses, created=created)

    def _pull_fast(
        self, keys: Sequence[int], batch_id: int, value_mode: bool
    ) -> PullResult | None:
        """All-hits batched pull: one residency probe, one gather.

        Returns None (no state mutated) when any key is not
        DRAM-resident with an arena row — the per-key path then handles
        creation, PMem reads and miss accounting.
        """
        try:
            if len(keys) == 1:
                entries = [self._dram[keys[0]]]
            else:
                entries = list(operator.itemgetter(*keys)(self._dram))
        except KeyError:
            return None
        out = None
        if value_mode:
            try:
                if len(keys) == 1:
                    rows = [self._rows[keys[0]]]
                else:
                    rows = operator.itemgetter(*keys)(self._rows)
            except KeyError:
                return None
            out = self.arena.data[np.asarray(rows, dtype=np.intp), : self.dim]
        n = len(keys)
        self.access_queue.append(batch_id, entries)
        self.metrics.pulls += n
        self.metrics.cache.hits += n
        return PullResult(weights=out, hits=n, misses=0, created=0)

    # ------------------------------------------------------------------
    # Algorithm 2: deferred cache maintenance + checkpointing
    # ------------------------------------------------------------------

    def maintain(self, batch_id: int) -> MaintainResult:
        """Run the cache-maintainer round for batch ``batch_id``.

        Must be called after all pulls of the batch completed and before
        the batch's updates are applied — the write lock in Algorithm 2
        enforces exactly this ordering in the real system.
        """
        with self.tracer.span("cache.maintain", batch=batch_id) as span:
            result = self._maintain(batch_id)
            span.set(
                processed=result.processed,
                loads=result.loads,
                flushes=result.flushes,
                evictions=result.evictions,
            )
            return result

    def _maintain(self, batch_id: int) -> MaintainResult:
        entries = self.access_queue.pop_batch(batch_id)
        if (
            self.vectorized
            and entries
            and self.config.policy == EvictionPolicy.LRU
            and self.coordinator.max_pending() is None
        ):
            fast = self._maintain_fast(entries, batch_id)
            if fast is not None:
                return fast
        loads = flushes = evictions = completed = 0
        for entry in entries:
            flush_barrier = self.coordinator.max_pending()
            if entry.in_dram:
                if flush_barrier is not None and entry.version <= flush_barrier:
                    # The entry's current weights are the state the
                    # on-going checkpoint must capture; persist them
                    # before the version advances (Alg. 2 lines 13-15).
                    self._flush(entry)
                    flushes += 1
                entry.version = batch_id
                self._reorder(entry)
            else:
                if self.admission is not None and not self.admission.should_admit(
                    entry.key
                ):
                    # Admission filter (extension): a cold key stays in
                    # PMem — its durable copy remains authoritative and
                    # its version does not advance, so checkpoint
                    # bookkeeping is untouched.
                    continue
                self._load_to_dram(entry)
                loads += 1
                entry.version = batch_id
                self._reorder(entry)
            ev, fl, done = self._evict_to_capacity()
            evictions += ev
            flushes += fl
            completed += done
        return MaintainResult(
            processed=len(entries),
            loads=loads,
            flushes=flushes,
            evictions=evictions,
            checkpoints_completed=completed,
        )

    def _maintain_fast(
        self, entries: list[EmbeddingEntry], batch_id: int
    ) -> MaintainResult | None:
        """All-resident LRU round with no checkpoint or eviction work.

        Under those preconditions the per-entry loop degenerates to
        "advance version, move to front" per occurrence; processing only
        each entry's LAST occurrence (most recent first in reverse)
        lands on the identical final LRU order in one pass per entry.
        Returns None (no state mutated) when any accessed entry is
        cold or the round could evict.
        """
        # C-level dedup: first-seen in the reversed sequence is each
        # entry's last occurrence, newest first.
        uniq = list(dict.fromkeys(reversed(entries)))
        dram = Location.DRAM
        fresh = 0
        for entry in uniq:
            if entry.location is not dram:
                return None
            if not entry.in_lru:
                fresh += 1
        # The resident set only grows during a round, so its maximum is
        # the final size: no intermediate eviction is possible either.
        if len(self.lru) + fresh > self.capacity_entries:
            return None
        uniq.reverse()  # process oldest last-occurrence first
        self.lru.move_many_to_front(uniq, version=batch_id)
        return MaintainResult(
            processed=len(entries),
            loads=0,
            flushes=0,
            evictions=0,
            checkpoints_completed=0,
        )

    # ------------------------------------------------------------------
    # update (push) path
    # ------------------------------------------------------------------

    def update(
        self,
        keys: Sequence[int],
        grads: np.ndarray | None,
        batch_id: int,
    ) -> int:
        """Apply pushed gradients for batch ``batch_id``.

        Duplicate keys within one push have their gradients summed
        before a single optimizer application — standard sparse-gradient
        aggregation. Returns the number of distinct entries updated;
        ``metrics.updates`` counts the same distinct entries (duplicate
        keys in one push are one update, not several).

        Gradients are coerced to float32 here, at the aggregation
        boundary, so a float64 gradient cannot change the arithmetic
        (and the trained bits) relative to the float32 path. Decoded
        wire gradients may be read-only views; this path never mutates
        them (aggregation copies).

        Raises:
            KeyNotFoundError: a key that was never pulled.
            ServerError: gradient shape mismatch.
        """
        value_mode = self.initializer is not None
        is_array = isinstance(keys, np.ndarray)
        n = len(keys)
        if value_mode:
            if grads is None:
                raise ServerError("value-mode cache requires gradients on update")
            grads = np.asarray(grads)
            if grads.shape != (n, self.dim):
                raise ServerError(
                    f"gradient shape {grads.shape} != ({n}, {self.dim})"
                )
            grads = coerce_f32(grads)
        else:
            grads = None
        if self.vectorized and n > 0:
            key_arr = (
                keys
                if is_array and keys.dtype == np.uint64
                else np.asarray(keys, dtype=np.uint64)
            )
            updated = self._update_fast(key_arr, grads, batch_id, value_mode)
            if updated is not None:
                self.metrics.updates += updated
                return updated
        if is_array:
            keys = keys.tolist()
        aggregated = self._aggregate(keys, grads)
        for key, grad in aggregated.items():
            entry = self.index.find(key)
            if entry is None:
                raise KeyNotFoundError(key)
            if entry.in_dram:
                if batch_id > entry.version:
                    # Lookahead flow: this entry's pull for ``batch_id``
                    # was served from a prefetch buffer, so no
                    # maintenance round advanced it. Apply maintain's
                    # flush-before-advance rule here instead — persist
                    # the pre-update state if a pending checkpoint still
                    # needs it, then advance the version and reorder so
                    # the LRU keeps its version order (the one-comparison
                    # checkpoint-completion test depends on it). In the
                    # strictly serial flow ``batch_id == entry.version``
                    # after maintain, so this branch never fires.
                    flush_barrier = self.coordinator.max_pending()
                    if flush_barrier is not None and entry.version <= flush_barrier:
                        self._flush(entry)
                    entry.version = batch_id
                    self._reorder(entry)
                if value_mode:
                    self.optimizer.apply(entry.weights, entry.opt_state, grad)
                entry.dirty = True
            else:
                # Not expected in the normal pull -> maintain -> update
                # order (maintenance loads every accessed entry), but
                # kept for robustness: read-modify-write through the
                # store, which retains checkpoint-protected versions.
                self._update_in_pmem(entry, grad, batch_id, value_mode)
            if batch_id > entry.updated:
                entry.updated = batch_id
        self.metrics.updates += len(aggregated)
        return len(aggregated)

    def _update_fast(
        self,
        key_arr: np.ndarray,
        grads: np.ndarray | None,
        batch_id: int,
        value_mode: bool,
    ) -> int | None:
        """All-resident batched update: segment-sum + one optimizer call.

        Aggregation mirrors the dict path exactly: the first occurrence
        of each key seeds its row, later duplicates accumulate in
        occurrence order, so the float sums are bit-identical. Returns
        None (no state mutated) when any distinct key lacks a resident
        arena row — the per-key path then handles PMem read-modify-write
        and unknown keys.
        """
        uniq, first_idx, inverse = np.unique(
            key_arr, return_index=True, return_inverse=True
        )
        key_list = uniq.tolist()
        try:
            if len(key_list) == 1:
                entries = [self._dram[key_list[0]]]
            else:
                entries = list(operator.itemgetter(*key_list)(self._dram))
        except KeyError:
            return None
        rows = None
        if value_mode:
            try:
                if len(key_list) == 1:
                    rows = [self._rows[key_list[0]]]
                else:
                    rows = operator.itemgetter(*key_list)(self._rows)
            except KeyError:
                return None
        # Per-entry bookkeeping. In the strictly serial flow maintain
        # already advanced every entry to ``batch_id``, so this is one
        # flag per entry; only the lookahead flow needs the ordered
        # second pass.
        advance = False
        for entry in entries:
            entry.dirty = True
            if batch_id > entry.updated:
                entry.updated = batch_id
            if batch_id > entry.version:
                advance = True
        if advance:
            # Lookahead flow, identical to the per-key path: flush the
            # pre-update state if a pending checkpoint needs it, then
            # advance and reorder — in first-occurrence order, the same
            # iteration order as the dict path, which the LRU reorder
            # sequence (and therefore eviction order) depends on.
            for i in np.argsort(first_idx, kind="stable").tolist():
                entry = entries[i]
                if batch_id > entry.version:
                    flush_barrier = self.coordinator.max_pending()
                    if flush_barrier is not None and entry.version <= flush_barrier:
                        self._flush(entry)
                    entry.version = batch_id
                    self._reorder(entry)
                    entry.dirty = True  # _flush clears it; final state is dirty
        if value_mode:
            agg = grads[first_idx]  # copy: first occurrence seeds each row
            if len(key_arr) != len(uniq):
                dup = np.ones(len(key_arr), dtype=bool)
                dup[first_idx] = False
                np.add.at(agg, inverse[dup], grads[dup])
            rows_arr = np.asarray(rows, dtype=np.intp)
            block = self.arena.data[rows_arr]
            self.optimizer.apply_batch(
                block[:, : self.dim],
                block[:, self.dim :] if self.state_width else None,
                agg,
            )
            self.arena.data[rows_arr] = block
        return len(key_list)

    # ------------------------------------------------------------------
    # barriers / draining
    # ------------------------------------------------------------------

    def flush_all(self) -> int:
        """Durably flush every cached entry at its current version.

        Used at training barriers (epoch end, clean shutdown). Returns
        the number of entries flushed.
        """
        with self.tracer.span("cache.flush_all") as span:
            flushed = 0
            for entry in self.lru:
                self._flush(entry)
                self._backfill_pending(entry)
                flushed += 1
            span.set(flushed=flushed)
            return flushed

    def complete_pending_checkpoints(self) -> list[int]:
        """Flush the cache and complete every queued checkpoint.

        The paper's system completes checkpoints opportunistically via
        evictions; at a barrier (or in tests) we force completion: after
        ``flush_all`` every pending snapshot is durable, so all queued
        requests can finish.
        """
        if self.coordinator.head() is None:
            return []
        self.flush_all()
        return self.coordinator.complete_all_pending()

    def drop_cache(self) -> int:
        """Flush and evict everything (leaves an empty, consistent cache)."""
        dropped = 0
        while len(self.lru) > 0:
            victim = self.lru.pop_victim()
            self._flush(victim)
            self._backfill_pending(victim)
            self._demote(victim)
            dropped += 1
        return dropped

    def drop_entry(self, entry: EmbeddingEntry) -> None:
        """Remove ``entry`` from every cache structure (ownership drop).

        Used when a key leaves the node entirely (shard migration): the
        LRU link, residency maps, arena row and index handle all go at
        once, so the fast-path maps can never resolve a departed key.
        The caller drops the durable versions from the store.
        """
        if entry.in_lru:
            self.lru.remove(entry)
        if entry.row >= 0:
            self.arena.free(entry.row)
            self._rows.pop(entry.key, None)
            entry.row = -1
        self._dram.pop(entry.key, None)
        self.index.remove(entry.key)
        entry.weights = None
        entry.opt_state = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def cached_entries(self) -> int:
        return len(self.lru)

    def cached_keys(self) -> list[int]:
        """Keys currently DRAM-resident, MRU first."""
        return [entry.key for entry in self.lru]

    def read_current_weights(self, key: int) -> np.ndarray:
        """The live weights of ``key`` regardless of tier (testing aid).

        Raises:
            KeyNotFoundError: unknown key.
        """
        entry = self.index.find(key)
        if entry is None:
            raise KeyNotFoundError(key)
        return np.array(self._read_weights(entry), copy=True)

    def validate(self) -> None:
        """Check cross-structure invariants; used by tests."""
        self.index.validate()
        self.lru.validate(
            check_version_order=self.config.policy == EvictionPolicy.LRU
        )
        for entry in self.lru:
            if not entry.in_dram:
                raise ServerError(f"listed entry {entry.key} marked PMEM")
        dram_count = sum(1 for e in self.index.entries() if e.in_dram)
        if dram_count != len(self.lru):
            raise ServerError(
                f"{dram_count} DRAM entries but {len(self.lru)} listed in LRU"
            )
        if len(self._dram) != dram_count:
            raise ServerError(
                f"{dram_count} DRAM entries but {len(self._dram)} in residency map"
            )
        for key, entry in self._dram.items():
            if not entry.in_dram or entry.key != key:
                raise ServerError(f"stale residency-map entry for key {key}")
        for key, row in self._rows.items():
            entry = self._dram.get(key)
            if entry is None or entry.row != row:
                raise ServerError(f"stale arena-row mapping for key {key}")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _stored_bytes(self) -> int:
        """Bytes one entry occupies (weights + optimizer state)."""
        width = self.dim + self.optimizer.state_width(self.dim)
        return max(1, width) * 4

    def _arena_alloc(self) -> int:
        """Reserve an arena row, rebinding live views after a growth.

        Growing replaces the arena's backing matrix, which orphans every
        resident entry's ``weights``/``opt_state`` view — they must be
        re-pointed at the new matrix (contents were copied over, so the
        values are unchanged).
        """
        row = self.arena.alloc()
        if self.arena.generation != self._arena_generation:
            self._arena_generation = self.arena.generation
            for key, existing in self._rows.items():
                entry = self._dram[key]
                entry.weights = self.arena.weights_view(existing)
                entry.opt_state = self.arena.state_view(existing)
        return row

    def _bind_row(self, entry: EmbeddingEntry, row: int) -> None:
        entry.row = row
        entry.weights = self.arena.weights_view(row)
        entry.opt_state = self.arena.state_view(row)
        self._rows[entry.key] = row

    def _create_entry(self, key: int, batch_id: int) -> EmbeddingEntry:
        entry = EmbeddingEntry(key, version=batch_id)
        if self.initializer is not None:
            weights = np.asarray(self.initializer(key), dtype=np.float32)
            if weights.shape != (self.dim,):
                raise ServerError(
                    f"initializer returned shape {weights.shape}, want ({self.dim},)"
                )
            if self.arena is not None:
                row = self._arena_alloc()
                packed = self.arena.data[row]
                packed[: self.dim] = weights
                state = self.optimizer.init_state(self.dim)
                if state is not None:
                    packed[self.dim :] = state
                elif self.state_width:
                    packed[self.dim :] = 0.0
                self._bind_row(entry, row)
            else:
                entry.weights = weights
                entry.opt_state = self.optimizer.init_state(self.dim)
        entry.location = Location.DRAM
        entry.dirty = True
        self.index.insert(entry)
        self._dram[key] = entry
        return entry

    def _read_weights(self, entry: EmbeddingEntry) -> np.ndarray | None:
        if entry.in_dram:
            return entry.weights
        __, stored = self.store.read_latest(entry.key)
        if stored is None:
            return None
        return stored[: self.dim]

    def _reorder(self, entry: EmbeddingEntry) -> None:
        if self.config.policy == EvictionPolicy.LRU:
            self.lru.move_to_front(entry)
            return
        # FIFO / CLOCK: insertion order only. CLOCK marks RE-accessed
        # entries referenced so eviction grants them a second chance;
        # fresh insertions start unreferenced (standard CLOCK), which is
        # what makes one-hit scan keys leave before warm entries.
        if not entry.in_lru:
            self.lru.push_front(entry)
            entry.referenced = False
        elif self.config.policy == EvictionPolicy.CLOCK:
            entry.referenced = True

    def _backfill_pending(self, entry: EmbeddingEntry) -> None:
        """Give pending checkpoints a durable row despite read-advances.

        Read-only traffic (evaluation pulls, serving warm-up) advances
        ``entry.version`` without changing state. A checkpoint then
        requested at a barrier ``B < entry.version`` finds the flush
        stamped too new — ``read_at_most(key, B)`` misses the row even
        though the bytes *are* the state at ``B``, because nothing
        updated the entry since ``entry.updated <= B``. Write one extra
        version at the smallest such barrier; reads pinned to every
        higher pending barrier resolve to it too. Barriers below
        ``entry.updated`` were already served by flush-before-advance
        when the update landed.
        """
        for barrier in self.coordinator.queue.pending():
            if barrier >= entry.version:
                return
            if barrier >= entry.updated:
                self.store.put(entry.key, barrier, self._pack(entry))
                return

    def _flush(self, entry: EmbeddingEntry) -> None:
        """Persist the entry's current state under its current version."""
        if not entry.in_dram:
            raise ServerError(f"cannot flush non-resident entry {entry.key}")
        self.store.put(entry.key, entry.version, self._pack(entry))
        entry.dirty = False
        self.metrics.pmem_flush_entries += 1
        self.metrics.cache.flushes += 1
        self.tracer.instant(
            "pmem.store", track="pmem", key=entry.key, version=entry.version
        )

    def _load_to_dram(self, entry: EmbeddingEntry) -> None:
        """Algorithm 2 ``loadToDRAM``: promote the newest PMem version."""
        if entry.in_dram:
            raise ServerError(f"entry {entry.key} already resident")
        __, stored = self.store.read_latest(entry.key)
        if (
            self.arena is not None
            and stored is not None
            and stored.size == self.arena.row_width
        ):
            row = self._arena_alloc()
            self.arena.data[row] = stored
            self._bind_row(entry, row)
        else:
            self._unpack(entry, stored)
        self.index.set_location(entry, Location.DRAM)
        entry.dirty = False
        self._dram[entry.key] = entry
        self.metrics.pmem_load_entries += 1
        self.metrics.cache.loads += 1
        self.tracer.instant("pmem.load", track="pmem", key=entry.key)

    def _demote(self, entry: EmbeddingEntry) -> None:
        self.index.set_location(entry, Location.PMEM)
        self._dram.pop(entry.key, None)
        if entry.row >= 0:
            self.arena.free(entry.row)
            self._rows.pop(entry.key, None)
            entry.row = -1
        entry.weights = None
        entry.opt_state = None

    def _evict_to_capacity(self) -> tuple[int, int, int]:
        """Evict victims until within capacity.

        Returns (evictions, flushes, checkpoints_completed). The
        checkpoint-completion test of Algorithm 2 lines 23-28 runs on
        every victim: once the oldest cached version has moved past the
        on-going checkpoint's batch id, every entry the checkpoint needs
        is durable, so the *Checkpointed Batch ID* is persisted and the
        request dequeued.

        The paper's one-comparison completion test (victim.version > cp)
        is sound ONLY under LRU, where list order equals version order
        and the victim carries the cache's minimum version. FIFO and
        CLOCK keep insertion order, so a re-accessed tail entry can have
        a high version while a middle entry still holds pre-checkpoint
        state — for those policies the completion check scans for the
        true minimum cached version instead.
        """
        evictions = flushes = completed = 0
        while len(self.lru) > self.capacity_entries:
            victim = self._select_victim()
            head = self.coordinator.head()
            if head is not None and victim.version > head:
                floor = (
                    victim.version
                    if self.config.policy == EvictionPolicy.LRU
                    else self._min_cached_version()
                )
                while head is not None and floor > head:
                    self.coordinator.complete_head()
                    self.metrics.checkpoints_completed += 1
                    completed += 1
                    self.tracer.instant(
                        "checkpoint.completed", track="checkpoint", batch=head
                    )
                    head = self.coordinator.head()
            self.lru.remove(victim)
            if victim.dirty or not self.config.track_dirty:
                self._flush(victim)
                flushes += 1
            self._backfill_pending(victim)
            self._demote(victim)
            evictions += 1
            self.metrics.cache.evictions += 1
        return evictions, flushes, completed

    def _select_victim(self) -> EmbeddingEntry:
        """The entry to evict under the configured policy."""
        if self.config.policy != EvictionPolicy.CLOCK:
            return self.lru.peek_victim()
        # CLOCK: sweep from the tail; referenced entries get a second
        # chance (bit cleared, moved to the front).
        while True:
            candidate = self.lru.peek_victim()
            if not candidate.referenced:
                return candidate
            candidate.referenced = False
            self.lru.move_to_front(candidate)

    def _min_cached_version(self) -> int:
        """Minimum version across the cache (policy-agnostic scan)."""
        return min(entry.version for entry in self.lru)

    def _update_in_pmem(
        self,
        entry: EmbeddingEntry,
        grad: np.ndarray | None,
        batch_id: int,
        value_mode: bool,
    ) -> None:
        if value_mode:
            __, stored = self.store.read_latest(entry.key)
            weights = stored[: self.dim]
            state = stored[self.dim :] if stored.size > self.dim else None
            self.optimizer.apply(weights, state, grad)
            packed = stored
        else:
            packed = None
        self.store.put(entry.key, batch_id, packed)
        self.metrics.pmem_flush_entries += 1

    def _pack(self, entry: EmbeddingEntry) -> np.ndarray | None:
        if entry.row >= 0:
            # Arena-backed: the row IS the packed layout; the pool
            # copies on write, so handing out the live view is safe.
            return self.arena.data[entry.row]
        if entry.weights is None:
            return None
        if entry.opt_state is None:
            return entry.weights
        return np.concatenate([entry.weights, entry.opt_state])

    def _unpack(self, entry: EmbeddingEntry, stored: np.ndarray | None) -> None:
        if stored is None:
            entry.weights = None
            entry.opt_state = None
            return
        entry.weights = np.array(stored[: self.dim], copy=True)
        if stored.size > self.dim:
            entry.opt_state = np.array(stored[self.dim :], copy=True)
        else:
            entry.opt_state = None

    @staticmethod
    def _aggregate(
        keys: Sequence[int], grads: np.ndarray | None
    ) -> dict[int, np.ndarray | None]:
        """Sum duplicate keys' gradients (None grads pass through)."""
        aggregated: dict[int, np.ndarray | None] = {}
        for i, key in enumerate(keys):
            if grads is None:
                aggregated[key] = None
            elif key in aggregated:
                aggregated[key] = aggregated[key] + grads[i]
            else:
                aggregated[key] = np.array(grads[i], copy=True)
        return aggregated
