"""The serving-side read protocol: snapshot-pinned batched lookups.

Training talks to the PS through
:class:`~repro.core.backend.TrainBackend`; *serving* needs far less —
and far stricter reads. This module defines that contract:

* :class:`LookupResult` — the return of one batched ``lookup``: a dense
  ``(n, dim)`` weight matrix plus the snapshot every row was read at;
* :class:`ServingBackend` — the structural protocol of anything the
  online inference tier can read from: the in-process
  :class:`~repro.core.server.OpenEmbeddingServer`, the wire-level
  :class:`~repro.network.frontend.RemotePSClient`, the baselines, and
  the hierarchical :class:`~repro.dlrm.hps.HierarchicalPS` client cache
  itself;
* :class:`ReplicaSelector` — read fan-out policy across a shard's
  primary + backup replicas (round-robin / least-loaded / primary).

Consistency contract (the tentpole invariant): every lookup is pinned
to a **Checkpointed Batch ID** — a checkpoint that has durably
completed on every shard. Rows are read with
:meth:`~repro.pmem.space.VersionedEntryStore.read_at_most` against that
barrier, so a train-while-serve cluster can keep pushing gradients and
completing newer checkpoints without a reader ever observing a torn
row (half of batch ``b``, half of batch ``b+1``). Keys created after
the pinned snapshot serve the deterministic key-seeded initializer —
exactly the vector they had (virtually) at snapshot time.

Only *completed* checkpoint ids are valid snapshots: between barriers
the version store is free to recycle intermediate versions, so pinning
to an arbitrary batch id could silently read an older row. Backends
enforce ``snapshot_id <= latest_serving_snapshot`` and the serving tier
only ever pins to values it observed from ``latest_serving_snapshot``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConfigError

#: Methods every serving-capable backend must expose.
SERVING_BACKEND_METHODS = ("lookup",)

#: Read-only attributes every serving-capable backend must expose.
SERVING_BACKEND_PROPERTIES = (
    "latest_serving_snapshot",
    "checkpoints_completed",
    "num_entries",
)

#: Replica fan-out policies understood by :class:`ReplicaSelector`.
REPLICA_POLICIES = ("primary", "round_robin", "least_loaded")


@dataclass
class LookupResult:
    """One batched serving read.

    Attributes:
        weights: ``(n, dim)`` float32 matrix, one row per requested key,
            in request order. Rows are fresh arrays (never views into a
            store or a wire frame).
        snapshot_id: the Checkpointed Batch ID the read was pinned to.
            For a hierarchical read some rows may come from an older
            (still staleness-bounded) snapshot; ``row_snapshots`` then
            carries the per-row provenance.
        hits: rows served from a durable version at or below the
            snapshot.
        cold: rows whose key had no durable version at the snapshot
            (created later, or never created) — served the
            deterministic key-seeded initializer.
        row_snapshots: optional ``(n,)`` int64 array of the snapshot
            each row was actually read at (consistency audits); when
            None, every row is at ``snapshot_id``.
    """

    weights: np.ndarray
    snapshot_id: int
    hits: int = 0
    cold: int = 0
    row_snapshots: np.ndarray | None = None


@runtime_checkable
class ServingBackend(Protocol):
    """Structural protocol of a snapshot-consistent embedding reader.

    ``lookup(keys, snapshot_id)`` must return every requested row as it
    stood at the pinned Checkpointed Batch ID (``snapshot_id=None``
    means "the newest one"), never a torn or partially-updated row.
    ``latest_serving_snapshot`` is the newest checkpoint durably
    completed by every shard (-1 before the first checkpoint).
    """

    def lookup(
        self, keys: Sequence[int], snapshot_id: int | None = None
    ) -> LookupResult:
        """Batched snapshot-pinned read of ``keys``, in request order."""
        ...

    @property
    def latest_serving_snapshot(self) -> int:
        """Newest cluster-wide completed checkpoint id (-1 if none)."""
        ...

    @property
    def checkpoints_completed(self) -> int:
        """Monotone count of completed checkpoints (staleness clock)."""
        ...

    @property
    def num_entries(self) -> int:
        """Distinct embedding entries stored."""
        ...


def check_serving_backend(backend: object) -> ServingBackend:
    """Validate ``backend`` against the serving protocol; returns it typed.

    Raises:
        TypeError: the object is missing part of the surface, with the
            missing names spelled out.
    """
    missing = [
        name
        for name in (*SERVING_BACKEND_METHODS, *SERVING_BACKEND_PROPERTIES)
        if not hasattr(backend, name)
    ]
    if missing:
        raise TypeError(
            f"{type(backend).__name__} does not implement ServingBackend; "
            f"missing: {', '.join(sorted(missing))}"
        )
    return backend  # type: ignore[return-value]


@dataclass
class ReplicaSelector:
    """Pick which replica of a shard serves the next read.

    PR-5's :class:`~repro.core.replication.ReplicatedPSNode` keeps the
    backup bitwise identical to the primary, so *reads* (which never
    mutate) can fan out across both — the paper's hot-standby doubles as
    a serving replica for free. The selector is deliberately tiny and
    deterministic:

    * ``primary`` — all reads on the primary (writes-only backup);
    * ``round_robin`` — alternate primary/backup per request;
    * ``least_loaded`` — pick the replica with the fewest reads served
      so far (degenerates to round-robin under uniform service times,
      but skews toward the idler replica when one replica also absorbs
      training mirroring).

    ``replicas(shard)`` asks the shard how many live replicas it has
    (1 for a plain or degraded node); the selection is always taken
    modulo that count, so a failover mid-stream transparently collapses
    the fan-out back onto the surviving replica.
    """

    policy: str = "round_robin"
    _rr: dict[int, int] = field(default_factory=dict)
    _served: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.policy not in REPLICA_POLICIES:
            raise ConfigError(
                f"unknown replica policy {self.policy!r}; "
                f"choose from {REPLICA_POLICIES}"
            )

    @staticmethod
    def replica_count(shard) -> int:
        """Live replicas of ``shard`` (1 unless a healthy replicated pair)."""
        backup = getattr(shard, "backup", None)
        return 2 if backup is not None else 1

    def pick(self, node_id: int, replicas: int) -> int:
        """The replica index (0 = primary) for the next read on a shard."""
        if replicas <= 1:
            return 0
        if self.policy == "primary":
            return 0
        if self.policy == "round_robin":
            turn = self._rr.get(node_id, 0)
            self._rr[node_id] = turn + 1
            choice = turn % replicas
        else:  # least_loaded
            loads = [
                self._served.get((node_id, r), 0) for r in range(replicas)
            ]
            choice = int(np.argmin(loads))
        self._served[(node_id, choice)] = (
            self._served.get((node_id, choice), 0) + 1
        )
        return choice

    def loads(self, node_id: int) -> dict[int, int]:
        """Reads served per replica of ``node_id`` (introspection)."""
        return {
            replica: count
            for (nid, replica), count in sorted(self._served.items())
            if nid == node_id
        }
