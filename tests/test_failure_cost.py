"""Failure injection, Young's formula, and the Table V cost model."""

import pytest

from repro.cost.pricing import (
    DRAM_PS_DEPLOYMENT,
    ORI_CACHE_DEPLOYMENT,
    PMEM_OE_DEPLOYMENT,
    R6E_13XLARGE,
    RE6P_13XLARGE,
    cost_per_epoch,
    deployment_for_model,
    storage_saving_vs,
)
from repro.errors import ConfigError, CrashError
from repro.failure.injection import CrashSchedule, FailureInjector
from repro.failure.mttf import (
    expected_lost_work_seconds,
    expected_total_overhead_seconds,
    young_interval_seconds,
)

GB = 1 << 30


class TestCrashSchedule:
    def test_sorted_and_validated(self):
        schedule = CrashSchedule((5, 2, 9))
        assert schedule.crash_after_batches == (2, 5, 9)
        with pytest.raises(ConfigError):
            CrashSchedule((-1,))

    def test_random_deterministic(self):
        a = CrashSchedule.random(100, 5, seed=1)
        b = CrashSchedule.random(100, 5, seed=1)
        assert a == b
        assert len(a.crash_after_batches) == 5

    def test_poisson_respects_bounds(self):
        schedule = CrashSchedule.poisson(1000, mttf_batches=100, seed=2)
        assert all(0 <= b < 1000 for b in schedule.crash_after_batches)
        # Around 10 failures expected; allow wide slack.
        assert 2 <= len(schedule.crash_after_batches) <= 30

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            CrashSchedule.random(0, 1)
        with pytest.raises(ConfigError):
            CrashSchedule.random(10, 11)
        with pytest.raises(ConfigError):
            CrashSchedule.poisson(10, 0)


class TestFailureInjector:
    def test_fires_once_per_point(self):
        injector = FailureInjector(CrashSchedule((3,)))
        fired = [b for b in range(6) if injector.should_crash(b)]
        assert fired == [3]
        assert injector.crashes_fired == 1
        assert injector.remaining == 0

    def test_multiple_points(self):
        injector = FailureInjector(CrashSchedule((1, 4)))
        fired = [b for b in range(6) if injector.should_crash(b)]
        assert fired == [1, 4]

    def test_raise_style(self):
        injector = FailureInjector(CrashSchedule((0,)))
        with pytest.raises(CrashError) as excinfo:
            injector.raise_if_scheduled(0)
        assert excinfo.value.batch_id == 0


class TestYoung:
    def test_formula(self):
        assert young_interval_seconds(30.0, 6 * 3600) == pytest.approx(
            (2 * 30 * 6 * 3600) ** 0.5
        )

    def test_paper_ballpark(self):
        """With minute-scale checkpoint costs and Facebook-scale MTTF the
        optimum lands near tens of minutes — the paper's 20-min pick."""
        interval = young_interval_seconds(60.0, 12 * 3600)
        assert 10 * 60 < interval < 60 * 60

    def test_lost_work(self):
        assert expected_lost_work_seconds(1200, 3600) == 600

    def test_total_overhead_tradeoff(self):
        """Too-frequent and too-rare checkpointing both cost more than a
        sensible middle."""
        run, mttf, cost, recovery = 24 * 3600.0, 6 * 3600.0, 30.0, 380.0
        best = young_interval_seconds(cost, mttf)
        mid = expected_total_overhead_seconds(run, best, cost, mttf, recovery)
        frequent = expected_total_overhead_seconds(run, best / 20, cost, mttf, recovery)
        rare = expected_total_overhead_seconds(run, best * 20, cost, mttf, recovery)
        assert mid < frequent
        assert mid < rare

    def test_invalid(self):
        with pytest.raises(ConfigError):
            young_interval_seconds(0, 1)


class TestTableV:
    def test_hourly_prices(self):
        assert DRAM_PS_DEPLOYMENT.dollars_per_hour == pytest.approx(6.07)
        assert PMEM_OE_DEPLOYMENT.dollars_per_hour == pytest.approx(3.80)

    def test_epoch_costs(self):
        assert cost_per_epoch(DRAM_PS_DEPLOYMENT, 5.75) == pytest.approx(34.9, abs=0.1)
        assert cost_per_epoch(PMEM_OE_DEPLOYMENT, 5.33) == pytest.approx(20.3, abs=0.1)
        assert cost_per_epoch(ORI_CACHE_DEPLOYMENT, 7.01) == pytest.approx(26.6, abs=0.1)

    def test_headline_savings(self):
        assert storage_saving_vs(
            PMEM_OE_DEPLOYMENT, DRAM_PS_DEPLOYMENT, 5.33, 5.75
        ) == pytest.approx(0.42, abs=0.01)
        assert storage_saving_vs(
            PMEM_OE_DEPLOYMENT, ORI_CACHE_DEPLOYMENT, 5.33, 7.01
        ) == pytest.approx(0.24, abs=0.01)

    def test_sizing_logic(self):
        assert deployment_for_model(500 * GB, R6E_13XLARGE).machines == 2
        assert deployment_for_model(500 * GB, RE6P_13XLARGE).machines == 1

    def test_capacity(self):
        assert RE6P_13XLARGE.usable_model_bytes() == 756 * GB
        assert R6E_13XLARGE.usable_model_bytes() == (384 - 32) * GB

    def test_invalid(self):
        with pytest.raises(ConfigError):
            cost_per_epoch(PMEM_OE_DEPLOYMENT, 0)
        with pytest.raises(ConfigError):
            deployment_for_model(0, R6E_13XLARGE)
