"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.system == "pmem_oe"
        assert args.workers == 16

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--system", "bogus"])


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(["simulate", "--workers", "4", "--iterations", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated epoch" in out
        assert "miss rate" in out

    def test_all_systems_run(self, capsys):
        for system in ("dram_ps", "pmem_oe", "ori_cache", "pmem_hash", "tf_ps"):
            assert main(
                ["simulate", "--system", system, "--workers", "4",
                 "--iterations", "5"]
            ) == 0

    def test_with_checkpointing(self, capsys):
        code = main([
            "simulate", "--workers", "4", "--iterations", "20",
            "--checkpoint", "batch_aware", "--interval-seconds", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out


class TestTrain:
    def test_short_training(self, capsys):
        code = main([
            "train", "--batches", "8", "--fields", "4", "--vocab", "50",
            "--dim", "8", "--checkpoint-every", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss" in out
        assert "final" in out

    def test_crash_and_recover(self, capsys):
        code = main([
            "train", "--batches", "12", "--fields", "4", "--vocab", "50",
            "--dim", "8", "--checkpoint-every", "4", "--crash-at", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected crash" in out
        assert "resumed from checkpoint" in out or "restarting from scratch" in out


class TestPlanAndWorkload:
    def test_plan(self, capsys):
        assert main(["plan", "--model-gb", "500"]) == 0
        out = capsys.readouterr().out
        assert "DRAM-PS: 2 x" in out
        assert "PMem-OE: 1 x" in out
        assert "recovery estimate" in out

    def test_workload_matches_table2(self, capsys):
        assert main([
            "workload", "--keys", "200000", "--batches", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "85." in out  # top 0.05 % share
        assert "exponential fit" in out


class TestFaults:
    def test_lossy_wire_run(self, capsys):
        code = main([
            "faults", "--batches", "10", "--keys", "100", "--dim", "4",
            "--drop", "0.1", "--duplicate", "0.05", "--corrupt", "0.03",
            "--delay", "0.05", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "weights identical : True" in out
        assert "retries" in out
        assert "dup-suppressed" in out
        assert "backoff time" in out

    def test_clean_wire_run(self, capsys):
        code = main([
            "faults", "--batches", "5", "--keys", "50", "--dim", "4",
            "--drop", "0", "--duplicate", "0", "--corrupt", "0",
            "--delay", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected faults   : 0" in out
        assert "weights identical : True" in out


class TestReproduce:
    def test_list_experiments(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7_pipeline" in out
        assert "table2_skew" in out

    def test_no_args_lists(self, capsys):
        assert main(["reproduce"]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["reproduce", "not_an_experiment"]) == 2

    def test_runs_one_experiment(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        assert "reports written under" in capsys.readouterr().out
