"""Failure injection and checkpoint-interval planning.

* :mod:`repro.failure.injection` — deterministic and random crash
  schedules for end-to-end recovery testing.
* :mod:`repro.failure.network_faults` — seeded message drop /
  duplicate / corrupt / delay injection on the simulated link (the
  network as a failure domain, not just processes).
* :mod:`repro.failure.mttf` — Young's formula (the paper's Section
  VI-A basis for the 20-minute default interval) and expected lost-work
  accounting.
"""

from repro.failure.injection import (
    CrashSchedule,
    FailureInjector,
    NodeKillInjector,
    NodeKillSchedule,
)
from repro.failure.mttf import (
    expected_lost_work_seconds,
    sample_failure_times,
    young_interval_seconds,
)
from repro.failure.network_faults import FaultyLink, LinkFaultStats

__all__ = [
    "FailureInjector",
    "CrashSchedule",
    "NodeKillSchedule",
    "NodeKillInjector",
    "FaultyLink",
    "LinkFaultStats",
    "young_interval_seconds",
    "expected_lost_work_seconds",
    "sample_failure_times",
]
