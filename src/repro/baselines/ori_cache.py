"""'Ori-Cache': the non-pipelined DRAM-PMem cache baseline.

Table III row 3: a hybrid cache built from Facebook's concurrent hash
map and an STL list. Its two differences from OpenEmbedding:

1. **Inline maintenance** — the LRU list is updated, misses are loaded
   and victims written back *immediately on the request path*, under a
   coarse lock (an STL list is not concurrent). The performance model
   charges these as serialized, contended critical sections on the pull
   and push phases instead of the overlapped maintainer slot.
2. **Incremental checkpointing** — a caching system is a black box to
   checkpoints, so Ori-Cache uses the CheckFreq-style incremental dump
   (extra PMem writes that contend with training, Figure 12).

Functionally the cache behaviour (hit/miss stream, eviction order,
trained weights) is identical to OpenEmbedding with the same LRU policy
— the paper notes both have the same miss rate (Section VI-C4). The
implementation therefore reuses :class:`PipelinedCache` and simply runs
the maintainer inline after every pull; tests assert the equivalence.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.entry import EmbeddingEntry, Location
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer
from repro.core.serving_backend import LookupResult
from repro.baselines.incremental import CheckpointStats, IncrementalCheckpointer
from repro.errors import CheckpointError, ServerError
from repro.pmem.pool import PmemPool
from repro.simulation.device import MemoryDevice, PMEM_SPEC


class OriCacheNode:
    """A PS node with inline cache maintenance + incremental checkpoints.

    The constructor mirrors :class:`PSNode`; an inline cache must not be
    constructed as pipelined, so the cache config is forced to
    ``pipelined=False``.
    """

    def __init__(
        self,
        node_id: int,
        server_config: ServerConfig,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
        checkpoint_pool: PmemPool | None = None,
    ):
        cache_config = cache_config or CacheConfig()
        if cache_config.pipelined:
            cache_config = CacheConfig(
                capacity_bytes=cache_config.capacity_bytes,
                pipelined=False,
                maintainer_threads=cache_config.maintainer_threads,
                track_dirty=cache_config.track_dirty,
                policy=cache_config.policy,
            )
        self._node = PSNode(
            node_id,
            server_config,
            cache_config,
            optimizer,
            metadata_only=metadata_only,
        )
        if checkpoint_pool is None:
            checkpoint_pool = PmemPool(
                server_config.pmem_capacity_bytes, MemoryDevice(PMEM_SPEC)
            )
        self.checkpointer = IncrementalCheckpointer(
            checkpoint_pool, self._node.store.entry_bytes, self._read_state
        )
        self.last_maintain: MaintainResult | None = None

    # ------------------------------------------------------------------
    # PS protocol — maintenance runs inline with the pull
    # ------------------------------------------------------------------

    def pull(self, keys: Sequence[int], batch_id: int) -> PullResult:
        """Pull with immediate (inline) cache maintenance."""
        result = self._node.pull(keys, batch_id)
        self.last_maintain = self._node.maintain(batch_id)
        return result

    def maintain(self, batch_id: int) -> list[MaintainResult]:
        """No deferred work remains; returns the (empty) round's counts."""
        return [self._node.maintain(batch_id)]

    def push(
        self, keys: Sequence[int], grads: np.ndarray | None, batch_id: int
    ) -> int:
        updated = self._node.push(keys, grads, batch_id)
        self.checkpointer.mark_dirty(keys)
        return updated

    # ------------------------------------------------------------------
    # serving reads — from the durable incremental checkpoint
    # ------------------------------------------------------------------

    @property
    def latest_serving_snapshot(self) -> int:
        """Batch id of the newest durable incremental checkpoint."""
        return self.checkpointer.last_checkpoint_batch

    @property
    def checkpoints_completed(self) -> int:
        """Monotone count of committed checkpoints (staleness clock)."""
        return self.checkpointer.checkpoint_epoch

    def lookup(
        self, keys: Sequence[int], snapshot_id: int | None = None
    ) -> LookupResult:
        """Snapshot-pinned read from the durable checkpoint.

        Like DRAM-PS, the incremental checkpointer retains only the
        *newest* committed checkpoint, so the only servable pin is
        :attr:`latest_serving_snapshot`. Keys never checkpointed serve
        the deterministic key-seeded initializer.

        Raises:
            ServerError: metadata-only node.
            CheckpointError: no committed checkpoint, or ``snapshot_id``
                names any checkpoint other than the retained one.
        """
        if self._node.metadata_only:
            raise ServerError("lookup requires a value-mode node")
        latest = self.checkpointer.last_checkpoint_batch
        if snapshot_id is None:
            snapshot_id = latest
        if snapshot_id < 0 or snapshot_id != latest:
            raise CheckpointError(
                f"snapshot {snapshot_id} is not servable (incremental "
                f"checkpointing retains only checkpoint {latest})"
            )
        cfg = self.server_config
        dim = cfg.embedding_dim
        n = len(keys)
        weights = np.empty((n, dim), dtype=np.float32)
        hits = cold = 0
        for i, key in enumerate(keys):
            try:
                stored = self.checkpointer.read_entry(int(key))
            except KeyError:
                stored = None
            if stored is None:
                rng = np.random.default_rng((cfg.seed, int(key)))
                weights[i] = rng.uniform(
                    -cfg.initializer_scale, cfg.initializer_scale, dim
                ).astype(np.float32)
                cold += 1
            else:
                weights[i] = np.asarray(stored)[:dim]
                hits += 1
        self.metrics.serving_lookups += 1
        self.metrics.serving_rows += n
        self.metrics.serving_cold_rows += cold
        return LookupResult(
            weights=weights,
            snapshot_id=snapshot_id,
            hits=hits,
            cold=cold,
            row_snapshots=np.full(n, snapshot_id, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # checkpoint / recovery (incremental, like DRAM-PS)
    # ------------------------------------------------------------------

    def checkpoint(self, batch_id: int | None = None) -> CheckpointStats:
        """Synchronous incremental dump of dirty entries."""
        if batch_id is None:
            batch_id = self._node.latest_completed_batch
        stats = self.checkpointer.checkpoint(batch_id)
        self._node.metrics.checkpoints_completed += 1
        return stats

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """PSBackend checkpoint entry point (synchronous incremental).

        Raises:
            CheckpointError: no trained batch to snapshot.
        """
        if batch_id is None:
            batch_id = self._node.latest_completed_batch
        if batch_id < 0:
            raise CheckpointError("no completed batch to checkpoint")
        self.checkpoint(batch_id)
        return batch_id

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Same as :meth:`request_checkpoint` (already synchronous)."""
        return self.request_checkpoint(batch_id)

    def complete_pending_checkpoints(self) -> None:
        """No-op: incremental checkpoints complete synchronously."""

    def crash(self) -> PmemPool:
        """Process death; only the *checkpoint* pool is recoverable.

        Ori-Cache's live PMem entries are updated in place without
        version retention, so they are not batch-consistent after a
        crash — recovery must come from the incremental checkpoint.
        """
        self._node.pool.crash()
        pool = self.checkpointer.pool
        pool.crash()
        return pool

    @classmethod
    def recover(
        cls,
        checkpoint_pool: PmemPool,
        server_config: ServerConfig,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
        node_id: int = 0,
    ) -> tuple["OriCacheNode", int]:
        """Rebuild from the incremental checkpoint file."""
        batch_id, state = IncrementalCheckpointer.restore_from_pool(checkpoint_pool)
        node = cls(
            node_id,
            server_config,
            cache_config,
            optimizer,
            metadata_only=metadata_only,
            checkpoint_pool=checkpoint_pool,
        )
        for key, stored in state.items():
            node._node.store.put(key, batch_id, stored)
            entry = EmbeddingEntry(key, version=batch_id)
            entry.location = Location.PMEM
            node._node.cache.index.insert(entry)
        node._node.latest_completed_batch = batch_id
        return node, batch_id

    # ------------------------------------------------------------------
    # introspection — delegate to the wrapped node
    # ------------------------------------------------------------------

    @property
    def metrics(self):
        return self._node.metrics

    @property
    def server_config(self) -> ServerConfig:
        return self._node.server_config

    @property
    def cache(self):
        return self._node.cache

    @property
    def num_entries(self) -> int:
        return self._node.num_entries

    @property
    def latest_completed_batch(self) -> int:
        """Newest batch whose updates fully applied (-1 before training)."""
        return self._node.latest_completed_batch

    def read_weights(self, key: int) -> np.ndarray:
        return self._node.read_weights(key)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        return self._node.state_snapshot()

    def _read_state(self, keys: Iterable[int]) -> dict[int, np.ndarray | None]:
        state: dict[int, np.ndarray | None] = {}
        for key in keys:
            entry = self._node.cache.index.find(key)
            if entry is None:
                state[key] = None
                continue
            if entry.in_dram:
                state[key] = self._node.cache._pack(entry)
            else:
                __, stored = self._node.store.read_latest(key)
                state[key] = stored
        return state
