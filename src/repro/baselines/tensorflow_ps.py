"""The 'TensorFlow' parameter-server baseline of Section VI-F.

The paper's sanity check compares OpenEmbedding against TensorFlow's
own embedding layer / parameter server on the (smaller) Criteo Kaggle
dataset, because *"TensorFlow's parameter server does not support
synchronous training in the distributed setting"* and the 500 GB model
*"exceeds the memory capacity of a single server"*.

Functionally this is a single-process DRAM store (it shares the
DRAM-PS weight semantics); what distinguishes it is the constraint set:

* single node only — the embedding table must fit in one server's DRAM
  (:class:`MemoryError` otherwise, mirroring the paper's deployment
  failure);
* no PS-side burst-optimised request path — the performance model
  charges a higher per-entry service cost with lock contention that
  grows with worker count (Figure 15's widening gap).
"""

from __future__ import annotations

from repro.baselines.dram_ps import DRAMPSNode
from repro.config import ServerConfig
from repro.core.optimizers import PSOptimizer
from repro.errors import ConfigError


class TensorFlowPS(DRAMPSNode):
    """Single-server DRAM embedding store with TF-like constraints."""

    def __init__(
        self,
        server_config: ServerConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
        dram_capacity_bytes: int = 384 << 30,
    ):
        server_config = server_config or ServerConfig()
        if server_config.num_nodes != 1:
            raise ConfigError(
                "the TensorFlow PS baseline does not support distributed "
                "synchronous training (Section VI-F); num_nodes must be 1"
            )
        super().__init__(
            server_config,
            optimizer,
            metadata_only=metadata_only,
            dram_capacity_bytes=dram_capacity_bytes,
        )

    def supports_model_bytes(self, model_bytes: int) -> bool:
        """Whether a model of ``model_bytes`` can be deployed at all."""
        return (
            self.dram_capacity_bytes is not None
            and model_bytes <= self.dram_capacity_bytes
        )
