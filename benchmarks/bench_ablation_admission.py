"""Ablation: TinyLFU-style admission filter (extension beyond the paper).

The filter keeps one-hit tail keys out of the DRAM cache. Under the
paper's skew the tail carries ~4 % of accesses, so the win is modest at
the 2 GB point but grows as skew weakens (more tail churn) — a
candidate improvement the paper leaves on the table.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.simulation.cluster import SystemKind
from repro.simulation.profiles import DEFAULT_PROFILE


def test_ablation_admission_filter(benchmark, report):
    def run():
        rows = {}
        for name, skew in (("original", 1.0), ("less skew", 0.85)):
            plain = simulate_epoch(
                SystemKind.PMEM_OE,
                16,
                skew=skew,
                cache=DEFAULT_PROFILE.cache_config(paper_mb=400),
            )
            filtered = simulate_epoch(
                SystemKind.PMEM_OE,
                16,
                skew=skew,
                cache=DEFAULT_PROFILE.cache_config(
                    paper_mb=400, admission_threshold=1
                ),
            )
            rows[name] = (plain, filtered)
        return rows

    rows = run_once(benchmark, run)
    report.title(
        "ablation_admission",
        "Ablation: admission filter off/on (16 GPUs, 400 MB-eq cache)",
    )
    for name, (plain, filtered) in rows.items():
        report.row(
            f"{name}: epoch time",
            "-",
            f"{plain.sim_seconds:.2f} s -> {filtered.sim_seconds:.2f} s",
        )
        report.row(
            f"{name}: PMem load+flush ops",
            "-",
            f"{plain.maintain_deferred_seconds * 1e3:.1f} -> "
            f"{filtered.maintain_deferred_seconds * 1e3:.1f} ms deferred",
        )

    for plain, filtered in rows.values():
        # The filter must never hurt the epoch materially, and it must
        # genuinely reduce the deferred PMem traffic.
        assert filtered.sim_seconds <= plain.sim_seconds * 1.02
        assert (
            filtered.maintain_deferred_seconds < plain.maintain_deferred_seconds
        )


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if metrics["epoch_ratio"] > 1.02:
        failures.append(
            f"admission filter slowed the epoch {metrics['epoch_ratio']:.3f}x"
        )
    if metrics["deferred_reduction"] <= 0:
        failures.append("filter failed to reduce deferred PMem traffic")
    return failures


@register(
    "ablation_admission",
    params=[
        Param("skew", "float", 1.0),
        Param("cache_mb", "float", 400.0),
        Param("workers", "int", 16),
    ],
    headline={
        "epoch_ratio": Headline(direction="lower", max_regression=0.05),
        "deferred_reduction": Headline(direction="higher", max_regression=0.10),
    },
    check=_check,
)
def entry(*, skew, cache_mb, workers):
    """Epoch-time and deferred-traffic effect of the TinyLFU-style
    admission filter at one skew and cache size."""
    plain = simulate_epoch(
        SystemKind.PMEM_OE, workers, skew=skew,
        cache=DEFAULT_PROFILE.cache_config(paper_mb=cache_mb),
    )
    filtered = simulate_epoch(
        SystemKind.PMEM_OE, workers, skew=skew,
        cache=DEFAULT_PROFILE.cache_config(
            paper_mb=cache_mb, admission_threshold=1
        ),
    )
    return {
        "epoch_ratio": filtered.sim_seconds / plain.sim_seconds,
        "deferred_reduction": 1
        - filtered.maintain_deferred_seconds
        / max(plain.maintain_deferred_seconds, 1e-12),
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_admission"))