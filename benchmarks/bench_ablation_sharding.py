"""Ablation: sharded recovery parallelism (Section VI-E's extension).

The paper suggests partitioning the embedding table over several PS
processes so scanning and index rebuilding parallelize. Two parts:

* the analytic model at the paper's 2.1 B-entry scale (recovery time vs
  shard count), and
* a live demo: a sharded cluster crash-recovers and every shard's work
  is verified independent (entry counts partition the key space).
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.bench import Headline, Param, register
from repro.config import CacheConfig, ServerConfig
from repro.core.recovery import estimate_recovery_seconds
from repro.core.server import OpenEmbeddingServer

ENTRIES = 2_100_000_000
ENTRY_BYTES = 256


def live_sharded_recovery(num_nodes: int, num_keys: int = 3000):
    server_config = ServerConfig(
        num_nodes=num_nodes, embedding_dim=8, pmem_capacity_bytes=1 << 24, seed=2
    )
    cache_config = CacheConfig(capacity_bytes=32 << 10)
    server = OpenEmbeddingServer(server_config, cache_config)
    keys = list(range(num_keys))
    server.pull(keys, 0)
    server.maintain(0)
    server.push(keys, np.full((len(keys), 8), 0.1, dtype=np.float32), 0)
    server.barrier_checkpoint()
    pools = server.crash()
    recovered, reports = OpenEmbeddingServer.recover(pools, server_config, cache_config)
    return recovered, reports


def test_ablation_sharded_recovery(benchmark, report):
    def run():
        analytic = {
            shards: estimate_recovery_seconds(
                entries=ENTRIES,
                versions=ENTRIES,
                entry_bytes=ENTRY_BYTES,
                parallelism=shards,
            )
            for shards in (1, 2, 4, 8)
        }
        recovered, reports = live_sharded_recovery(4)
        return analytic, recovered, reports

    analytic, recovered, reports = run_once(benchmark, run)
    report.title(
        "ablation_sharding", "Ablation: recovery time vs PS shard count (paper scale)"
    )
    for shards, seconds in analytic.items():
        paper = "380.2" if shards == 1 else f"~{380.2 / shards:.0f} (linear)"
        report.row(f"{shards} shard(s)", paper, f"{seconds:.1f} s")
    report.line()
    per_shard = [r.entries_recovered for r in reports]
    report.line(
        f"  live 4-shard demo: per-shard entries {per_shard} "
        f"(sum {sum(per_shard)}), all to checkpoint "
        f"{reports[0].checkpoint_batch_id}"
    )

    assert analytic[1] == pytest.approx(380.2, rel=0.12)
    for shards in (2, 4, 8):
        assert analytic[shards] == pytest.approx(analytic[1] / shards)
    assert sum(per_shard) == 3000
    assert all(r.checkpoint_batch_id == 0 for r in reports)
    # Hash partitioning balances the shards reasonably.
    assert max(per_shard) < 2 * min(per_shard)
    assert recovered.num_entries == 3000


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not metrics["linear_ok"]:
        failures.append("sharded recovery no longer scales linearly")
    if not metrics["live_sum_ok"]:
        failures.append("live shards lost or duplicated entries")
    return failures


@register(
    "ablation_sharding",
    params=[
        Param("shards", "int", 4, help="PS shard count for the live demo"),
        Param("live_keys", "int", 3000),
    ],
    smoke={"live_keys": 1500},
    headline={
        "recovery_1shard_s": Headline(direction="lower", max_regression=0.05),
        "linear_ok": Headline(),
        "live_sum_ok": Headline(),
    },
    check=_check,
)
def entry(*, shards, live_keys):
    """Analytic recovery scaling with shard count plus a live sharded
    crash/recover verifying the shards partition the key space."""
    one = estimate_recovery_seconds(
        entries=ENTRIES, versions=ENTRIES, entry_bytes=ENTRY_BYTES, parallelism=1
    )
    sharded = estimate_recovery_seconds(
        entries=ENTRIES, versions=ENTRIES, entry_bytes=ENTRY_BYTES,
        parallelism=shards,
    )
    recovered, reports = live_sharded_recovery(shards, live_keys)
    per_shard = [r.entries_recovered for r in reports]
    return {
        "recovery_1shard_s": one,
        "recovery_sharded_s": sharded,
        "linear_ok": abs(sharded - one / shards) < 1e-6 * one,
        "live_sum_ok": (
            sum(per_shard) == live_keys
            and recovered.num_entries == live_keys
        ),
        "shard_imbalance": max(per_shard) / max(min(per_shard), 1),
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("ablation_sharding"))
