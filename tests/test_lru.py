"""LRU list: ordering, eviction, and the version-order invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import EmbeddingEntry
from repro.core.lru import LRUList
from repro.errors import ServerError


def entry(key, version=0):
    e = EmbeddingEntry(key, version=version)
    return e


class TestBasicOps:
    def test_push_front_order(self):
        lru = LRUList()
        a, b = entry(1), entry(2)
        lru.push_front(a)
        lru.push_front(b)
        assert [e.key for e in lru] == [2, 1]

    def test_victim_is_tail(self):
        lru = LRUList()
        a, b = entry(1), entry(2)
        lru.push_front(a)
        lru.push_front(b)
        assert lru.peek_victim() is a

    def test_move_to_front(self):
        lru = LRUList()
        a, b, c = entry(1), entry(2), entry(3)
        for e in (a, b, c):
            lru.push_front(e)
        lru.move_to_front(a)
        assert [e.key for e in lru] == [1, 3, 2]
        assert lru.peek_victim() is b

    def test_move_to_front_inserts_unlisted(self):
        lru = LRUList()
        a = entry(1)
        lru.move_to_front(a)
        assert a.in_lru
        assert len(lru) == 1

    def test_move_head_is_noop(self):
        lru = LRUList()
        a, b = entry(1), entry(2)
        lru.push_front(a)
        lru.push_front(b)
        lru.move_to_front(b)
        assert [e.key for e in lru] == [2, 1]

    def test_pop_victim_removes(self):
        lru = LRUList()
        a, b = entry(1), entry(2)
        lru.push_front(a)
        lru.push_front(b)
        victim = lru.pop_victim()
        assert victim is a
        assert not a.in_lru
        assert len(lru) == 1

    def test_remove_middle(self):
        lru = LRUList()
        a, b, c = entry(1), entry(2), entry(3)
        for e in (a, b, c):
            lru.push_front(e)
        lru.remove(b)
        assert [e.key for e in lru] == [3, 1]

    def test_remove_only_element(self):
        lru = LRUList()
        a = entry(1)
        lru.push_front(a)
        lru.remove(a)
        assert len(lru) == 0
        with pytest.raises(ServerError):
            lru.peek_victim()

    def test_double_push_rejected(self):
        lru = LRUList()
        a = entry(1)
        lru.push_front(a)
        with pytest.raises(ServerError):
            lru.push_front(a)

    def test_remove_unlisted_rejected(self):
        with pytest.raises(ServerError):
            LRUList().remove(entry(1))

    def test_contains(self):
        lru = LRUList()
        a = entry(1)
        assert a not in lru
        lru.push_front(a)
        assert a in lru


class TestVersionOrderInvariant:
    """Front-to-back versions are non-increasing because versions come
    from the monotone batch counter at (re)insertion — the property the
    checkpoint-completion test depends on."""

    def test_validate_accepts_monotone(self):
        lru = LRUList()
        for batch, key in enumerate(range(5)):
            e = entry(key, version=batch)
            lru.push_front(e)
        lru.validate()

    def test_validate_rejects_inversion(self):
        lru = LRUList()
        lru.push_front(entry(1, version=5))
        lru.push_front(entry(2, version=3))  # newer position, older version
        with pytest.raises(ServerError):
            lru.validate()

    @given(st.lists(st.integers(0, 19), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_random_access_stream_keeps_invariants(self, accesses):
        """Replay an access stream with monotone versions; the list's
        structure and version ordering must always validate, and the
        victim must always be the least recently accessed key."""
        lru = LRUList()
        entries = {}
        last_access = {}
        for batch, key in enumerate(accesses):
            e = entries.setdefault(key, entry(key))
            e.version = batch
            lru.move_to_front(e)
            last_access[key] = batch
        lru.validate()
        expected_victim = min(last_access, key=last_access.get)
        assert lru.peek_victim().key == expected_victim
        assert len(lru) == len(last_access)
