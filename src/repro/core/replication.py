"""Synchronous primary/backup replication (extension beyond the paper).

The paper's answer to failures is *recovery*: rebuild from the PMem
checkpoint in ~380 s. The classic alternative is *replication*: keep a
synchronously-updated backup node and fail over in milliseconds, at the
cost of 2x hardware and doubled update work. This module implements
that alternative so the trade-off is measurable here (see
``bench_ablation_replication``):

* every ``pull`` is served by the primary; every ``push`` and
  ``maintain`` is applied to primary AND backup (synchronous
  replication — the backup is always at the same batch);
* :meth:`failover` promotes the backup instantly — no PMem scan, no
  index rebuild, nothing discarded: the live state (not just the last
  checkpoint) survives;
* a *double fault* (both replicas lost) falls back to ordinary
  checkpoint recovery on either surviving pool.

The replicas stay bitwise identical because all PS operations are
deterministic — an invariant the tests check directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.cache import MaintainResult, PullResult
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSOptimizer
from repro.errors import FailoverError, NodeDeadError, ServerError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmem.pool import PmemPool
from repro.simulation.calibration import Calibration, DEFAULT_CALIBRATION


@dataclass
class RebuildReport:
    """Progress/outcome of one background re-replication."""

    keys_total: int = 0
    keys_copied: int = 0
    keys_patched: int = 0
    sealed_batch: int = -1
    finished: bool = False

    @property
    def progress(self) -> float:
        """Fraction of the initial key census copied (0..1)."""
        if self.keys_total == 0:
            return 1.0
        return min(1.0, self.keys_copied / self.keys_total)


class ReplicatedPSNode:
    """A PS node mirrored onto a synchronous backup replica.

    Protocol-compatible with :class:`PSNode` for the training path,
    including the shard-migration surface, so
    :class:`~repro.core.server.OpenEmbeddingServer` and the RPC frontend
    can host replicated shards transparently
    (``ServerConfig(replicas=2)``).

    Failure semantics: once :meth:`fail_primary` / :meth:`kill_primary`
    crashed the primary, every data-plane operation raises
    :class:`~repro.errors.NodeDeadError` (over RPC the node simply goes
    *silent* — see :class:`~repro.network.frontend.PSNodeService`).
    :meth:`failover` promotes the backup; afterwards the node is
    *degraded* until :meth:`finish_rebuild` (or the step-wise
    :meth:`rebuild_tick`) re-replicates a fresh backup in the
    background, restoring tolerance of a second fault. A double fault
    (:meth:`crash`) leaves only pools; recover with
    :func:`repro.core.recovery.recover_node` /
    :func:`repro.core.migration.recover_elastic`.
    """

    def __init__(
        self,
        node_id: int,
        server_config: ServerConfig,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
        pool: PmemPool | None = None,
        cluster_mode: bool = False,
        tracer: Tracer | None = None,
    ):
        self.node_id = node_id
        self.server_config = server_config
        self.cluster_mode = cluster_mode
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.primary = PSNode(
            node_id, server_config, cache_config, optimizer,
            metadata_only=metadata_only, pool=pool,
            cluster_mode=cluster_mode, tracer=tracer,
        )
        # Normalized by PSNode — reuse for replica (re)provisioning so a
        # rebuilt backup runs the exact same optimizer/cache parameters.
        self.cache_config = self.primary.cache_config
        self.optimizer = self.primary.optimizer
        self.backup: PSNode | None = PSNode(
            node_id, server_config, cache_config, optimizer,
            metadata_only=metadata_only,
            cluster_mode=cluster_mode, tracer=tracer,
        )
        self.failovers = 0
        self.ring_epoch = 0
        self._primary_dead = False
        self._reset_rebuild()

    @classmethod
    def from_primary(cls, primary: PSNode) -> "ReplicatedPSNode":
        """Wrap an existing (e.g. freshly recovered) node as a degraded
        replicated shard — no backup yet; run :meth:`rebuild_backup` (or
        tick the background rebuild) to regain fault tolerance."""
        node = cls.__new__(cls)
        node.node_id = primary.node_id
        node.server_config = primary.server_config
        node.cache_config = primary.cache_config
        node.optimizer = primary.optimizer
        node.cluster_mode = primary.coordinator.cluster_mode
        node.tracer = primary.tracer
        node.primary = primary
        node.backup = None
        node.failovers = 0
        node.ring_epoch = 0
        node._primary_dead = False
        node._reset_rebuild()
        return node

    # ------------------------------------------------------------------
    # liveness guard
    # ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._primary_dead:
            raise NodeDeadError(
                f"node {self.node_id}: primary replica is dead",
                node_id=self.node_id,
            )

    # ------------------------------------------------------------------
    # PS protocol — reads from the primary, writes to both
    # ------------------------------------------------------------------

    def pull(
        self,
        keys,
        batch_id: int,
        *,
        worker_id: int | None = None,
        progress: int | None = None,
    ) -> PullResult:
        self._check_alive()
        # Admission runs on the primary first: a rejected pull raises
        # before either replica's cache is touched, so the pair stays
        # mirrored. Admitted pulls replay identically on the backup
        # (same progress vector -> same decision), keeping a promoted
        # backup's staleness state consistent with the dead primary's.
        result = self.primary.pull(
            keys, batch_id, worker_id=worker_id, progress=progress
        )
        if self.backup is not None:
            # The backup replays the access stream so its cache state
            # (and therefore its checkpoint pipeline) tracks the
            # primary exactly.
            self.backup.pull(
                keys, batch_id, worker_id=worker_id, progress=progress
            )
        elif self._rebuilding:
            # Auto-create may have made new keys; the catch-up copy must
            # re-read them after the finish barrier.
            self._rebuild_touched.update(keys)
        return result

    def lookup(self, keys, snapshot_id: int | None = None, replica: int = 0):
        """Serve a snapshot-pinned read from a chosen replica.

        Reads never mutate, so — unlike ``pull`` — they are NOT
        mirrored: the serving tier exploits this to fan lookups out
        across primary AND backup (``replica=1`` targets the backup,
        which holds bitwise-identical durable state). A degraded shard
        transparently collapses every replica index onto the primary,
        so a mid-stream failover only shrinks the fan-out.
        """
        self._check_alive()
        target = self.backup if (replica == 1 and self.backup is not None) else self.primary
        return target.lookup(keys, snapshot_id)

    @property
    def latest_serving_snapshot(self) -> int:
        """Newest completed checkpoint (primary's view; replicas agree)."""
        return self.primary.latest_serving_snapshot

    @property
    def checkpoints_completed(self) -> int:
        """Monotone completed-checkpoint count (primary's view). After a
        failover the promoted backup's counter may lag the dead
        primary's — a regression the serving tier treats as a full cache
        invalidation, which is safe (never under-counts staleness)."""
        return self.primary.checkpoints_completed

    def maintain(self, batch_id: int) -> MaintainResult:
        self._check_alive()
        result = self.primary.maintain(batch_id)
        if self.backup is not None:
            self.backup.maintain(batch_id)
        return result

    def push(
        self,
        keys,
        grads: np.ndarray | None,
        batch_id: int,
        *,
        worker_id: int | None = None,
        seq: int = 0,
    ) -> int:
        self._check_alive()
        updated = self.primary.push(
            keys, grads, batch_id, worker_id=worker_id, seq=seq
        )
        if self.backup is not None:
            self.backup.push(
                keys, grads, batch_id, worker_id=worker_id, seq=seq
            )
        elif self._rebuilding:
            # Weights changed after the rebuild census: re-copy at finish.
            self._rebuild_touched.update(keys)
        return updated

    @property
    def staleness(self):
        """The primary's bounded-staleness controller (replicas agree:
        both see the identical admitted stream)."""
        return self.primary.staleness

    @property
    def aggregation(self):
        """The primary's aggregation buffer (mirrored on the backup)."""
        return self.primary.aggregation

    def flush_aggregation(self) -> int:
        """Fold buffered contributions on both replicas (quiesce)."""
        self._check_alive()
        updated = self.primary.flush_aggregation()
        if self.backup is not None:
            self.backup.flush_aggregation()
        return updated

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        self._check_alive()
        requested = self.primary.request_checkpoint(batch_id)
        if self.backup is not None:
            self.backup.request_checkpoint(requested)
        return requested

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        self._check_alive()
        requested = self.primary.barrier_checkpoint(batch_id)
        if self.backup is not None:
            self.backup.request_checkpoint(requested)
            self.backup.cache.complete_pending_checkpoints()
        return requested

    def complete_pending_checkpoints(self) -> None:
        self._check_alive()
        self.primary.complete_pending_checkpoints()
        if self.backup is not None:
            self.backup.complete_pending_checkpoints()

    def set_external_barrier(self, batch_id: int | None) -> None:
        self.primary.set_external_barrier(batch_id)
        if self.backup is not None:
            self.backup.set_external_barrier(batch_id)

    def seal_at(self, batch_id: int) -> None:
        self.primary.seal_at(batch_id)
        if self.backup is not None:
            self.backup.seal_at(batch_id)

    def set_root_field(self, field: str, value) -> None:
        """Durable root-field write, mirrored to BOTH replica pools so a
        promoted backup still carries cluster facts like the committed
        ring word (and double-fault recovery can read them from the
        surviving pool)."""
        self._check_alive()
        self.primary.set_root_field(field, value)
        if self.backup is not None:
            self.backup.set_root_field(field, value)

    # ------------------------------------------------------------------
    # shard migration — replicas follow the ring epoch
    # ------------------------------------------------------------------

    def follow_ring(self, epoch: int) -> None:
        """Adopt a committed ring epoch.

        Epochs are monotone; both replicas serve the same epoch, so a
        failover never resurrects pre-migration routing.

        Raises:
            ServerError: the epoch moves backwards.
        """
        if epoch < self.ring_epoch:
            raise ServerError(
                f"ring epoch must be monotone: {epoch} < {self.ring_epoch}"
            )
        self.ring_epoch = epoch

    def owned_keys(self) -> list[int]:
        return self.primary.owned_keys()

    def export_entries(self, keys):
        """Transfer reads come from the primary (replicas are bitwise
        identical, which :meth:`verify_replicas_identical` checks)."""
        self._check_alive()
        return self.primary.export_entries(keys)

    def ingest_entries(self, entries) -> int:
        """Adopt migrated entries on primary AND backup.

        Mirroring the ingest keeps the replicas bitwise identical across
        a ring-epoch change — a failover after a migration must serve
        exactly the post-migration shard.
        """
        self._check_alive()
        count = self.primary.ingest_entries(entries)
        if self.backup is not None:
            self.backup.ingest_entries(entries)
        elif self._rebuilding:
            self._rebuild_touched.update(key for key, __ in entries)
        return count

    def drop_keys(self, keys) -> int:
        """Relinquish migrated-away keys on primary AND backup."""
        self._check_alive()
        dropped = self.primary.drop_keys(keys)
        if self.backup is not None:
            self.backup.drop_keys(keys)
        elif self._rebuilding:
            keys = set(keys)
            self._rebuild_target.drop_keys(list(keys))
            self._rebuild_pending = [
                k for k in self._rebuild_pending if k not in keys
            ]
            self._rebuild_touched -= keys
        return dropped

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def fail_primary(self) -> None:
        """Kill the primary process (its pool survives but is unused
        unless the backup also dies).

        Raises:
            ServerError: already degraded (no backup to fail over to —
                use ordinary checkpoint recovery instead).
        """
        if self.backup is None:
            raise ServerError("already degraded; use checkpoint recovery")
        self.primary.crash()
        self._primary_dead = True

    def kill_primary(self) -> None:
        """Unconditional primary kill — the failure injector's view.

        Unlike :meth:`fail_primary` this never refuses: killing the
        primary of an already-degraded shard is exactly the double
        fault, and the injector's job is to create it, not to be told
        it is inconvenient. Idempotent (a dead primary stays dead).
        """
        if self._primary_dead:
            return
        self.primary.crash()
        self._primary_dead = True

    @property
    def primary_alive(self) -> bool:
        """False once the primary has crashed (heartbeats go silent)."""
        return not self._primary_dead

    def failover(self, committed_epoch: int | None = None) -> float:
        """Promote the backup; returns the simulated failover seconds.

        Nothing is scanned or rebuilt — the backup's DRAM structures are
        already live — so the cost is a role switch plus client
        redirection, orders of magnitude below checkpoint recovery.

        Args:
            committed_epoch: the coordinator's durable ring epoch at
                promotion time. If the primary died mid-migration the
                replica's last ``follow_ring`` announcement can lag the
                committed ring word; promotion re-reads the commit so a
                promoted backup never serves stale routing (epochs stay
                monotone — an older value is ignored).

        Raises:
            ServerError: no failed primary to replace.
            FailoverError: the backup is gone too (double fault) —
                fall back to checkpoint recovery.
        """
        if not self._primary_dead:
            raise ServerError("failover without a failed primary")
        if self.backup is None:
            raise FailoverError(
                f"node {self.node_id}: double fault — no backup to promote",
                node_id=self.node_id,
            )
        self.primary = self.backup
        self.backup = None
        self._primary_dead = False
        self.failovers += 1
        self._reset_rebuild()
        if committed_epoch is not None and committed_epoch > self.ring_epoch:
            # Satellite fix: reconcile with the durable ring word so a
            # fail_primary() interleaved with a migration cannot leave
            # the promoted node on pre-commit routing.
            self.ring_epoch = committed_epoch
        self.tracer.instant(
            "failover.promote", track="failure", node=self.node_id,
            epoch=self.ring_epoch,
        )
        return FAILOVER_SECONDS

    def crash(self) -> PmemPool:
        """Double fault: kill whatever replicas remain.

        Returns the primary's pool — the surviving durable state the
        checkpoint-recovery ladder (:func:`~repro.core.recovery.recover_node`
        or :func:`~repro.core.migration.recover_elastic`) rebuilds from.
        """
        if self.backup is not None:
            self.backup.crash()
        if not self._primary_dead:
            self.primary.crash()
        self._primary_dead = True
        self._reset_rebuild()
        return self.primary.pool

    @property
    def degraded(self) -> bool:
        """True after a failover consumed the backup."""
        return self.backup is None

    # ------------------------------------------------------------------
    # background re-replication (after a failover consumed the backup)
    # ------------------------------------------------------------------

    def _reset_rebuild(self) -> None:
        self._rebuilding = False
        self._rebuild_target: PSNode | None = None
        self._rebuild_pending: list[int] = []
        self._rebuild_touched: set[int] = set()
        self.rebuild_report = RebuildReport(finished=not getattr(self, "degraded", False))

    def begin_rebuild(self) -> int:
        """Start re-replicating a fresh backup; returns keys to copy.

        Takes a barrier checkpoint so the store's newest version of
        every key equals its live state, provisions an empty replica,
        and records the key census. Copying happens incrementally via
        :meth:`rebuild_step` while training continues; any key touched
        after this barrier is re-copied by :meth:`finish_rebuild`.
        """
        self._check_alive()
        if not self.degraded:
            raise ServerError("rebuild only applies to a degraded node")
        if self._rebuilding:
            raise ServerError("rebuild already in progress")
        if self.primary.latest_completed_batch > self.primary.coordinator.last_completed:
            self.primary.barrier_checkpoint()
        self._rebuild_target = PSNode(
            self.node_id, self.server_config, self.cache_config,
            self.optimizer, metadata_only=self.primary.metadata_only,
            cluster_mode=self.cluster_mode, tracer=self.tracer,
        )
        self._rebuild_pending = sorted(self.primary.owned_keys())
        self._rebuild_touched = set()
        self._rebuilding = True
        self.rebuild_report = RebuildReport(keys_total=len(self._rebuild_pending))
        self.tracer.instant(
            "failover.rebuild_begin", track="failure", node=self.node_id,
            keys=len(self._rebuild_pending),
        )
        return len(self._rebuild_pending)

    def rebuild_step(self, max_keys: int = 64) -> int:
        """Copy up to ``max_keys`` pending keys onto the new backup.

        Returns keys copied this step (0 once the census is drained —
        call :meth:`finish_rebuild` then).
        """
        self._check_alive()
        if not self._rebuilding:
            raise ServerError("no rebuild in progress")
        if max_keys <= 0:
            raise ServerError(f"max_keys must be positive, got {max_keys}")
        chunk = self._rebuild_pending[:max_keys]
        self._rebuild_pending = self._rebuild_pending[max_keys:]
        if chunk:
            entries = self.primary.export_entries(chunk)
            self._rebuild_target.ingest_entries(entries)
            self.rebuild_report.keys_copied += len(chunk)
        return len(chunk)

    def finish_rebuild(self) -> RebuildReport:
        """Catch up and install the new backup; ends degraded mode.

        Takes a fresh barrier (the *seal batch*), re-copies every key
        touched since :meth:`begin_rebuild` plus any census remainder,
        seals the replica at the barrier batch, and installs it. From
        here on the normal synchronous mirroring keeps the pair
        bitwise identical — which the caller can check with
        :meth:`verify_replicas_identical`.
        """
        self._check_alive()
        if not self._rebuilding:
            raise ServerError("no rebuild in progress")
        sealed = self.primary.coordinator.last_completed
        if self.primary.latest_completed_batch > sealed:
            sealed = self.primary.barrier_checkpoint()
        patch = sorted(
            (set(self._rebuild_pending) | self._rebuild_touched)
            & set(self.primary.owned_keys())
        )
        if patch:
            self._rebuild_target.ingest_entries(self.primary.export_entries(patch))
        if sealed >= 0:
            self._rebuild_target.seal_at(sealed)
        # Mirror cluster facts (the committed ring word) onto the fresh
        # replica pool so a *future* promotion of this backup still
        # serves — and can durably recover — the committed routing.
        from repro.core.sharding import RING_STATE_FIELD

        primary_fields = self.primary.pool.root.fields()
        if RING_STATE_FIELD in primary_fields:
            self._rebuild_target.set_root_field(
                RING_STATE_FIELD, primary_fields[RING_STATE_FIELD]
            )
        self.backup = self._rebuild_target
        report = self.rebuild_report
        report.keys_copied += len(patch)
        report.keys_patched = len(patch)
        report.sealed_batch = sealed
        report.finished = True
        self._rebuilding = False
        self._rebuild_target = None
        self._rebuild_pending = []
        self._rebuild_touched = set()
        self.tracer.instant(
            "failover.rebuild_done", track="failure", node=self.node_id,
            patched=report.keys_patched, sealed=sealed,
        )
        return report

    def rebuild_tick(self, max_keys: int = 64) -> str:
        """Advance background re-replication by one increment.

        State machine the serving path can poke between requests:
        ``"idle"`` (nothing to do), ``"started"`` (census taken),
        ``"copying"`` (one chunk moved), ``"done"`` (backup installed
        this tick). Safe to call anytime; never raises for liveness —
        a dead primary simply reports ``"idle"``.
        """
        if self._primary_dead or (not self.degraded and not self._rebuilding):
            return "idle"
        if not self._rebuilding:
            self.begin_rebuild()
            return "started"
        if self._rebuild_pending:
            self.rebuild_step(max_keys)
            return "copying"
        self.finish_rebuild()
        return "done"

    def rebuild_backup(self, max_keys: int = 64) -> RebuildReport:
        """Run a whole rebuild to completion (synchronous convenience)."""
        self.begin_rebuild()
        while self._rebuild_pending:
            self.rebuild_step(max_keys)
        return self.finish_rebuild()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self.primary.num_entries

    @property
    def latest_completed_batch(self) -> int:
        """Newest trained batch (primary's view; replicas agree)."""
        return self.primary.latest_completed_batch

    @property
    def metrics(self):
        """Primary's stat bundle (what the cluster aggregates)."""
        return self.primary.metrics

    @property
    def metadata_only(self) -> bool:
        return self.primary.metadata_only

    @property
    def pool(self):
        """The primary's PMem pool (coordinator-pool reads, recovery)."""
        return self.primary.pool

    @property
    def store(self):
        """The primary's versioned store — read-only use (entry sizes);
        mutations must go through mirrored node methods."""
        return self.primary.store

    @property
    def coordinator(self):
        """The primary's checkpoint coordinator — read-only use
        (``last_completed``); mutations must go through mirrored node
        methods (:meth:`set_external_barrier`, :meth:`seal_at`, …)."""
        return self.primary.coordinator

    def read_weights(self, key: int) -> np.ndarray:
        return self.primary.read_weights(key)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        return self.primary.state_snapshot()

    def verify_replicas_identical(self) -> None:
        """Assert primary and backup hold bitwise-equal state.

        Raises:
            ServerError: divergence (a replication bug) was found.
        """
        if self.backup is None:
            raise ServerError("no backup to compare (degraded mode)")
        primary_state = self.primary.state_snapshot()
        backup_state = self.backup.state_snapshot()
        if set(primary_state) != set(backup_state):
            raise ServerError("replicas hold different key sets")
        for key, weights in primary_state.items():
            if not np.array_equal(weights, backup_state[key]):
                raise ServerError(f"replicas diverged on key {key}")


#: Simulated failover cost: lease expiry detection + client redirect.
FAILOVER_SECONDS = 0.5


def replication_vs_recovery_seconds(
    *,
    entries: int,
    entry_bytes: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> tuple[float, float]:
    """(failover seconds, checkpoint-recovery seconds) at a given scale.

    The quantitative version of the trade-off: replication answers a
    failure in :data:`FAILOVER_SECONDS` regardless of model size, while
    recovery scales with the table (Figure 14's 380 s at 2.1 B entries)
    — bought with 2x machines and doubled write work.
    """
    from repro.core.recovery import estimate_recovery_seconds

    recovery = estimate_recovery_seconds(
        entries=entries, versions=entries, entry_bytes=entry_bytes,
        calibration=calibration,
    )
    return FAILOVER_SECONDS, recovery
