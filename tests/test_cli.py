"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.system == "pmem_oe"
        assert args.workers == 16

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--system", "bogus"])


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(["simulate", "--workers", "4", "--iterations", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated epoch" in out
        assert "miss rate" in out

    def test_all_systems_run(self, capsys):
        for system in ("dram_ps", "pmem_oe", "ori_cache", "pmem_hash", "tf_ps"):
            assert main(
                ["simulate", "--system", system, "--workers", "4",
                 "--iterations", "5"]
            ) == 0

    def test_with_checkpointing(self, capsys):
        code = main([
            "simulate", "--workers", "4", "--iterations", "20",
            "--checkpoint", "batch_aware", "--interval-seconds", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out


class TestTrain:
    def test_short_training(self, capsys):
        code = main([
            "train", "--batches", "8", "--fields", "4", "--vocab", "50",
            "--dim", "8", "--checkpoint-every", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss" in out
        assert "final" in out

    def test_crash_and_recover(self, capsys):
        code = main([
            "train", "--batches", "12", "--fields", "4", "--vocab", "50",
            "--dim", "8", "--checkpoint-every", "4", "--crash-at", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected crash" in out
        assert "resumed from checkpoint" in out or "restarting from scratch" in out

    def test_async_mode_plain(self, capsys):
        code = main([
            "train", "--mode", "async", "--batches", "12", "--fields", "4",
            "--vocab", "50", "--dim", "8", "--workers", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mode              : async" in out
        assert "quiesced" in out

    def test_async_mode_defended_and_hostile(self, tmp_path, capsys):
        metrics = tmp_path / "async.metrics.json"
        code = main([
            "train", "--mode", "async", "--batches", "18", "--fields", "4",
            "--vocab", "50", "--dim", "8", "--workers", "6",
            "--staleness-k", "3", "--aggregator", "trimmed_mean",
            "--hostile", "0.17", "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "k=3, aggregator trimmed_mean" in out
        assert "1/6 byzantine" in out
        import json

        names = {m["name"] for m in json.loads(metrics.read_text())["metrics"]}
        assert "repro_async_pulls_admitted" in names
        assert "repro_async_aggregator_folds" in names

    def test_async_mode_rejects_crash_at(self, capsys):
        code = main([
            "train", "--mode", "async", "--batches", "8", "--crash-at", "4",
        ])
        assert code == 2
        assert "sync-mode flag" in capsys.readouterr().err


class TestPlanAndWorkload:
    def test_plan(self, capsys):
        assert main(["plan", "--model-gb", "500"]) == 0
        out = capsys.readouterr().out
        assert "DRAM-PS: 2 x" in out
        assert "PMem-OE: 1 x" in out
        assert "recovery estimate" in out

    def test_workload_matches_table2(self, capsys):
        assert main([
            "workload", "--keys", "200000", "--batches", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "85." in out  # top 0.05 % share
        assert "exponential fit" in out


class TestFaults:
    def test_lossy_wire_run(self, capsys):
        code = main([
            "faults", "--batches", "10", "--keys", "100", "--dim", "4",
            "--drop", "0.1", "--duplicate", "0.05", "--corrupt", "0.03",
            "--delay", "0.05", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "weights identical : True" in out
        assert "retries" in out
        assert "dup-suppressed" in out
        assert "backoff time" in out

    def test_clean_wire_run(self, capsys):
        code = main([
            "faults", "--batches", "5", "--keys", "50", "--dim", "4",
            "--drop", "0", "--duplicate", "0", "--corrupt", "0",
            "--delay", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected faults   : 0" in out
        assert "weights identical : True" in out


class TestServeBench:
    def test_closed_loop_run(self, capsys):
        code = main([
            "serve-bench", "--requests", "60", "--warm", "20",
            "--keys", "2000", "--batch-keys", "16",
            "--pretrain-batches", "3", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency p50/p95/p99" in out
        assert "hit rate" in out

    def test_chaos_variant_audits_consistency(self, capsys):
        code = main([
            "serve-bench", "--requests", "80", "--warm", "20",
            "--keys", "2000", "--batch-keys", "16",
            "--pretrain-batches", "3", "--kill-at", "40", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served through kill: True" in out
        assert "0 torn, 0 beyond k" in out

    def test_kill_requires_replicas(self, capsys):
        code = main([
            "serve-bench", "--requests", "20", "--warm", "0",
            "--keys", "500", "--replicas", "1", "--kill-at", "10",
        ])
        assert code == 2
        assert "--replicas 2" in capsys.readouterr().err


class TestReproduce:
    def test_list_experiments(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7_pipeline" in out
        assert "table2_skew" in out

    def test_no_args_lists(self, capsys):
        assert main(["reproduce"]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["reproduce", "not_an_experiment"]) == 2

    def test_runs_one_experiment(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        assert "reports written under" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_simulate_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "run.metrics.json"
        code = main([
            "simulate", "--workers", "4", "--iterations", "10",
            "--lookahead", "2",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace" in out and "metrics" in out
        trace = json.loads(trace_path.read_text())
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "gpu.compute" in names and "maintain.deferred" in names
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema"] == "repro-metrics-v1"

    def test_simulate_prometheus_extension(self, tmp_path):
        metrics_path = tmp_path / "run.prom"
        assert main([
            "simulate", "--workers", "2", "--iterations", "5",
            "--metrics-out", str(metrics_path),
        ]) == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_pull_latency_seconds histogram" in text
        assert "repro_pull_latency_seconds_quantile" in text

    def test_train_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main([
            "train", "--batches", "6", "--fields", "4", "--vocab", "50",
            "--dim", "8", "--checkpoint-every", "4",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "train.step" in names and "server.pull" in names
        assert "cache.maintain" in names

    def test_metrics_subcommand_renders(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        assert main([
            "simulate", "--workers", "2", "--iterations", "5",
            "--metrics-out", str(metrics_path),
        ]) == 0
        capsys.readouterr()
        assert main(["metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "histograms" in out
        assert "per-layer time breakdown" in out

    def test_metrics_subcommand_missing_file(self, capsys):
        assert main(["metrics", "/nonexistent/nope.json"]) == 2
        assert "no such snapshot" in capsys.readouterr().err

    def test_metrics_subcommand_rejects_non_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other"}')
        assert main(["metrics", str(bad)]) == 2
        assert "not a repro-metrics-v1" in capsys.readouterr().err
