"""Back-compat ``__main__`` shim for ``benchmarks/bench_*.py`` scripts.

Historically every bench script hand-rolled a ``--smoke`` argv parser in
its ``__main__`` block. Registered benchmarks now delegate to::

    if __name__ == "__main__":
        from repro.bench.shim import main
        raise SystemExit(main("prefetch"))

which keeps the long-standing invocation ``python benchmarks/bench_X.py
[--smoke]`` working while routing through the registry: typed param
coercion, ``--set key=value`` overrides, the acceptance check, and an
optional ``--record`` flag that appends a ``repro-bench-v1`` record to
the benchmark's trajectory file.

Exit codes: 0 ok, 1 benchmark error or failed acceptance check,
2 usage error.
"""

from __future__ import annotations

import argparse

from repro.errors import ConfigError

__all__ = ["main"]


def main(name: str, argv=None) -> int:
    """Run registered benchmark ``name`` with script-style argv."""
    parser = argparse.ArgumentParser(
        prog=f"bench_{name}",
        description=f"run the {name!r} benchmark through the repro.bench registry",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run at smoke scale (seconds, CI-friendly)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one benchmark parameter (repeatable)",
    )
    parser.add_argument(
        "--record",
        metavar="DIR",
        default=None,
        help="append a repro-bench-v1 record to DIR/BENCH_<name>.json",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed for derived run seeds"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    # Imported lazily so `python benchmarks/bench_X.py --help` stays cheap.
    from repro.bench.records import Trajectory
    from repro.bench.registry import REGISTRY, discover
    from repro.bench.runner import SweepRunner, default_results_dir

    try:
        discover()
        overrides = {}
        for item in args.overrides:
            if "=" not in item:
                print(f"error: --set {item!r} is not KEY=VALUE")
                return 2
            key, _, value = item.partition("=")
            overrides[key.strip()] = value.strip()
        runner = SweepRunner(
            scale="smoke" if args.smoke else "full", base_seed=args.seed
        )
        record = runner.run_single(name, overrides)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2

    print(f"== {name} [{record.scale}] cell {record.fingerprint} ==")
    for key, value in sorted(record.params.items()):
        print(f"  param {key} = {value}")
    if record.status == "error":
        print(record.error)
        print(f"FAIL: {name} crashed")
        return 1
    for key, value in sorted(record.metrics.items()):
        print(f"  {key} = {value}")
    print(f"  ({record.duration_s:.2f}s)")

    failures = REGISTRY.get(name).failures(record.metrics, record.params)
    if args.record is not None:
        results_dir = args.record or str(default_results_dir())
        trajectory = Trajectory.load_or_create(results_dir, name)
        trajectory.append(record)
        path = trajectory.save(results_dir)
        print(f"  recorded -> {path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0
