"""Comparison systems from the paper's evaluation (Table III).

* :class:`DRAMPSNode` — 'DRAM-PS': the classic pure-DRAM parameter
  server (the paper's performance upper bound), checkpointed with the
  incremental scheme.
* :class:`OriCacheNode` — 'Ori-Cache': DRAM-PMem cache built from a
  concurrent hash map + STL list, with *inline* (non-pipelined) LRU
  maintenance and incremental checkpointing.
* :class:`PMemHashNode` — 'PMem-Hash': entries stored directly in a
  PMem hash (libpmemobj-style), no DRAM cache, no batch consistency.
* :class:`TensorFlowPS` — the TensorFlow parameter-server baseline of
  Section VI-F (single-process, DRAM-only).
* :class:`IncrementalCheckpointer` — the CheckFreq-style incremental
  checkpoint used by DRAM-PS and Ori-Cache.
* :class:`CheckNRunCheckpointer` — Check-N-Run-style incremental +
  quantized checkpointing (the paper's reference [6], complementary
  remote-backup work).
"""

from repro.baselines.checknrun import (
    CheckNRunCheckpointer,
    QuantizedCheckpointStats,
    quantize,
)
from repro.baselines.dram_ps import DRAMPSNode
from repro.baselines.incremental import CheckpointStats, IncrementalCheckpointer
from repro.baselines.ori_cache import OriCacheNode
from repro.baselines.pmem_hash import PMemHashNode
from repro.baselines.tensorflow_ps import TensorFlowPS

__all__ = [
    "DRAMPSNode",
    "OriCacheNode",
    "PMemHashNode",
    "TensorFlowPS",
    "IncrementalCheckpointer",
    "CheckpointStats",
    "CheckNRunCheckpointer",
    "QuantizedCheckpointStats",
    "quantize",
]
