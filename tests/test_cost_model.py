"""PSCostModel: per-system phase pricing properties."""

import pytest

from repro.config import ClusterConfig, NetworkConfig, ServerConfig
from repro.simulation.calibration import Calibration
from repro.simulation.cluster import IterationCounts, PSCostModel, SystemKind


def counts(requests=1000, misses=100, flushes=100, created=0):
    return IterationCounts(
        requests=requests,
        hits=requests - misses - created,
        misses=misses,
        created=created,
        maintain_processed=requests,
        maintain_loads=misses,
        maintain_flushes=flushes,
        maintain_evictions=flushes,
    )


def model(system, workers=8, nodes=1, **kwargs):
    return PSCostModel(
        system,
        ClusterConfig(num_workers=workers, network=NetworkConfig(bandwidth_bytes_per_s=60e6)),
        ServerConfig(num_nodes=nodes, embedding_dim=64),
        Calibration(),
        **kwargs,
    )


class TestOrdering:
    """The fundamental ranking of Table III systems at fixed load."""

    def test_dram_ps_fastest(self):
        c = counts()
        dram = model(SystemKind.DRAM_PS).price_iteration(c).total
        for system in (SystemKind.PMEM_OE, SystemKind.ORI_CACHE, SystemKind.PMEM_HASH):
            assert model(system).price_iteration(c).total >= dram

    def test_pmem_oe_beats_ori_cache(self):
        c = counts()
        oe = model(SystemKind.PMEM_OE).price_iteration(c).total
        ori = model(SystemKind.ORI_CACHE).price_iteration(c).total
        assert oe < ori

    def test_ori_cache_beats_pmem_hash(self):
        c = counts()
        ori = model(SystemKind.ORI_CACHE).price_iteration(c).total
        hash_ = model(SystemKind.PMEM_HASH).price_iteration(c).total
        assert ori < hash_

    def test_tf_slower_than_dram_ps(self):
        c = counts()
        tf = model(SystemKind.TF_PS).price_iteration(c).total
        dram = model(SystemKind.DRAM_PS).price_iteration(c).total
        assert tf > dram


class TestScaling:
    def test_ori_gap_grows_with_workers(self):
        """The paper's central scaling claim (Figures 3/7)."""
        gaps = []
        for workers in (4, 8, 16):
            c = counts(requests=250 * workers, misses=25 * workers, flushes=25 * workers)
            oe = model(SystemKind.PMEM_OE, workers).price_iteration(c).total
            ori = model(SystemKind.ORI_CACHE, workers).price_iteration(c).total
            gaps.append(ori / oe)
        assert gaps[0] < gaps[1] < gaps[2]

    def test_more_nodes_reduce_service_time(self):
        c = counts(requests=10_000, misses=1000, flushes=1000)
        one = model(SystemKind.PMEM_OE, nodes=1).price_iteration(c)
        four = model(SystemKind.PMEM_OE, nodes=4).price_iteration(c)
        assert four.pull_service < one.pull_service


class TestPipeline:
    def test_deferred_hidden_behind_gpu(self):
        c = counts()
        timing = model(SystemKind.PMEM_OE).price_iteration(c)
        assert timing.maintain_deferred > 0
        assert timing.maintain_inline == 0
        # With deferred < gpu it must not lengthen the iteration.
        if timing.maintain_deferred < timing.gpu:
            base = (
                timing.net_pull
                + timing.pull_service
                + timing.gpu
                + timing.net_push
                + timing.push_service
            )
            assert timing.total == pytest.approx(base)

    def test_unpipelined_charges_request_path(self):
        """With the pipeline off, maintenance sections land inside the
        pull/push services (the Ori-style inline path)."""
        c = counts()
        piped = model(SystemKind.PMEM_OE, pipelined=True).price_iteration(c)
        unpiped = model(SystemKind.PMEM_OE, pipelined=False).price_iteration(c)
        assert unpiped.maintain_deferred == 0
        assert unpiped.pull_service > piped.pull_service
        assert unpiped.push_service > piped.push_service

    def test_pipeline_never_slower(self):
        c = counts(requests=5000, misses=2000, flushes=2000)
        piped = model(SystemKind.PMEM_OE, pipelined=True).price_iteration(c).total
        unpiped = model(SystemKind.PMEM_OE, pipelined=False).price_iteration(c).total
        assert piped < unpiped

    def test_no_cache_ablation_more_expensive(self):
        c = counts()
        with_cache = model(SystemKind.PMEM_OE).price_iteration(c).total
        without = model(SystemKind.PMEM_OE, use_cache=False).price_iteration(c).total
        assert without > with_cache


class TestMissSensitivity:
    def test_more_misses_cost_more(self):
        low = counts(misses=10, flushes=10)
        high = counts(misses=500, flushes=500)
        m = model(SystemKind.PMEM_OE)
        assert m.price_iteration(high).pull_service > m.price_iteration(low).pull_service

    def test_zero_request_iteration(self):
        c = IterationCounts(0, 0, 0, 0, 0, 0, 0, 0)
        timing = model(SystemKind.PMEM_OE).price_iteration(c)
        assert timing.total > 0  # still pays gpu + latency floors
