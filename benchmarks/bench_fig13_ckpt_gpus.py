"""Figure 13: checkpoint overhead vs number of GPUs (20-min interval).

Paper: PMem-OE's overhead stays ~1.2 % from 4 to 16 GPUs (it is the
dense dump, done by ONE GPU regardless of worker count), and the
sparse-only configuration has no overhead at any scale.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import pytest

from benchmarks.conftest import run_once, simulate_epoch
from repro.bench import Headline, Param, register
from repro.config import CheckpointConfig, CheckpointMode
from repro.simulation.cluster import SystemKind
from repro.simulation.trainer_sim import TrainingSimulator

PAPER_OVERHEAD = 0.012
PAPER_EPOCH_HOURS = 5.33


def test_fig13_checkpoint_vs_gpus(benchmark, report):
    def run():
        # The paper's interval is the same wall-clock 20 minutes at
        # every GPU count, so the simulated interval is anchored once
        # (to the 16-GPU epoch, the calibration anchor) and reused —
        # that is what makes the overhead constant across worker counts.
        from repro.simulation.profiles import DEFAULT_PROFILE

        anchor = simulate_epoch(
            SystemKind.PMEM_OE, 16, iterations=DEFAULT_PROFILE.iterations(16)
        )
        interval = TrainingSimulator.interval_for_epoch_fraction(
            anchor.sim_seconds, 20, PAPER_EPOCH_HOURS
        )
        rows = {}
        for workers in (4, 8, 16):
            iters = DEFAULT_PROFILE.iterations(workers)
            base = simulate_epoch(SystemKind.PMEM_OE, workers, iterations=iters)
            proposed = simulate_epoch(
                SystemKind.PMEM_OE, workers, iterations=iters,
                checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
            )
            sparse = simulate_epoch(
                SystemKind.PMEM_OE, workers, iterations=iters,
                checkpoint=CheckpointConfig(
                    CheckpointMode.SPARSE_ONLY, interval, include_dense=False
                ),
            )
            rows[workers] = (
                proposed.sim_seconds / base.sim_seconds - 1,
                sparse.sim_seconds / base.sim_seconds - 1,
            )
        return rows

    rows = run_once(benchmark, run)
    report.title("fig13_ckpt_gpus", "Figure 13: checkpoint overhead by GPU count")
    for workers, (proposed, sparse) in rows.items():
        report.row(
            f"proposed    @ {workers} GPUs",
            f"+{PAPER_OVERHEAD:.1%}",
            f"+{proposed:.2%}",
        )
        report.row(f"sparse only @ {workers} GPUs", "+0.0%", f"+{sparse:.2%}")

    overheads = [rows[w][0] for w in (4, 8, 16)]
    for proposed, sparse in rows.values():
        assert sparse == pytest.approx(0.0, abs=0.005)
        assert 0.0 <= proposed < 0.05
    # Scaling GPUs does not inflate the checkpoint overhead (one GPU
    # dumps the dense model either way).
    assert max(overheads) - min(overheads) < 0.02


# --- registry entry -------------------------------------------------------


def _check(metrics: dict, params: dict) -> list:
    failures = []
    if not 0.0 <= metrics["proposed_overhead"] < 0.05:
        failures.append(
            f"proposed overhead {metrics['proposed_overhead']:+.2%} "
            "outside [0%, 5%)"
        )
    if abs(metrics["sparse_overhead"]) >= 0.005:
        failures.append("sparse-only checkpointing should be free")
    return failures


@register(
    "fig13_ckpt_gpus",
    params=[
        Param("workers", "int", 4),
        Param("iterations", "int", 0, help="0 = profile default for workers"),
    ],
    headline={
        "proposed_overhead": Headline(direction="lower", max_regression=0.10,
                                      noise=0.005),
    },
    check=_check,
)
def entry(*, workers, iterations):
    """Checkpoint overhead at one GPU count with the wall-clock 20-min
    interval anchored to the 16-GPU epoch (as in the paper)."""
    from repro.simulation.profiles import DEFAULT_PROFILE

    anchor = simulate_epoch(
        SystemKind.PMEM_OE, 16, iterations=DEFAULT_PROFILE.iterations(16)
    )
    interval = TrainingSimulator.interval_for_epoch_fraction(
        anchor.sim_seconds, 20, PAPER_EPOCH_HOURS
    )
    iters = iterations or DEFAULT_PROFILE.iterations(workers)
    base = simulate_epoch(SystemKind.PMEM_OE, workers, iterations=iters)
    proposed = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iters,
        checkpoint=CheckpointConfig(CheckpointMode.BATCH_AWARE, interval),
    )
    sparse = simulate_epoch(
        SystemKind.PMEM_OE, workers, iterations=iters,
        checkpoint=CheckpointConfig(
            CheckpointMode.SPARSE_ONLY, interval, include_dense=False
        ),
    )
    return {
        "proposed_overhead": proposed.sim_seconds / base.sim_seconds - 1,
        "sparse_overhead": sparse.sim_seconds / base.sim_seconds - 1,
    }


if __name__ == "__main__":
    from repro.bench.shim import main

    raise SystemExit(main("fig13_ckpt_gpus"))
