"""Eviction policies: CLOCK behaviour + checkpoint soundness for ALL
policies (the completion test that is one-comparison under LRU needs a
min-version scan under FIFO/CLOCK — these tests pin that down)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, EvictionPolicy, ServerConfig
from repro.core.entry import Location
from repro.core.ps_node import PSNode
from repro.core.optimizers import PSSGD
from repro.core.recovery import recover_node
from repro.errors import RecoveryError

DIM = 2


def make_node(policy, capacity_entries=3, seed=17):
    return PSNode(
        0,
        ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=seed),
        CacheConfig(
            capacity_bytes=capacity_entries * DIM * 4, policy=policy
        ),
        PSSGD(lr=0.25),
    )


def cycle(node, keys, batch):
    node.pull(keys, batch)
    node.maintain(batch)
    node.push(keys, np.full((len(keys), DIM), 0.5, dtype=np.float32), batch)


class TestClock:
    def test_referenced_entry_survives_first_sweep(self):
        node = make_node(EvictionPolicy.CLOCK, capacity_entries=2)
        cycle(node, [1, 2], 0)  # fresh insertions start unreferenced
        cycle(node, [1], 1)  # re-access references 1
        cycle(node, [3], 2)  # overflow: unreferenced 2 is the victim
        assert node.cache.cached_entries == 2
        assert node.cache.index.location_of(1) == Location.DRAM
        assert node.cache.index.location_of(2) == Location.PMEM
        node.cache.validate()

    def test_second_chance_beats_fifo_on_reaccess(self):
        """A hot entry re-referenced every batch stays cached under
        CLOCK, while FIFO (no second chance) eventually evicts it."""

        def run(policy):
            node = make_node(policy, capacity_entries=2)
            cycle(node, [1, 2], 0)
            for batch in range(1, 8):
                cycle(node, [1, 100 + batch], batch)  # 1 is hot, rest scan
            return node.cache.index.location_of(1)

        assert run(EvictionPolicy.CLOCK) == Location.DRAM
        assert run(EvictionPolicy.FIFO) == Location.PMEM

    def test_sweep_terminates_when_all_referenced(self):
        node = make_node(EvictionPolicy.CLOCK, capacity_entries=2)
        cycle(node, [1, 2, 3], 0)  # all referenced, must still evict one
        assert node.cache.cached_entries == 2


class TestPolicySemantics:
    @pytest.mark.parametrize(
        "policy", [EvictionPolicy.LRU, EvictionPolicy.FIFO, EvictionPolicy.CLOCK]
    )
    def test_all_policies_train_identical_weights(self, policy):
        reference = make_node(EvictionPolicy.LRU, capacity_entries=100)
        node = make_node(policy)
        rng = np.random.default_rng(1)
        for batch in range(12):
            keys = sorted(rng.choice(15, size=4, replace=False).tolist())
            for n in (reference, node):
                cycle(n, keys, batch)
        a, b = reference.state_snapshot(), node.state_snapshot()
        for key in a:
            assert np.array_equal(a[key], b[key])


class TestCheckpointSoundnessAllPolicies:
    """The regression net for the FIFO/CLOCK completion subtlety: a
    re-accessed tail can carry a high version while a middle entry still
    holds pre-checkpoint state; completion must wait for the true
    minimum cached version to pass the checkpoint id."""

    def test_fifo_does_not_complete_prematurely(self):
        node = make_node(EvictionPolicy.FIFO, capacity_entries=3)
        cycle(node, [1, 2, 3], 0)  # insertion order: 3, 2, 1 (tail=1)
        node.coordinator.request(0)
        state_at_0 = node.state_snapshot()
        # Re-access the tail (1) so ITS version advances past cp while
        # 2 and 3 keep version 0 and dirty batch-0 state, then force an
        # eviction of the (high-version) tail.
        cycle(node, [1], 1)
        cycle(node, [4], 2)  # overflow -> victim is key 1, version 2 > cp
        if node.coordinator.last_completed == 0:
            # Completion is only legal if every batch-0 state is durable.
            pool = node.crash()
            recovered, __ = recover_node(
                pool, node.server_config, node.cache_config, PSSGD(lr=0.25)
            )
            got = recovered.state_snapshot()
            for key in (1, 2, 3):
                assert np.array_equal(got[key], state_at_0[key]), key

    @pytest.mark.parametrize(
        "policy", [EvictionPolicy.LRU, EvictionPolicy.FIFO, EvictionPolicy.CLOCK]
    )
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_recovery_exact_for_any_policy(self, policy, data):
        schedule = data.draw(
            st.lists(
                st.tuples(
                    st.lists(st.integers(0, 7), min_size=1, max_size=4, unique=True),
                    st.booleans(),
                ),
                min_size=2,
                max_size=12,
            )
        )
        node = make_node(policy, capacity_entries=data.draw(st.integers(1, 5)))
        reference: dict[int, np.ndarray] = {}
        snapshots: dict[int, dict[int, np.ndarray]] = {}
        for batch, (keys, want_ckpt) in enumerate(schedule):
            node.pull(keys, batch)
            node.maintain(batch)
            grads = np.full((len(keys), DIM), 0.5, dtype=np.float32)
            node.push(keys, grads, batch)
            for key in keys:
                if key not in reference:
                    rng = np.random.default_rng((17, key))
                    reference[key] = rng.uniform(-0.01, 0.01, DIM).astype(np.float32)
                reference[key] = reference[key] - np.float32(0.25) * grads[0]
            pending = node.coordinator.queue.pending()
            if (
                want_ckpt
                and batch > node.coordinator.last_completed
                and (not pending or pending[-1] < batch)
            ):
                node.coordinator.request(batch)
                snapshots[batch] = {
                    k: np.array(v, copy=True) for k, v in reference.items()
                }
        pool = node.crash()
        durable = pool.root.get("checkpointed_batch_id", -1)
        if durable < 0:
            with pytest.raises(RecoveryError):
                recover_node(
                    pool, node.server_config, node.cache_config, PSSGD(lr=0.25)
                )
            return
        recovered, report = recover_node(
            pool, node.server_config, node.cache_config, PSSGD(lr=0.25)
        )
        expected = snapshots[durable]
        got = recovered.state_snapshot()
        assert set(got) == set(expected)
        for key, weights in expected.items():
            assert np.array_equal(got[key], weights), (policy, key)
