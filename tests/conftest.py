"""Shared fixtures: small, fast configurations for unit tests."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

# Deterministic hypothesis profile: property tests replay the same
# example stream on every run (derandomize fixes the PRNG seed) and
# never flake on wall-clock (deadline=None — CI machines are noisy).
# CI exports HYPOTHESIS_PROFILE=deterministic explicitly; developers
# can opt into fresh examples with HYPOTHESIS_PROFILE=explore.
hypothesis_settings.register_profile(
    "deterministic", derandomize=True, deadline=None, print_blob=True
)
hypothesis_settings.register_profile("explore", deadline=None)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "deterministic")
)

from repro.config import CacheConfig, ServerConfig
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.cache import PipelinedCache
from repro.core.optimizers import PSSGD
from repro.core.ps_node import PSNode
from repro.pmem.pool import PmemPool
from repro.pmem.space import VersionedEntryStore

DIM = 4
ENTRY_BYTES = DIM * 4


@pytest.fixture
def pool():
    return PmemPool(capacity_bytes=1 << 20)


@pytest.fixture
def store(pool):
    return VersionedEntryStore(pool, entry_bytes=ENTRY_BYTES)


@pytest.fixture
def coordinator(store):
    return CheckpointCoordinator(store)


def make_cache(
    store,
    coordinator,
    capacity_entries: int = 4,
    *,
    value_mode: bool = True,
    track_dirty: bool = False,
) -> PipelinedCache:
    """A small cache; capacity is given in entries for readability."""
    config = CacheConfig(
        capacity_bytes=capacity_entries * ENTRY_BYTES, track_dirty=track_dirty
    )
    initializer = (lambda key: np.full(DIM, float(key), dtype=np.float32)) if value_mode else None
    return PipelinedCache(
        config,
        store,
        coordinator,
        dim=DIM,
        initializer=initializer,
        optimizer=PSSGD(lr=0.5),
    )


@pytest.fixture
def cache(store, coordinator):
    return make_cache(store, coordinator)


def make_node(
    capacity_entries: int = 8,
    *,
    num_nodes: int = 1,
    dim: int = DIM,
    seed: int = 0,
    metadata_only: bool = False,
    optimizer=None,
) -> PSNode:
    server_config = ServerConfig(
        num_nodes=num_nodes,
        embedding_dim=dim,
        pmem_capacity_bytes=1 << 22,
        seed=seed,
    )
    cache_config = CacheConfig(capacity_bytes=capacity_entries * dim * 4)
    return PSNode(
        0,
        server_config,
        cache_config,
        optimizer or PSSGD(lr=0.5),
        metadata_only=metadata_only,
    )


@pytest.fixture
def node():
    return make_node()
