"""Elastic reshard demo: live scale-out/in + crash mid-migration.

A 3-node ring-partitioned PS cluster trains a deterministic workload,
then — without stopping the job —

1. **scales out** to 4 nodes (only ~1/4 of resident keys move, each
   straight onto the new node),
2. keeps training,
3. starts **scaling back in** to 3 nodes and is **killed mid-transfer**
   (the crash-point hook fires inside the copy loop),
4. recovers from the surviving PMem pools with ``recover_elastic`` —
   the committed ring word says the migration never happened, so the
   recovered cluster is back on 4 nodes and simply runs the reshard
   again,
5. finishes training.

The punchline: the final weights are **bitwise identical** to an
unsharded single-node replay that saw each batch exactly once. Since
weights initialize from ``(seed, key)`` and gradients from
``(seed, batch)``, one lost or double-applied push anywhere in steps
1-5 would change the bits. See docs/ELASTICITY.md for the protocol.

Run:  python examples/elastic_reshard.py
"""

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.migration import ShardMigrator, recover_elastic
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer

DIM = 8
NUM_KEYS = 120
BATCH_KEYS = 16
TOTAL_BATCHES = 12
SCALE_OUT_AFTER = 5  # batches trained before the live scale-out
SCALE_IN_AFTER = 9   # batches trained before the (crashy) scale-in
SEED = 7

CACHE = CacheConfig(capacity_bytes=48 * DIM * 4)


class KilledMidTransfer(Exception):
    pass


def crash_at_mid_transfer(label: str) -> None:
    """on_step hook: kill the whole cluster halfway through the copy."""
    print(f"    migration step: {label}")
    if label == "mid_transfer":
        raise KilledMidTransfer


def batch_payload(batch: int) -> tuple[list[int], np.ndarray]:
    """Keys + gradients as a pure function of the batch id, so the
    post-recovery replay regenerates exactly the pushes that were
    rolled back."""
    rng = np.random.default_rng((SEED, batch))
    keys = sorted(rng.choice(NUM_KEYS, size=BATCH_KEYS, replace=False).tolist())
    grads = rng.normal(0, 0.1, (BATCH_KEYS, DIM)).astype(np.float32)
    return keys, grads


def train(server, first: int, last: int) -> None:
    for batch in range(first, last):
        keys, grads = batch_payload(batch)
        server.pull(keys, batch)
        server.maintain(batch)
        server.push(keys, grads, batch)


def reference_state() -> dict[int, np.ndarray]:
    """One node, modulo routing, no reshard, no crash."""
    server = OpenEmbeddingServer(
        ServerConfig(
            num_nodes=1, embedding_dim=DIM,
            pmem_capacity_bytes=1 << 26, seed=SEED,
        ),
        CACHE,
        PSAdagrad(lr=0.05),
    )
    train(server, 0, TOTAL_BATCHES)
    return server.state_snapshot()


def main() -> None:
    config = ServerConfig(
        num_nodes=3,
        embedding_dim=DIM,
        pmem_capacity_bytes=1 << 26,
        partitioner="ring",
        ring_vnodes=32,
        seed=SEED,
    )
    server = OpenEmbeddingServer(config, CACHE, PSAdagrad(lr=0.05))

    print(f"training batches 0..{SCALE_OUT_AFTER - 1} on 3 ring nodes ...")
    train(server, 0, SCALE_OUT_AFTER)

    print("\nlive scale-out 3 -> 4 (training stays online):")
    report = ShardMigrator(server).scale_out()
    print(
        f"  moved {report.keys_moved}/{report.keys_total} resident keys "
        f"({report.moved_fraction:.1%}; a full modulo remap would move ~75%), "
        f"ring epoch now {server.ring_epoch}"
    )

    print(f"\ntraining batches {SCALE_OUT_AFTER}..{SCALE_IN_AFTER - 1} "
          f"on 4 nodes ...")
    train(server, SCALE_OUT_AFTER, SCALE_IN_AFTER)

    print("\nscale-in 4 -> 3, but the cluster dies mid-transfer:")
    migrator = ShardMigrator(server, on_step=crash_at_mid_transfer)
    try:
        migrator.scale_in()
    except KilledMidTransfer:
        print("  << power cut: every DRAM structure is gone >>")

    pools = migrator.crash()  # only the PMem pools survive
    server, reports, purged = recover_elastic(
        pools, config, CACHE, PSAdagrad(lr=0.05)
    )
    print(
        f"  recovered {len(reports)} shards onto the committed ring "
        f"(epoch {server.ring_epoch}, {server.server_config.num_nodes} nodes), "
        f"purged {purged} stranded half-transferred copies"
    )

    # The crash landed before the atomic commit, so the durable ring is
    # still the 4-node one. Replay whatever the rollback discarded, then
    # just run the reshard again — the barrier is idempotent and
    # re-delivery of already-copied keys is harmless.
    resume_from = server.global_completed_checkpoint + 1
    if resume_from < SCALE_IN_AFTER:
        print(f"  replaying rolled-back batches {resume_from}.."
              f"{SCALE_IN_AFTER - 1} ...")
        train(server, resume_from, SCALE_IN_AFTER)
    print("  retrying the interrupted scale-in:")
    report = ShardMigrator(server).scale_in()
    print(
        f"  moved {report.keys_moved}/{report.keys_total} keys "
        f"({report.moved_fraction:.1%}), back to "
        f"{server.server_config.num_nodes} nodes, epoch {server.ring_epoch}"
    )

    print(f"\ntraining batches {SCALE_IN_AFTER}..{TOTAL_BATCHES - 1} ...")
    train(server, SCALE_IN_AFTER, TOTAL_BATCHES)

    print("\ncomparing against an unsharded single-node replay ...")
    final = server.state_snapshot()
    reference = reference_state()
    assert set(final) == set(reference)
    identical = all(np.array_equal(final[k], reference[k]) for k in reference)
    assert identical, "weights diverged — an update was lost or duplicated"
    print(
        f"  {len(final)} embeddings, scale-out + crash + recovery + "
        f"scale-in later: bitwise identical = {identical}"
    )


if __name__ == "__main__":
    main()
