"""Synchronous replication: replica identity, failover, double faults."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, ServerConfig
from repro.core.replication import (
    FAILOVER_SECONDS,
    ReplicatedPSNode,
    replication_vs_recovery_seconds,
)
from repro.core.recovery import recover_node
from repro.core.optimizers import PSSGD
from repro.errors import ServerError

DIM = 4


def make_node(capacity_entries=4):
    return ReplicatedPSNode(
        0,
        ServerConfig(embedding_dim=DIM, pmem_capacity_bytes=1 << 22, seed=9),
        CacheConfig(capacity_bytes=capacity_entries * DIM * 4),
        PSSGD(lr=0.25),
    )


def cycle(node, keys, batch, value=0.5):
    node.pull(keys, batch)
    node.maintain(batch)
    node.push(keys, np.full((len(keys), DIM), value, dtype=np.float32), batch)


class TestReplicaIdentity:
    def test_replicas_identical_after_training(self):
        node = make_node()
        for batch in range(8):
            cycle(node, [batch % 5, (batch + 1) % 5], batch)
        node.verify_replicas_identical()

    @given(
        st.lists(
            st.lists(st.integers(0, 9), min_size=1, max_size=4, unique=True),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_replicas_identical_for_any_schedule(self, schedule):
        node = make_node(capacity_entries=2)
        for batch, keys in enumerate(schedule):
            cycle(node, keys, batch)
        node.verify_replicas_identical()


class TestFailover:
    def test_failover_preserves_live_state(self):
        """Unlike recovery, failover loses NOTHING — not even the
        batches after the last checkpoint."""
        node = make_node()
        cycle(node, [1, 2], 0)
        node.barrier_checkpoint(0)
        cycle(node, [1, 2], 1)  # past the checkpoint
        live = node.state_snapshot()
        node.fail_primary()
        elapsed = node.failover()
        assert elapsed == FAILOVER_SECONDS
        promoted = node.state_snapshot()
        for key, weights in live.items():
            assert np.array_equal(promoted[key], weights)

    def test_training_continues_after_failover(self):
        node = make_node()
        cycle(node, [1], 0)
        node.fail_primary()
        node.failover()
        assert node.degraded
        cycle(node, [1, 2], 1)
        assert node.num_entries == 2

    def test_failover_without_failure_rejected(self):
        with pytest.raises(ServerError):
            make_node().failover()

    def test_verify_after_failover_rejected(self):
        node = make_node()
        cycle(node, [1], 0)
        node.fail_primary()
        node.failover()
        with pytest.raises(ServerError):
            node.verify_replicas_identical()


class TestDoubleFault:
    def test_checkpoint_recovery_still_works(self):
        """Both replicas die: fall back to the paper's recovery path on
        the promoted replica's surviving pool."""
        node = make_node()
        cycle(node, [1, 2, 3], 0)
        node.barrier_checkpoint(0)
        expected = node.state_snapshot()
        cycle(node, [1, 2, 3], 1)
        node.fail_primary()
        node.failover()
        pool = node.primary.crash()  # the second fault
        recovered, report = recover_node(
            pool,
            node.server_config,
            CacheConfig(capacity_bytes=4 * DIM * 4),
            PSSGD(lr=0.25),
        )
        assert report.checkpoint_batch_id == 0
        got = recovered.state_snapshot()
        for key, weights in expected.items():
            assert np.array_equal(got[key], weights)


class TestRingFollowing:
    """Replicas follow the committed ring epoch and mirror migrations
    (docs/ELASTICITY.md: a failover must never resurrect pre-migration
    routing or serve a pre-migration shard)."""

    def test_epoch_monotone(self):
        node = make_node()
        node.follow_ring(1)
        node.follow_ring(1)  # re-announcement is fine
        node.follow_ring(3)
        assert node.ring_epoch == 3
        with pytest.raises(ServerError, match="monotone"):
            node.follow_ring(2)

    def test_epoch_survives_failover(self):
        node = make_node()
        node.follow_ring(2)
        node.fail_primary()
        node.failover()
        assert node.ring_epoch == 2
        with pytest.raises(ServerError, match="monotone"):
            node.follow_ring(1)

    def test_ingest_and_drop_mirror_to_backup(self):
        donor = make_node()
        for batch in range(4):
            cycle(donor, [1, 2, 3], batch)
        donor.barrier_checkpoint(3)  # make the live state durable
        entries = donor.export_entries([1, 2])

        node = make_node()
        for batch in range(4):
            cycle(node, [7, 8], batch)
        assert node.ingest_entries(entries) == 2
        node.verify_replicas_identical()
        assert {1, 2} <= set(node.owned_keys())

        assert node.drop_keys([1, 7]) == 2
        node.verify_replicas_identical()
        assert set(node.owned_keys()) == {2, 8}

    def test_failover_serves_post_migration_shard(self):
        """After a mirrored ingest, the promoted backup holds the
        migrated entries bitwise."""
        donor = make_node()
        for batch in range(4):
            cycle(donor, [1, 2, 3], batch)
        donor.barrier_checkpoint(3)  # make the live state durable
        entries = donor.export_entries([1, 2, 3])
        expected = {k: v.copy() for k, v in donor.state_snapshot().items()}

        node = make_node()
        node.ingest_entries(entries)
        node.follow_ring(1)
        node.fail_primary()
        node.failover()
        got = node.state_snapshot()
        for key, weights in expected.items():
            assert np.array_equal(got[key], weights)


class TestTradeoff:
    def test_failover_constant_recovery_scales(self):
        small_fo, small_rec = replication_vs_recovery_seconds(
            entries=1_000_000, entry_bytes=256
        )
        large_fo, large_rec = replication_vs_recovery_seconds(
            entries=2_100_000_000, entry_bytes=256
        )
        assert small_fo == large_fo == FAILOVER_SECONDS
        assert large_rec > 100 * small_rec
        assert large_rec == pytest.approx(380.2, rel=0.12)
