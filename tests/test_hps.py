"""Hierarchical serving tier: cache, staleness bound, replica fan-out.

Unit coverage for the online inference extension:

* the :class:`~repro.core.serving_backend.ServingBackend` protocol and
  its checker;
* :class:`~repro.core.serving_backend.ReplicaSelector` policies;
* :class:`~repro.dlrm.hps.HierarchicalPS` — hot-row cache hits,
  snapshot-window invalidation at every ``staleness_bound_k``, pinned
  reads bypassing the cache, frequency-gated admission;
* the role-split backend protocols (``ReadBackend`` / ``TrainBackend``)
  and the deprecated ``PSBackend`` alias;
* checkpoint-pinned model export and
  :meth:`~repro.dlrm.serving.InferenceSession.from_backend`.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import CacheConfig, ConfigError, ServerConfig
from repro.core.backend import ReadBackend, TrainBackend, check_backend
from repro.core.serving_backend import (
    LookupResult,
    ReplicaSelector,
    ServingBackend,
    check_serving_backend,
)
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.hps import HierarchicalPS
from repro.errors import CheckpointError, ServerError

DIM = 8


def make_server(num_nodes: int = 2, seed: int = 3) -> OpenEmbeddingServer:
    return OpenEmbeddingServer(
        ServerConfig(
            num_nodes=num_nodes,
            embedding_dim=DIM,
            pmem_capacity_bytes=1 << 22,
            seed=seed,
        ),
        CacheConfig(capacity_bytes=1 << 18),
    )


def train_batch(server, keys, batch_id, scale=0.01):
    server.pull(keys, batch_id)
    server.maintain(batch_id)
    grads = np.full((len(keys), DIM), scale, dtype=np.float32)
    server.push(keys, grads, batch_id)


def trained_server(batches: int = 1, keys=range(16)) -> OpenEmbeddingServer:
    server = make_server()
    keys = list(keys)
    for batch in range(batches):
        train_batch(server, keys, batch)
    server.barrier_checkpoint()
    return server


# ----------------------------------------------------------------------
# protocols
# ----------------------------------------------------------------------


class TestServingProtocol:
    def test_server_is_serving_backend(self):
        server = make_server()
        assert isinstance(server, ServingBackend)
        assert check_serving_backend(server) is server

    def test_checker_names_missing_members(self):
        class NotServing:
            pass

        with pytest.raises(TypeError, match="lookup"):
            check_serving_backend(NotServing())

    def test_role_split(self):
        server = make_server()
        assert isinstance(server, ReadBackend)
        assert isinstance(server, TrainBackend)
        assert check_backend(server, role="read") is server
        assert check_backend(server, role="train") is server

    def test_read_only_object_fails_train_role(self):
        class ReadOnly:
            def pull(self, keys, batch_id): ...
            def lookup(self, keys, snapshot_id=None): ...
            num_entries = 0
            latest_completed_batch = -1
            latest_serving_snapshot = -1
            checkpoints_completed = 0

        check_backend(ReadOnly(), role="read")
        with pytest.raises(TypeError, match="push"):
            check_backend(ReadOnly(), role="train")

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown backend role"):
            check_backend(make_server(), role="serve")

    def test_psbackend_alias_deprecated(self):
        import repro.core.backend as backend_module

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alias = backend_module.PSBackend
        assert alias is TrainBackend
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )


class TestReplicaSelector:
    def test_primary_policy_never_fans_out(self):
        selector = ReplicaSelector(policy="primary")
        assert [selector.pick(0, 2) for __ in range(4)] == [0, 0, 0, 0]

    def test_round_robin_alternates_per_node(self):
        selector = ReplicaSelector(policy="round_robin")
        assert [selector.pick(0, 2) for __ in range(4)] == [0, 1, 0, 1]
        # Each node keeps its own turn counter.
        assert selector.pick(1, 2) == 0

    def test_least_loaded_balances(self):
        selector = ReplicaSelector(policy="least_loaded")
        picks = [selector.pick(0, 2) for __ in range(6)]
        assert picks.count(0) == picks.count(1) == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="policy"):
            ReplicaSelector(policy="random")

    def test_config_validates_policy(self):
        with pytest.raises(ConfigError, match="serving_replica_policy"):
            ServerConfig(
                embedding_dim=8,
                pmem_capacity_bytes=1 << 22,
                serving_replica_policy="sometimes",
            )

    def test_unreplicated_shard_counts_one(self):
        server = make_server()
        assert ReplicaSelector.replica_count(server.nodes[0]) == 1


# ----------------------------------------------------------------------
# backend lookup semantics
# ----------------------------------------------------------------------


class TestBackendLookup:
    def test_lookup_requires_a_completed_checkpoint(self):
        server = make_server()
        train_batch(server, [1, 2], 0)
        with pytest.raises(CheckpointError, match="not a completed checkpoint"):
            server.lookup([1, 2])

    def test_future_pin_rejected(self):
        server = trained_server()
        with pytest.raises(CheckpointError):
            server.lookup([1], snapshot_id=99)

    def test_cold_key_serves_deterministic_init(self):
        server = trained_server()
        result = server.lookup([123456])
        assert result.cold == 1
        cfg = server.server_config
        rng = np.random.default_rng((cfg.seed, 123456))
        expected = rng.uniform(
            -cfg.initializer_scale, cfg.initializer_scale, DIM
        ).astype(np.float32)
        assert np.array_equal(result.weights[0], expected)

    def test_pinned_read_ignores_later_training(self):
        server = trained_server(keys=range(8))
        frozen = server.lookup(list(range(8)), 0)
        train_batch(server, list(range(8)), 1, scale=0.5)
        server.barrier_checkpoint()
        still = server.lookup(list(range(8)), 0)
        assert np.array_equal(frozen.weights, still.weights)
        fresh = server.lookup(list(range(8)))
        assert fresh.snapshot_id == 1
        assert not np.array_equal(fresh.weights, frozen.weights)

    def test_metadata_only_rejected(self):
        server = OpenEmbeddingServer(
            ServerConfig(
                num_nodes=1,
                embedding_dim=DIM,
                pmem_capacity_bytes=1 << 22,
            ),
            CacheConfig(capacity_bytes=1 << 18),
            metadata_only=True,
        )
        train_batch_keys = [1]
        server.pull(train_batch_keys, 0)
        server.maintain(0)
        server.push(train_batch_keys, None, 0)
        server.barrier_checkpoint()
        with pytest.raises(ServerError, match="value-mode"):
            server.lookup(train_batch_keys)


# ----------------------------------------------------------------------
# the hierarchical tier
# ----------------------------------------------------------------------


class TestHierarchicalPS:
    def test_cache_hits_serve_identical_rows(self):
        tier = HierarchicalPS(trained_server(), capacity_rows=32)
        first = tier.lookup([1, 2, 3])
        second = tier.lookup([1, 2, 3])
        assert np.array_equal(first.weights, second.weights)
        assert tier.stats.cache_hits == 3
        assert tier.stats.remote_rows == 3

    def test_capacity_zero_disables_caching(self):
        tier = HierarchicalPS(trained_server(), capacity_rows=0)
        tier.lookup([1, 2])
        tier.lookup([1, 2])
        assert tier.stats.cache_hits == 0
        assert tier.stats.remote_rows == 4

    def test_lru_eviction_respects_capacity(self):
        tier = HierarchicalPS(trained_server(), capacity_rows=2)
        tier.lookup([1, 2, 3])
        assert tier.cached_rows == 2

    def test_k0_forces_current_rows(self):
        server = trained_server(keys=range(8))
        tier = HierarchicalPS(server, capacity_rows=32, staleness_bound_k=0)
        stale = tier.lookup([1])
        train_batch(server, list(range(8)), 1, scale=0.5)
        server.barrier_checkpoint()
        fresh = tier.lookup([1])
        assert stale.row_snapshots[0] == 0
        assert fresh.row_snapshots[0] == 1
        assert not np.array_equal(stale.weights, fresh.weights)
        assert tier.stats.invalidated == 1

    def test_k1_serves_one_checkpoint_behind(self):
        server = trained_server(keys=range(8))
        tier = HierarchicalPS(server, capacity_rows=32, staleness_bound_k=1)
        old = tier.lookup([1])
        train_batch(server, list(range(8)), 1, scale=0.5)
        server.barrier_checkpoint()
        lagging = tier.lookup([1])
        # Within the bound: the cached row (pinned at checkpoint 0) may
        # still serve while the newest checkpoint is 1.
        assert lagging.row_snapshots[0] == 0
        assert np.array_equal(old.weights, lagging.weights)
        # One more advance pushes it past the bound.
        train_batch(server, list(range(8)), 2, scale=0.5)
        server.barrier_checkpoint()
        current = tier.lookup([1])
        assert current.row_snapshots[0] == 2

    def test_explicit_pin_bypasses_cache(self):
        server = trained_server(keys=range(8))
        tier = HierarchicalPS(server, capacity_rows=32)
        tier.lookup([1])
        train_batch(server, list(range(8)), 1, scale=0.5)
        server.barrier_checkpoint()
        pinned = tier.lookup([1], snapshot_id=0)
        assert pinned.snapshot_id == 0
        assert tier.stats.rows == 1  # the pinned read is not counted as cached traffic

    def test_freq_admission_waits_for_second_touch(self):
        tier = HierarchicalPS(
            trained_server(), capacity_rows=32, freq_admission=True
        )
        tier.lookup([7])
        assert tier.cached_rows == 0
        tier.lookup([7])
        assert tier.cached_rows == 1

    def test_invalidate_drops_everything(self):
        tier = HierarchicalPS(trained_server(), capacity_rows=32)
        tier.lookup([1, 2, 3])
        assert tier.invalidate() == 3
        assert tier.cached_rows == 0

    def test_rejects_train_only_backend(self):
        class TrainOnly:
            def pull(self, keys, batch_id): ...

        with pytest.raises(TypeError, match="lookup"):
            HierarchicalPS(TrainOnly())

    def test_registry_counters_published(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        tier = HierarchicalPS(
            trained_server(), capacity_rows=32, registry=registry
        )
        tier.lookup([1, 2])
        tier.lookup([1, 2])
        assert registry.counter("repro_serving_requests_total").value == 2
        assert registry.counter("repro_serving_cache_hits_total").value == 2

    def test_bundle_hoists_serving_counters(self):
        from repro.obs.registry import MetricsRegistry, collect_bundle

        server = trained_server()
        server.lookup([1, 2, 3])
        registry = MetricsRegistry()
        for i, node in enumerate(server.nodes):
            collect_bundle(registry, node.metrics, {"node": str(i)})
        total = sum(
            metric.value
            for name, __, metric in registry.items()
            if name == "repro_serving_rows_total"
        )
        assert total == 3


# ----------------------------------------------------------------------
# checkpoint-pinned export / serving sessions
# ----------------------------------------------------------------------


class TestPinnedExport:
    def test_from_backend_serves_pinned_rows(self):
        from repro.dlrm.deepfm import DeepFM
        from repro.dlrm.serving import InferenceSession

        server = trained_server(keys=range(12))
        model = DeepFM(4, DIM, hidden=(8,), use_first_order=False, seed=0)
        session = InferenceSession.from_backend(server, model)
        assert session.snapshot_id == 0
        assert session.num_entries == 12
        live = server.lookup([3])
        key_matrix = np.array([[3, 3, 3, 3]])
        assert np.array_equal(session.lookup(key_matrix)[0, 0], live.weights[0])

    def test_from_backend_requires_checkpoint(self):
        from repro.dlrm.deepfm import DeepFM
        from repro.dlrm.serving import InferenceSession

        server = make_server()
        train_batch(server, [1, 2], 0)  # trained but never checkpointed
        model = DeepFM(4, DIM, hidden=(8,), use_first_order=False, seed=0)
        with pytest.raises(ServerError, match="checkpoint"):
            InferenceSession.from_backend(server, model)

    def test_from_backend_rejects_empty(self):
        from repro.dlrm.deepfm import DeepFM
        from repro.dlrm.serving import InferenceSession

        model = DeepFM(4, DIM, hidden=(8,), use_first_order=False, seed=0)
        with pytest.raises(ServerError, match="no embedding entries"):
            InferenceSession.from_backend(make_server(), model)

    def test_export_is_checkpoint_pinned(self, tmp_path):
        """Exporting mid-training captures a barrier, not a torn mix."""
        from repro.dlrm.deepfm import DeepFM
        from repro.dlrm.serving import InferenceSession, export_model

        server = trained_server(keys=range(8))
        model = DeepFM(4, DIM, hidden=(8,), use_first_order=False, seed=0)
        path = tmp_path / "model.npz"
        export_model(path, server, model)
        session = InferenceSession(
            path, DeepFM(4, DIM, hidden=(8,), use_first_order=False, seed=0)
        )
        pinned = server.lookup(list(range(8)), server.latest_serving_snapshot)
        key_matrix = np.array([list(range(4)), list(range(4, 8))])
        assert np.array_equal(
            session.lookup(key_matrix).reshape(8, DIM), pinned.weights
        )
