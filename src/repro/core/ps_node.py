"""A single OpenEmbedding parameter-server node (Figure 4).

A node bundles: a PMem pool + versioned store (persistent tier), the
pipelined DRAM cache (Algorithms 1/2), a checkpoint coordinator, and a
deterministic per-key initializer. The node exposes the PS protocol the
TensorFlow operators call: ``pull``, ``push`` (gradients), ``maintain``
(the cache-maintainer round) and checkpoint control.

Determinism: new entries are initialised from an RNG seeded by
``(seed, key)``, so initial weights depend only on the key — never on
access order, cache size or pipelining. Tests rely on this to prove the
pipeline is semantics-free.
"""

from __future__ import annotations

import numpy as np

from repro.config import CacheConfig, ServerConfig
from repro.core.aggregators import (
    AggregationBuffer,
    default_byzantine_tolerance,
    make_aggregator,
)
from repro.core.cache import MaintainResult, PipelinedCache, PullResult
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.entry import EmbeddingEntry, Location
from repro.core.optimizers import PSOptimizer, PSSGD
from repro.core.serving_backend import LookupResult
from repro.core.staleness import StalenessController
from repro.errors import CheckpointError, ServerError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmem.pool import PmemPool
from repro.pmem.space import VersionedEntryStore
from repro.simulation.metrics import Metrics


class PSNode:
    """One shard of the distributed embedding table.

    Args:
        node_id: shard index (also perturbs nothing — init is key-seeded).
        server_config: model shape / pool size / seed.
        cache_config: DRAM cache parameters.
        optimizer: PS-side update rule.
        metadata_only: run without real weight arrays (performance
            simulations); pulls return None.
        pool: reuse an existing pool — this is how crash recovery hands
            the surviving PMem DIMMs to a fresh node process.
        cluster_mode: this node is one shard of a coordinated cluster;
            its coordinator then retains every completed checkpoint the
            cluster-wide external barrier has not yet superseded (see
            :meth:`CheckpointCoordinator.set_external_barrier`).
        tracer: span/event sink shared with the cache (maintenance
            rounds, PMem load/store, checkpoint completion events).
    """

    def __init__(
        self,
        node_id: int,
        server_config: ServerConfig,
        cache_config: CacheConfig | None = None,
        optimizer: PSOptimizer | None = None,
        metadata_only: bool = False,
        pool: PmemPool | None = None,
        cluster_mode: bool = False,
        tracer: Tracer | None = None,
    ):
        self.node_id = node_id
        self.server_config = server_config
        self.cache_config = cache_config or CacheConfig()
        self.optimizer = optimizer or PSSGD()
        self.metadata_only = metadata_only
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = Metrics()

        dim = server_config.embedding_dim
        stored_bytes = (dim + self.optimizer.state_width(dim)) * 4
        # `pool or ...` would be wrong here: PmemPool defines __len__,
        # so an EMPTY surviving pool (a shard that held no entries) is
        # falsy and would be silently replaced by a fresh pool —
        # discarding its durable checkpoint root during recovery.
        self.pool = pool if pool is not None else PmemPool(
            server_config.pmem_capacity_bytes
        )
        self.store = VersionedEntryStore(self.pool, entry_bytes=stored_bytes)
        self.coordinator = CheckpointCoordinator(self.store, cluster_mode=cluster_mode)
        initializer = None if metadata_only else self._make_initializer()
        self.cache = PipelinedCache(
            self.cache_config,
            self.store,
            self.coordinator,
            dim=dim,
            initializer=initializer,
            optimizer=self.optimizer,
            metrics=self.metrics,
            auto_create=server_config.auto_create,
            tracer=self.tracer,
        )
        self.latest_completed_batch = -1
        #: Bounded-staleness admission (async training). Always present
        #: so progress vectors are observable; admission only rejects
        #: when the config sets a bound.
        self.staleness = StalenessController(server_config.staleness_bound)
        #: Robust-aggregation buffer, or None for the direct-apply path.
        self.aggregation: AggregationBuffer | None = None
        if server_config.aggregator != "none":
            workers = server_config.aggregator_workers
            f = server_config.aggregator_f
            if f is None:
                f = default_byzantine_tolerance(workers)
            self.aggregation = AggregationBuffer(
                make_aggregator(server_config.aggregator, f),
                num_workers=workers,
                f=min(f, max(0, workers - 1)),
            )

    # ------------------------------------------------------------------
    # PS protocol
    # ------------------------------------------------------------------

    def pull(
        self,
        keys,
        batch_id: int,
        *,
        worker_id: int | None = None,
        progress: int | None = None,
    ) -> PullResult:
        """Serve a PullWeights request.

        ``worker_id`` / ``progress`` feed the bounded-staleness
        admission check (:class:`~repro.core.staleness.StalenessController`);
        anonymous pulls (the default) bypass it.

        Raises:
            StalenessError: the caller is more than the configured bound
                behind the slowest other admitted worker. Raised before
                any cache state is touched.
        """
        self.staleness.admit_pull(worker_id, progress)
        return self.cache.pull(keys, batch_id)

    def maintain(self, batch_id: int) -> MaintainResult:
        """Run the deferred cache-maintenance round for ``batch_id``."""
        return self.cache.maintain(batch_id)

    def push(
        self,
        keys,
        grads: np.ndarray | None,
        batch_id: int,
        *,
        worker_id: int | None = None,
        seq: int = 0,
    ) -> int:
        """Apply a PushGradients request; marks the batch trained.

        With an aggregation buffer configured the push is folded with
        the other workers' contributions (quorum-triggered) before any
        gradient reaches ``apply_batch``; without one it applies
        directly (the synchronous path, bit-identical to before the
        defense layer existed).
        """
        self.staleness.record_push(worker_id, batch_id)
        if self.aggregation is not None and grads is not None:
            updated = 0
            for fold in self.aggregation.add(
                worker_id, keys, grads, batch_id, seq=seq
            ):
                updated += self.cache.update(fold.keys, fold.grads, fold.batch_id)
                self.latest_completed_batch = max(
                    self.latest_completed_batch, fold.batch_id
                )
            return updated
        updated = self.cache.update(keys, grads, batch_id)
        self.latest_completed_batch = max(self.latest_completed_batch, batch_id)
        return updated

    def flush_aggregation(self) -> int:
        """Fold every buffered contribution now (quorum or not).

        Part of quiescing: a batch-consistent checkpoint must capture
        buffered gradients, not leave them to fold after the snapshot.
        Returns the number of entries updated.
        """
        if self.aggregation is None:
            return 0
        updated = 0
        for fold in self.aggregation.flush():
            updated += self.cache.update(fold.keys, fold.grads, fold.batch_id)
            self.latest_completed_batch = max(
                self.latest_completed_batch, fold.batch_id
            )
        return updated

    # ------------------------------------------------------------------
    # serving reads
    # ------------------------------------------------------------------

    @property
    def latest_serving_snapshot(self) -> int:
        """Newest completed checkpoint — the only valid serving pin.

        Intermediate batch ids are NOT safe snapshot points: between
        barriers the version store prunes versions no retention barrier
        protects, so reading "at most batch b" for an uncheckpointed b
        could silently resolve to an older row. Serving therefore pins
        exclusively to completed checkpoint ids.
        """
        return self.coordinator.last_completed

    @property
    def checkpoints_completed(self) -> int:
        """Monotone count of checkpoints completed by this node.

        Checkpoint *ids* are batch ids, so consecutive completed
        checkpoints are not numerically adjacent — a staleness bound of
        "at most k checkpoints behind" can only be enforced against this
        counter, never by subtracting snapshot ids.
        """
        return self.coordinator.completed_count

    def lookup(self, keys, snapshot_id: int | None = None) -> LookupResult:
        """Serve a snapshot-pinned batched read (the inference path).

        Unlike :meth:`pull`, a lookup never perturbs cache state — no
        access-stream append, no LRU touch, no entry creation — and
        reads durable versions ``<= snapshot_id`` straight from the
        store, so concurrent training cannot tear a row. Keys with no
        durable version at the snapshot (created later, or never seen)
        serve the deterministic key-seeded initializer: exactly the
        weights they had (virtually) at snapshot time.

        Raises:
            ServerError: metadata-only node (no real weights to serve).
            CheckpointError: ``snapshot_id`` is newer than the newest
                completed checkpoint (or no checkpoint exists yet).
        """
        if self.metadata_only:
            raise ServerError("lookup requires a value-mode node")
        latest = self.coordinator.last_completed
        if snapshot_id is None:
            snapshot_id = latest
        if snapshot_id < 0 or snapshot_id > latest:
            raise CheckpointError(
                f"snapshot {snapshot_id} is not a completed checkpoint "
                f"(newest completed: {latest})"
            )
        dim = self.server_config.embedding_dim
        initializer = self.cache.initializer
        n = len(keys)
        weights = np.empty((n, dim), dtype=np.float32)
        hits = cold = 0
        for i, key in enumerate(keys):
            try:
                __, stored = self.store.read_at_most(int(key), snapshot_id)
            except KeyError:
                weights[i] = initializer(int(key))
                cold += 1
            else:
                weights[i] = stored[:dim]
                hits += 1
        self.metrics.serving_lookups += 1
        self.metrics.serving_rows += n
        self.metrics.serving_cold_rows += cold
        return LookupResult(
            weights=weights,
            snapshot_id=snapshot_id,
            hits=hits,
            cold=cold,
            row_snapshots=np.full(n, snapshot_id, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # checkpoint control
    # ------------------------------------------------------------------

    def request_checkpoint(self, batch_id: int | None = None) -> int:
        """Queue a checkpoint (manual trigger, Figure 5 right).

        Defaults to the latest batch whose updates this node has seen.

        Raises:
            CheckpointError: nothing has been trained yet.
        """
        # Buffered (un-folded) gradients must be part of the snapshot:
        # fold them now so the checkpoint is batch-consistent even when
        # the quorum never completed (stragglers, dead workers).
        self.flush_aggregation()
        if batch_id is None:
            batch_id = self.latest_completed_batch
        if batch_id < 0:
            raise CheckpointError("no completed batch to checkpoint")
        self.coordinator.request(batch_id)
        return batch_id

    def barrier_checkpoint(self, batch_id: int | None = None) -> int:
        """Request a checkpoint and force it to complete synchronously.

        Unlike the opportunistic in-pipeline completion, this flushes
        the cache — the behaviour of a clean shutdown / final epoch
        checkpoint.
        """
        requested = self.request_checkpoint(batch_id)
        self.cache.complete_pending_checkpoints()
        return requested

    def complete_pending_checkpoints(self) -> None:
        """Force queued checkpoints to complete (flushes the cache)."""
        self.cache.complete_pending_checkpoints()

    def set_external_barrier(self, batch_id: int | None) -> None:
        """Pin version retention to a cluster-wide barrier (see
        :meth:`CheckpointCoordinator.set_external_barrier`)."""
        self.coordinator.set_external_barrier(batch_id)

    def seal_at(self, batch_id: int) -> None:
        """Declare this node durably consistent at ``batch_id``.

        Used when a node's content was installed wholesale from outside
        the training path — a migration transfer (the ``seal`` step in
        :mod:`repro.core.migration`) or a replica rebuild
        (:meth:`repro.core.replication.ReplicatedPSNode.finish_rebuild`):
        the ingested versions ARE the checkpoint, so the store's durable
        checkpoint id, the coordinator's completed watermark and the
        trained-batch high-water mark all jump to ``batch_id`` at once.
        """
        self.store.set_checkpointed_batch_id(batch_id)
        self.coordinator.last_completed = batch_id
        self.coordinator._sync_barriers()
        self.latest_completed_batch = batch_id

    def set_root_field(self, field: str, value) -> None:
        """Durably write one named field of the pool root (atomic).

        Exists so cluster-level facts stored in a pool root — the
        committed ring word on the coordinator node — go through the
        node, letting :class:`~repro.core.replication.ReplicatedPSNode`
        mirror the write onto the backup's pool too (a promoted backup
        must still know the committed ring epoch after a fault).
        """
        self.pool.root.set(field, value)

    # ------------------------------------------------------------------
    # shard migration (repro.core.migration)
    # ------------------------------------------------------------------

    def owned_keys(self) -> list[int]:
        """Every key this shard currently holds (any tier)."""
        return list(self.cache.index.keys())

    def export_entries(
        self, keys
    ) -> list[tuple[int, list[tuple[int, np.ndarray | None]]]]:
        """Read all retained durable versions of ``keys`` for transfer.

        Must be called after a barrier checkpoint (``barrier_checkpoint``)
        so the store's newest version of every key equals its live
        state. Returns ``[(key, [(batch_id, stored), ...]), ...]`` where
        ``stored`` is the packed weights+optimizer-state array (None in
        metadata-only mode).
        """
        out: list[tuple[int, list[tuple[int, np.ndarray | None]]]] = []
        for key in keys:
            versions: list[tuple[int, np.ndarray | None]] = []
            for batch_id in self.store.versions_of(key):
                stored = self.pool.read(("entry", key, batch_id))
                versions.append((batch_id, stored))
            out.append((key, versions))
        return out

    def ingest_entries(
        self, entries: list[tuple[int, list[tuple[int, np.ndarray | None]]]]
    ) -> int:
        """Adopt transferred entries as PMem-resident keys.

        Idempotent: a key that already exists (a retried transfer after
        a partial earlier attempt) is dropped and re-ingested, so the
        result is always exactly the sender's versions. Returns the
        number of keys ingested.
        """
        ingested = 0
        for key, versions in entries:
            if not versions:
                continue
            existing = self.cache.index.find(key)
            if existing is not None:
                self._drop_key(existing)
            for batch_id, stored in versions:
                self.store.ingest(key, batch_id, stored)
            entry = EmbeddingEntry(key, version=max(b for b, __ in versions))
            entry.location = Location.PMEM
            self.cache.index.insert(entry)
            ingested += 1
        return ingested

    def drop_keys(self, keys) -> int:
        """Relinquish ownership: remove ``keys`` from every tier.

        Called on the source shard after the ring epoch has committed
        (end of the dual-ownership window). Unknown keys are ignored so
        the call is idempotent under RPC retry. Returns keys dropped.
        """
        dropped = 0
        for key in keys:
            entry = self.cache.index.find(key)
            if entry is None:
                continue
            self._drop_key(entry)
            dropped += 1
        return dropped

    def _drop_key(self, entry) -> None:
        # drop_entry clears every cache structure (LRU link, residency
        # maps, arena row, index handle) so the vectorized fast paths
        # can never resolve a departed key.
        self.cache.drop_entry(entry)
        self.store.drop_key(entry.key)

    # ------------------------------------------------------------------
    # failure simulation
    # ------------------------------------------------------------------

    def crash(self) -> PmemPool:
        """Kill the node process; only the PMem pool survives.

        Returns the pool so the caller can hand it to
        :func:`repro.core.recovery.recover_node`.
        """
        self.tracer.instant(
            "node.crash", track="failure", node=self.node_id,
            entries=self.num_entries,
        )
        self.pool.crash()
        return self.pool

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Distinct keys this node holds (cached or persistent)."""
        return len(self.cache.index)

    def read_weights(self, key: int) -> np.ndarray:
        """Live weights of one key (testing/inspection)."""
        return self.cache.read_current_weights(key)

    def state_snapshot(self) -> dict[int, np.ndarray]:
        """Copy of every key's live weights (reference-model testing)."""
        return {
            entry.key: np.array(self.cache.read_current_weights(entry.key), copy=True)
            for entry in self.cache.index.entries()
        }

    def _make_initializer(self):
        scale = self.server_config.initializer_scale
        dim = self.server_config.embedding_dim
        seed = self.server_config.seed

        def initialize(key: int) -> np.ndarray:
            rng = np.random.default_rng((seed, key))
            return rng.uniform(-scale, scale, dim).astype(np.float32)

        return initialize
