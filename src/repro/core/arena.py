"""Contiguous float32 embedding arena backing the DRAM cache.

The hot path of a parameter server is memory-bandwidth-bound: a pull is
a gather of ``n`` rows, a push is a scatter of ``n`` aggregated
gradients. Per-entry Python objects holding their own little numpy
arrays defeat that — every access pays interpreter and allocator
overhead instead of one contiguous memcpy.

The arena stores every DRAM-resident entry's payload as one row of a
single ``(capacity, dim + state_width)`` float32 matrix: weights in
``[:dim]``, optimizer state in ``[dim:]``. The cache keeps a
``key -> row`` map next to its hash index, so

* a batched pull is one fancy-index gather ``data[rows, :dim]``,
* a batched push gathers ``data[rows]``, applies the vectorized
  optimizer, and scatters the block back, and
* flushing an entry hands the store its packed row view directly (the
  pool copies on write).

Rows are recycled through a free list on eviction. When the arena is
full it doubles (amortized O(1)); growth replaces the backing matrix,
which invalidates any live row *views* — the cache watches
:attr:`generation` and rebinds the views of resident entries after a
growth (see ``PipelinedCache._arena_alloc``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServerError

INITIAL_ROWS = 256
"""Starting row count; the arena doubles on demand up to the cache's
working set, so a huge configured capacity costs no upfront memory."""


class EmbeddingArena:
    """Slab of packed embedding rows (weights + optimizer state).

    Args:
        dim: embedding dimension (floats of weights per row).
        state_width: floats of optimizer state per row (0 when the
            optimizer is stateless).
        initial_rows: starting capacity; grows by doubling.
    """

    def __init__(self, dim: int, state_width: int, initial_rows: int = INITIAL_ROWS):
        if dim <= 0:
            raise ServerError(f"dim must be positive, got {dim}")
        if state_width < 0:
            raise ServerError(f"state_width must be >= 0, got {state_width}")
        if initial_rows <= 0:
            raise ServerError(f"initial_rows must be positive, got {initial_rows}")
        self.dim = dim
        self.state_width = state_width
        self.row_width = dim + state_width
        self.data = np.zeros((initial_rows, self.row_width), dtype=np.float32)
        # Popping from the end hands out low rows first.
        self._free: list[int] = list(range(initial_rows - 1, -1, -1))
        self.generation = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def alloc(self) -> int:
        """Reserve a row; grows (bumping :attr:`generation`) when full."""
        if not self._free:
            self._grow()
        return self._free.pop()

    def free(self, row: int) -> None:
        """Return ``row`` to the free list (its contents are garbage now)."""
        if row < 0 or row >= len(self.data):
            raise ServerError(f"invalid arena row {row}")
        self._free.append(row)

    def _grow(self) -> None:
        old = self.data
        new_capacity = len(old) * 2
        grown = np.zeros((new_capacity, self.row_width), dtype=np.float32)
        grown[: len(old)] = old
        self.data = grown
        self._free.extend(range(new_capacity - 1, len(old) - 1, -1))
        self.generation += 1

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def row_view(self, row: int) -> np.ndarray:
        """The packed ``weights || state`` view of one row."""
        return self.data[row]

    def weights_view(self, row: int) -> np.ndarray:
        """The weights slice of one row (a live view)."""
        return self.data[row, : self.dim]

    def state_view(self, row: int) -> np.ndarray | None:
        """The optimizer-state slice of one row, or None when stateless."""
        if self.state_width == 0:
            return None
        return self.data[row, self.dim :]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return len(self.data)

    def __len__(self) -> int:
        """Rows currently allocated."""
        return len(self.data) - len(self._free)
