"""End-to-end failure loops: repeated crashes + recoveries mid-training."""

import numpy as np
import pytest

from repro.config import CacheConfig, ServerConfig
from repro.core.optimizers import PSAdagrad
from repro.core.server import OpenEmbeddingServer
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam
from repro.dlrm.trainer import SynchronousTrainer
from repro.failure.injection import CrashSchedule, FailureInjector

FIELDS, DIM = 5, 8
TOTAL_BATCHES = 30
CKPT_EVERY = 4


def build_trainer(dataset, dense_checkpoints=None):
    server_config = ServerConfig(
        num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=5
    )
    cache_config = CacheConfig(capacity_bytes=12 * DIM * 4 * 2)
    server = OpenEmbeddingServer(server_config, cache_config, PSAdagrad(lr=0.05))
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=5)
    trainer = SynchronousTrainer(
        server,
        model,
        dataset,
        num_workers=2,
        batch_size=16,
        dense_optimizer=Adam(1e-2),
        checkpoint_every=CKPT_EVERY,
    )
    if dense_checkpoints is not None:
        trainer.dense_checkpoints = dense_checkpoints
    return trainer, server_config, cache_config


def recover_trainer(survivors, dataset):
    pools, __, dense = survivors
    server_config = ServerConfig(
        num_nodes=2, embedding_dim=DIM, pmem_capacity_bytes=1 << 26, seed=5
    )
    cache_config = CacheConfig(capacity_bytes=12 * DIM * 4 * 2)
    model = DeepFM(FIELDS, DIM, hidden=(16,), use_first_order=False, seed=5)
    return SynchronousTrainer.recover(
        pools,
        dense,
        model=model,
        dataset=dataset,
        server_config=server_config,
        cache_config=cache_config,
        ps_optimizer=PSAdagrad(lr=0.05),
        num_workers=2,
        batch_size=16,
        dense_optimizer=Adam(1e-2),
        checkpoint_every=CKPT_EVERY,
    )


def run_with_failures(schedule: CrashSchedule, dataset):
    """Train to TOTAL_BATCHES, crashing and recovering per schedule."""
    injector = FailureInjector(schedule)
    trainer, *_ = build_trainer(dataset)
    recoveries = 0
    while trainer.next_batch < TOTAL_BATCHES:
        if injector.should_crash(trainer.next_batch):
            if trainer.server.global_completed_checkpoint < 0:
                # Crash before any completed checkpoint: a real system
                # restarts from scratch; so do we.
                trainer, *_ = build_trainer(
                    dataset, dense_checkpoints=trainer.dense_checkpoints
                )
                trainer.dense_checkpoints.snapshots.clear()
                recoveries += 1
                continue
            survivors = trainer.crash()
            trainer = recover_trainer(survivors, dataset)
            recoveries += 1
            continue
        trainer.step()
    return trainer, recoveries


@pytest.fixture
def dataset():
    return CriteoSynthetic(num_fields=FIELDS, vocab_per_field=80, seed=4)


class TestFailureLoops:
    def test_single_crash_matches_reference(self, dataset):
        reference, *_ = build_trainer(dataset)
        reference.train(TOTAL_BATCHES)
        ref_state = reference.server.state_snapshot()

        crashed, recoveries = run_with_failures(CrashSchedule((17,)), dataset)
        assert recoveries == 1
        got = crashed.server.state_snapshot()
        assert set(got) == set(ref_state)
        for key in ref_state:
            assert np.array_equal(got[key], ref_state[key])

    def test_multiple_crashes_still_converge_to_reference(self, dataset):
        reference, *_ = build_trainer(dataset)
        reference.train(TOTAL_BATCHES)
        ref_state = reference.server.state_snapshot()
        ref_dense = reference.model.dense_state()

        crashed, recoveries = run_with_failures(CrashSchedule((9, 18, 25)), dataset)
        assert recoveries == 3
        got = crashed.server.state_snapshot()
        for key in ref_state:
            assert np.array_equal(got[key], ref_state[key])
        for a, b in zip(ref_dense, crashed.model.dense_state()):
            assert np.array_equal(a, b)

    def test_crash_before_first_checkpoint_restarts_clean(self, dataset):
        trainer, recoveries = run_with_failures(CrashSchedule((2,)), dataset)
        assert recoveries == 1
        assert trainer.next_batch == TOTAL_BATCHES

    def test_back_to_back_crashes(self, dataset):
        """A crash immediately after recovery (no progress in between)
        must recover to the same checkpoint again."""
        trainer, *_ = build_trainer(dataset)
        trainer.train(10)
        survivors = trainer.crash()
        first = recover_trainer(survivors, dataset)
        resume_at = first.next_batch
        survivors2 = first.crash()
        second = recover_trainer(survivors2, dataset)
        assert second.next_batch == resume_at

    def test_poisson_failure_storm(self, dataset):
        """Frequent memoryless failures: training still reaches the end
        and the model state matches the uninterrupted reference."""
        reference, *_ = build_trainer(dataset)
        reference.train(TOTAL_BATCHES)
        ref_state = reference.server.state_snapshot()

        schedule = CrashSchedule.poisson(TOTAL_BATCHES, mttf_batches=8, seed=3)
        trainer, recoveries = run_with_failures(schedule, dataset)
        assert trainer.next_batch == TOTAL_BATCHES
        got = trainer.server.state_snapshot()
        for key in ref_state:
            assert np.array_equal(got[key], ref_state[key])
