"""EmbeddingCollection: multi-table coordination and recovery."""

import numpy as np
import pytest

from repro.config import CacheConfig
from repro.core.optimizers import PSAdagrad
from repro.dlrm.collection import EmbeddingCollection, TableSpec
from repro.errors import ConfigError, RecoveryError


def specs():
    cache = CacheConfig(capacity_bytes=16 << 10)
    return {
        "features": TableSpec(
            dim=8, num_nodes=2, cache=cache, pmem_capacity_bytes=1 << 24, seed=5
        ),
        "first_order": TableSpec(
            dim=1, num_nodes=1, cache=cache, pmem_capacity_bytes=1 << 22, seed=5
        ),
    }


@pytest.fixture
def collection():
    return EmbeddingCollection(specs())


def train_batch(collection, batch_id, keys):
    key_matrix = np.asarray(keys).reshape(1, -1)
    features = collection.pull("features", key_matrix, batch_id)
    first = collection.pull("first_order", key_matrix, batch_id)
    collection.maintain(batch_id)
    collection.push(
        "features", key_matrix, np.ones_like(features) * 0.1, batch_id
    )
    collection.push(
        "first_order", key_matrix, np.ones_like(first) * 0.1, batch_id
    )


class TestBasics:
    def test_tables_have_independent_dims(self, collection):
        keys = np.array([[1, 2, 3]])
        assert collection.pull("features", keys, 0).shape == (1, 3, 8)
        assert collection.pull("first_order", keys, 0).shape == (1, 3, 1)

    def test_unknown_table(self, collection):
        with pytest.raises(KeyError):
            collection.pull("nope", np.array([[1]]), 0)

    def test_empty_collection_rejected(self):
        with pytest.raises(ConfigError):
            EmbeddingCollection({})

    def test_table_names(self, collection):
        assert collection.table_names() == ["features", "first_order"]


class TestCoordinatedCheckpoints:
    def test_barrier_checkpoint_completes_all_tables(self, collection):
        train_batch(collection, 0, [1, 2, 3])
        collection.barrier_checkpoint(0)
        assert collection.global_completed_checkpoint == 0

    def test_global_checkpoint_is_cross_table_min(self, collection):
        train_batch(collection, 0, [1, 2])
        collection.barrier_checkpoint(0)
        train_batch(collection, 1, [1, 2])
        # Only one table completes a newer checkpoint.
        collection.servers["features"].barrier_checkpoint(1)
        assert collection.global_completed_checkpoint == 0

    def test_crash_recover_roundtrip(self, collection):
        keys = list(range(10))
        train_batch(collection, 0, keys)
        collection.barrier_checkpoint(0)
        expected = collection.state_snapshot()
        train_batch(collection, 1, keys)  # past the checkpoint
        pools = collection.crash()
        recovered = EmbeddingCollection.recover(pools, specs())
        got = recovered.state_snapshot()
        for table in expected:
            assert set(got[table]) == set(expected[table])
            for key, weights in expected[table].items():
                assert np.array_equal(got[table][key], weights)

    def test_recover_to_cross_table_minimum(self, collection):
        """A table that raced ahead still recovers to the common batch."""
        keys = list(range(6))
        train_batch(collection, 0, keys)
        collection.barrier_checkpoint(0)
        snapshot_at_0 = collection.state_snapshot()
        train_batch(collection, 1, keys)
        collection.servers["features"].barrier_checkpoint(1)
        collection._sync_collection_barriers()
        train_batch(collection, 2, keys)
        pools = collection.crash()
        recovered = EmbeddingCollection.recover(pools, specs())
        assert recovered.global_completed_checkpoint == 0
        got = recovered.state_snapshot()
        for table in snapshot_at_0:
            for key, weights in snapshot_at_0[table].items():
                assert np.array_equal(got[table][key], weights)

    def test_recover_without_checkpoint_fails(self, collection):
        train_batch(collection, 0, [1])
        pools = collection.crash()
        with pytest.raises(RecoveryError):
            EmbeddingCollection.recover(pools, specs())

    def test_recover_table_mismatch(self, collection):
        train_batch(collection, 0, [1])
        collection.barrier_checkpoint(0)
        pools = collection.crash()
        del pools["first_order"]
        with pytest.raises(RecoveryError):
            EmbeddingCollection.recover(pools, specs())


class TestOptimizerPerTable:
    def test_different_optimizers(self):
        cache = CacheConfig(capacity_bytes=16 << 10)
        collection = EmbeddingCollection(
            {
                "adagrad": TableSpec(
                    dim=4, cache=cache, optimizer=PSAdagrad(lr=0.1),
                    pmem_capacity_bytes=1 << 22,
                ),
                "sgd": TableSpec(dim=4, cache=cache, pmem_capacity_bytes=1 << 22),
            }
        )
        keys = np.array([[1]])
        a0 = collection.pull("adagrad", keys, 0).copy()
        s0 = collection.pull("sgd", keys, 0).copy()
        collection.maintain(0)
        grads = np.ones((1, 1, 4), dtype=np.float32)
        collection.push("adagrad", keys, grads, 0)
        collection.push("sgd", keys, grads, 0)
        a1 = collection.pull("adagrad", keys, 1)
        s1 = collection.pull("sgd", keys, 1)
        # Different rules -> different step sizes on identical grads.
        assert not np.allclose(a0 - a1, s0 - s1)
