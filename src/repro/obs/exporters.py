"""Exporters: Prometheus text, JSON snapshot, Chrome ``trace_event``.

Three machine-readable views of one run:

* :func:`to_prometheus` — the text exposition format every scrape stack
  ingests; histograms become cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count`` (and quantile gauges for humans reading the raw
  file).
* :func:`to_json_snapshot` — a self-describing dict (schema
  ``repro-metrics-v1``) that ``repro metrics`` pretty-prints and tests
  diff.
* :func:`to_chrome_trace` — Chrome ``trace_event`` JSON: load the file
  in Perfetto (or ``chrome://tracing``) and the prefetch/maintenance
  window visibly overlaps the GPU-compute span on its own track,
  exactly the paper's Figure 7 timeline. Tracer *tracks* map to
  threads; context-manager nesting is preserved by interval containment.

All timestamps are exported in microseconds (the trace_event unit);
registry metrics are unit-tagged in their names per Prometheus
convention.
"""

from __future__ import annotations

import json
import math

from repro.obs.histogram import Histogram
from repro.obs.registry import Counter, Gauge, MetricsRegistry
from repro.obs.tracer import Tracer

METRICS_SCHEMA = "repro-metrics-v1"
TRACE_SCHEMA = "repro-trace-v1"


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{str(val).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for key, val in sorted(merged.items())
    )
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Serialize a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for name, labels, metric in registry.items():
        if isinstance(metric, Counter):
            if name not in seen_types:
                lines.append(f"# TYPE {name} counter")
                seen_types.add(name)
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(metric.value)}")
        elif isinstance(metric, Histogram):
            if name not in seen_types:
                lines.append(f"# TYPE {name} histogram")
                seen_types.add(name)
            for upper, cumulative in metric.cumulative_buckets():
                lines.append(
                    f"{name}_bucket"
                    f"{_fmt_labels(labels, {'le': _fmt_value(upper)})}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_fmt_labels(labels, {'le': '+Inf'})} {metric.count}"
            )
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(metric.sum)}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f"{name}_quantile"
                    f"{_fmt_labels(labels, {'quantile': _fmt_value(q)})}"
                    f" {_fmt_value(metric.quantile(q))}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------


def to_json_snapshot(registry: MetricsRegistry) -> dict:
    """Self-describing dict snapshot of every registry metric."""
    metrics = []
    for name, labels, metric in registry.items():
        entry: dict = {"name": name, "labels": labels}
        if isinstance(metric, Counter):
            entry["type"] = "counter"
            entry["value"] = metric.value
        elif isinstance(metric, Gauge):
            entry["type"] = "gauge"
            entry["value"] = metric.value
        elif isinstance(metric, Histogram):
            entry["type"] = "histogram"
            entry.update(metric.summary())
            entry["buckets"] = [
                [upper, cumulative]
                for upper, cumulative in metric.cumulative_buckets()
            ]
        metrics.append(entry)
    return {"schema": METRICS_SCHEMA, "metrics": metrics}


def write_metrics(registry: MetricsRegistry, path: str) -> str:
    """Write a registry export; format chosen by extension.

    ``.json`` gets the JSON snapshot, anything else (``.prom``,
    ``.txt``, ...) the Prometheus text format. Returns the format used.
    """
    if str(path).endswith(".json"):
        with open(path, "w") as fh:
            json.dump(to_json_snapshot(registry), fh, indent=1)
        return "json"
    with open(path, "w") as fh:
        fh.write(to_prometheus(registry))
    return "prometheus"


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------


def to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """Convert a tracer's spans/instants to Chrome ``trace_event`` JSON.

    Tracks become threads (deterministic tid by first appearance), with
    ``thread_name`` metadata so Perfetto labels them. Spans are ``"X"``
    complete events; instants are ``"i"``; attributes travel in
    ``args``. Timestamps are microseconds.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_of(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tids[track],
                    "args": {"name": track},
                }
            )
        return tids[track]

    events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    )
    for span in tracer.closed_spans():
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.track,
                "pid": 0,
                "tid": tid_of(span.track),
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": dict(span.attrs),
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": instant.name,
                "cat": instant.track,
                "pid": 0,
                "tid": tid_of(instant.track),
                "ts": instant.timestamp * 1e6,
                "args": dict(instant.attrs),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "dropped_events": tracer.dropped},
    }


def write_chrome_trace(tracer: Tracer, path: str, process_name: str = "repro") -> int:
    """Dump the Chrome trace to ``path``; returns the event count."""
    trace = to_chrome_trace(tracer, process_name)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# human rendering (the `repro metrics` subcommand)
# ----------------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    if value == 0:
        return "0"
    if value < 1e-6:
        return f"{value * 1e9:.1f}ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def render_snapshot(snapshot: dict) -> str:
    """Pretty-print a :func:`to_json_snapshot` dict.

    Renders (1) the histogram table with p50/p95/p99/max, (2) the
    per-layer simulated-time breakdown from ``repro_phase_seconds_total``
    counters, and (3) the remaining counters/gauges.
    """
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"not a {METRICS_SCHEMA} snapshot: schema={snapshot.get('schema')!r}"
        )
    metrics = snapshot.get("metrics", [])
    lines: list[str] = []

    def label_str(entry: dict) -> str:
        labels = entry.get("labels") or {}
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"

    hists = [m for m in metrics if m.get("type") == "histogram"]
    if hists:
        lines.append("histograms")
        header = (
            f"  {'name':<44} {'count':>8} {'p50':>10} {'p95':>10} "
            f"{'p99':>10} {'max':>10}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for m in hists:
            lines.append(
                f"  {m['name'] + label_str(m):<44} {m['count']:>8} "
                f"{_fmt_seconds(m['p50']):>10} {_fmt_seconds(m['p95']):>10} "
                f"{_fmt_seconds(m['p99']):>10} {_fmt_seconds(m['max']):>10}"
            )

    phases = [
        m
        for m in metrics
        if m.get("type") == "counter"
        and m["name"] == "repro_phase_seconds_total"
    ]
    if phases:
        total = sum(m["value"] for m in phases) or 1.0
        lines.append("")
        lines.append("per-layer time breakdown")
        for m in sorted(phases, key=lambda m: -m["value"]):
            phase = (m.get("labels") or {}).get("phase", "?")
            share = m["value"] / total
            bar = "#" * max(1, round(share * 40)) if m["value"] else ""
            lines.append(
                f"  {phase:<20} {_fmt_seconds(m['value']):>10}  "
                f"{share:>6.1%}  {bar}"
            )

    scalars = [
        m
        for m in metrics
        if m.get("type") in ("counter", "gauge")
        and m["name"] != "repro_phase_seconds_total"
    ]
    if scalars:
        lines.append("")
        lines.append("counters / gauges")
        for m in scalars:
            value = m["value"]
            rendered = (
                f"{value:.6g}" if isinstance(value, float) and not float(value).is_integer()
                else f"{int(value)}"
            )
            lines.append(f"  {m['name'] + label_str(m):<52} {rendered:>14}")
    return "\n".join(lines)
