"""PS-side optimizers for sparse embedding updates.

In a DLRM parameter server the optimizer for the sparse features runs on
the PS: workers push raw gradients and the PS applies the update rule
(the paper's ``UpdateWeights`` operator). SGD is stateless; Adagrad
keeps a per-entry accumulator that must live, persist and recover with
the entry, so entries carry an ``opt_state`` vector of
``optimizer.state_width(dim)`` floats.

Both rules are elementwise, so :meth:`PSOptimizer.apply_batch` applies a
whole aggregated batch — ``(n, dim)`` weights/state/gradients — in one
vectorized call that is bitwise-identical to ``n`` single-row
:meth:`PSOptimizer.apply` calls. The cache's fast path depends on that
equivalence.

Dtype discipline: embedding state is float32 end to end. A float64
gradient slipping in used to make ``state += grad * grad`` compute in
float64 and truncate back on store — silently different results from
the float32 path. All entry points now coerce gradients to float32
first, so the arithmetic (and therefore the trained bits) never depends
on the caller's gradient dtype.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigError


def coerce_f32(grad: np.ndarray) -> np.ndarray:
    """Gradient as float32 (no copy when already float32)."""
    grad = np.asarray(grad)
    if grad.dtype != np.float32:
        return grad.astype(np.float32)
    return grad


class PSOptimizer(abc.ABC):
    """Update rule applied by the PS when gradients are pushed."""

    @abc.abstractmethod
    def state_width(self, dim: int) -> int:
        """Floats of per-entry state for a ``dim``-wide embedding."""

    @abc.abstractmethod
    def init_state(self, dim: int) -> np.ndarray | None:
        """Fresh per-entry state (None when stateless)."""

    @abc.abstractmethod
    def apply(
        self, weights: np.ndarray, state: np.ndarray | None, grad: np.ndarray
    ) -> None:
        """Apply one aggregated gradient in place to ``weights``/``state``."""

    def apply_batch(
        self, weights: np.ndarray, state: np.ndarray | None, grads: np.ndarray
    ) -> None:
        """Apply ``n`` aggregated gradients in place to ``(n, dim)`` blocks.

        Must be bitwise-identical to ``n`` row-wise :meth:`apply` calls;
        the default falls back to exactly that.
        """
        for i in range(len(weights)):
            self.apply(weights[i], None if state is None else state[i], grads[i])


class PSSGD(PSOptimizer):
    """Plain SGD: ``w -= lr * g``. Stateless."""

    def __init__(self, lr: float = 0.01):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def state_width(self, dim: int) -> int:
        return 0

    def init_state(self, dim: int) -> np.ndarray | None:
        return None

    def apply(
        self, weights: np.ndarray, state: np.ndarray | None, grad: np.ndarray
    ) -> None:
        weights -= self.lr * coerce_f32(grad)

    def apply_batch(
        self, weights: np.ndarray, state: np.ndarray | None, grads: np.ndarray
    ) -> None:
        weights -= self.lr * coerce_f32(grads)

    def __repr__(self) -> str:
        return f"PSSGD(lr={self.lr})"


class PSAdagrad(PSOptimizer):
    """Adagrad: per-coordinate adaptive rate with a persistent accumulator.

    ``acc += g^2; w -= lr * g / (sqrt(acc) + eps)``

    The accumulator is entry state: it is cached, flushed and
    checkpointed together with the weights, so recovery restores the
    optimizer exactly.
    """

    def __init__(
        self, lr: float = 0.05, eps: float = 1e-8, initial_accumulator: float = 0.1
    ):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if eps <= 0:
            raise ConfigError(f"eps must be positive, got {eps}")
        if initial_accumulator < 0:
            raise ConfigError("initial_accumulator must be non-negative")
        self.lr = lr
        self.eps = eps
        self.initial_accumulator = initial_accumulator

    def state_width(self, dim: int) -> int:
        return dim

    def init_state(self, dim: int) -> np.ndarray | None:
        return np.full(dim, self.initial_accumulator, dtype=np.float32)

    def apply(
        self, weights: np.ndarray, state: np.ndarray | None, grad: np.ndarray
    ) -> None:
        assert state is not None, "Adagrad requires per-entry state"
        grad = coerce_f32(grad)
        state += grad * grad
        weights -= self.lr * grad / (np.sqrt(state) + self.eps)

    def apply_batch(
        self, weights: np.ndarray, state: np.ndarray | None, grads: np.ndarray
    ) -> None:
        assert state is not None, "Adagrad requires per-entry state"
        grads = coerce_f32(grads)
        # Same arithmetic as ``apply`` with the temporaries reused:
        # every op is elementwise, so the bits are identical.
        sq = np.multiply(grads, grads)
        state += sq
        np.sqrt(state, out=sq)
        sq += self.eps
        step = np.multiply(grads, self.lr)
        step /= sq
        weights -= step

    def __repr__(self) -> str:
        return f"PSAdagrad(lr={self.lr})"
