"""Asynchronous DLRM training — first-class bounded-staleness mode.

Section II describes the two synchronization patterns: synchronous
(every worker waits at batch boundaries — the paper's choice, better
convergence) and asynchronous (workers never wait — higher throughput,
staler gradients). This module makes the asynchronous pattern a
defensible first-class mode instead of a toy:

* each worker pulls weights, computes gradients, and pushes them
  ``staleness`` scheduler steps later — by which time other workers'
  updates have already landed (the classic stale-gradient effect);
* with ``track_progress`` on, every pull carries the worker's identity
  and progress so the PS enforces *bounded* staleness: a worker more
  than ``k`` batches behind the slowest other admitted worker gets a
  typed :class:`~repro.errors.StalenessError` and must fast-forward
  (abandon its stale cursor, re-sync progress) before it may read
  weights again;
* a :class:`~repro.failure.injection.WorkerFaultProfile` per worker
  injects the hostile-worker taxonomy — stragglers, delayed and
  duplicated pushes, Byzantine gradients — all seeded, so a chaos run
  is exactly reproducible; the PS-side
  :class:`~repro.core.aggregators.AggregationBuffer` is the defense;
* there is no global batch boundary, so checkpoints taken without
  quiescing are NOT batch-consistent (the asynchronous-checkpoint
  caveat the paper cites when motivating synchronous checkpoints) —
  taking one now warns and counts
  ``repro_async_unquiesced_checkpoints_total``.

The scheduler is deterministic (round-robin), so runs are reproducible
and tests can compare against synchronous training exactly.
"""

from __future__ import annotations

import inspect
import warnings
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.config import PrefetchConfig
from repro.core.backend import TrainBackend, check_backend
from repro.dlrm.criteo import CriteoSynthetic
from repro.dlrm.deepfm import DeepFM
from repro.dlrm.optimizers import Adam, DenseOptimizer
from repro.dlrm.prefetch import PrefetchPipeline
from repro.errors import ConfigError, StalenessError
from repro.failure.injection import WorkerFaultProfile
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulation.clock import SimClock


@dataclass
class _PendingWork:
    """A computed gradient waiting out its staleness delay."""

    worker: int
    step_computed: int
    keys: np.ndarray
    embedding_grads: np.ndarray
    dense_grads: list[np.ndarray]
    loss: float
    seq: int = 0  # push identity; 0 = anonymous (no dedup)
    delay_extra: int = 0  # injected extra staleness (delayed push)
    duplicate: bool = False  # injected duplicated push (same seq)
    byzantine: bool = False  # embedding grads were corrupted


@dataclass
class AsyncRunStats:
    """Fault-injection and admission accounting for one trainer."""

    steps: int = 0
    straggle_skips: int = 0
    staleness_rejects: int = 0
    skipped_batches: int = 0
    delayed_pushes: int = 0
    duplicate_pushes: int = 0
    byzantine_pushes: int = 0
    unquiesced_checkpoints: int = 0
    rejects_by_worker: dict = field(default_factory=dict)


class AsynchronousTrainer:
    """Round-robin asynchronous training against a shared PS.

    Args:
        backend: the embedding parameter server — anything implementing
            the :class:`~repro.core.backend.TrainBackend` protocol.
            ``server=`` is accepted as a deprecated alias.
        model: the dense DeepFM (no first-order term).
        dataset: deterministic batch source; worker ``w`` consumes the
            global batches ``w, w + W, w + 2W, ...`` — at scheduler
            step ``s`` the computing worker trains global batch ``s``.
        num_workers: concurrent workers.
        batch_size: samples per worker step.
        staleness: scheduler steps between a worker computing gradients
            and those gradients being applied. 0 applies immediately
            (still asynchronous: no cross-worker averaging or barrier).
        dense_optimizer: optimizer for the shared (hogwild-style) MLP.
        prefetch: optional lookahead prefetch configuration; because
            the round-robin schedule is deterministic, future scheduler
            steps' key sets are peekable exactly as in the synchronous
            trainer. Incompatible with ``track_progress`` / fault
            injection (the pipeline's pulls are anonymous).
        clock: optional simulated clock; each scheduler slot (compute
            or straggle stall) advances it by ``gpu_batch_time_s``.
        gpu_batch_time_s: simulated per-step compute time.
        track_progress: send ``(worker_id, progress)`` on every pull
            and ``(worker_id, seq)`` on every push, enabling the PS's
            bounded-staleness admission and robust aggregation. ``None``
            (default) auto-detects: on when the backend has a staleness
            bound or an aggregation buffer configured, or when
            ``worker_faults`` are given; off otherwise (bit-compatible
            with the pre-first-class trainer).
        worker_faults: ``{worker_id: WorkerFaultProfile}`` hostile
            fleet; workers without an entry are honest.
        tracer: span/event sink (``async.*`` spans).
        registry: metrics sink (``repro_async_*`` counters).
    """

    def __init__(
        self,
        backend: TrainBackend | None = None,
        model: DeepFM | None = None,
        dataset: CriteoSynthetic | None = None,
        num_workers: int = 2,
        batch_size: int = 32,
        staleness: int = 1,
        dense_optimizer: DenseOptimizer | None = None,
        *,
        prefetch: PrefetchConfig | None = None,
        clock: SimClock | None = None,
        gpu_batch_time_s: float = 0.0,
        track_progress: bool | None = None,
        worker_faults: dict[int, WorkerFaultProfile] | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        server: TrainBackend | None = None,
    ):
        if server is not None:
            warnings.warn(
                "AsynchronousTrainer(server=...) is deprecated; "
                "pass backend=... (any TrainBackend)",
                DeprecationWarning,
                stacklevel=2,
            )
            if backend is not None:
                raise ConfigError("pass either backend= or server=, not both")
            backend = server
        if backend is None or model is None or dataset is None:
            raise ConfigError("backend, model and dataset are required")
        if num_workers <= 0 or batch_size <= 0:
            raise ConfigError("num_workers and batch_size must be positive")
        if staleness < 0:
            raise ConfigError("staleness must be non-negative")
        if model.use_first_order:
            raise ConfigError("async trainer supports models without first-order")
        self.backend = check_backend(backend, role="train")
        #: Deprecated alias of :attr:`backend`.
        self.server = self.backend
        self.model = model
        self.dataset = dataset
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.staleness = staleness
        self.dense_optimizer = dense_optimizer or Adam()
        self.clock = clock
        self.gpu_batch_time_s = gpu_batch_time_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry
        self.step = 0
        self._next_batch_per_worker = list(range(num_workers))
        self._pending: deque[_PendingWork] = deque()
        self.loss_history: list[float] = []
        self.stats = AsyncRunStats()

        self.worker_faults = dict(worker_faults or {})
        if any(w < 0 or w >= num_workers for w in self.worker_faults):
            raise ConfigError("worker_faults keys must be valid worker ids")
        self._fault_rngs = {
            w: profile.rng_for(w) for w, profile in self.worker_faults.items()
        }
        self._sleep_until = [0] * num_workers
        #: Highest batch_id any push has carried — the checkpoint target
        #: must cover it or recovery would discard the flushed updates.
        self._last_push_batch = -1
        #: Batches completed per worker — the progress the PS admission
        #: check sees on every pull.
        self._completed = [0] * num_workers
        self._seq = 0

        supports_identity = self._backend_supports_identity(backend)
        if track_progress is None:
            track_progress = bool(self.worker_faults) or (
                supports_identity and self._backend_wants_identity(backend)
            )
        if track_progress and not supports_identity:
            raise ConfigError(
                "track_progress requires a backend whose pull/push accept "
                "worker_id (OpenEmbeddingServer / RemotePSClient)"
            )
        self.track_progress = track_progress

        self.pipeline: PrefetchPipeline | None = None
        if prefetch is not None:
            if self.track_progress:
                raise ConfigError(
                    "prefetch is not supported with track_progress / "
                    "worker_faults: pipeline pulls are anonymous and would "
                    "bypass the bounded-staleness admission check"
                )
            self.pipeline = PrefetchPipeline(
                backend,
                prefetch,
                model.dim,
                # At scheduler step s the computing worker trains global
                # batch s, so the peek function is the step index itself.
                lambda s: self.dataset.batch(self.batch_size, s).keys,
                clock=clock,
                gpu_batch_time_s=gpu_batch_time_s,
            )

    @staticmethod
    def _backend_supports_identity(backend) -> bool:
        """Do pull/push accept the worker-identity keywords?"""
        try:
            pull_params = inspect.signature(backend.pull).parameters
            push_params = inspect.signature(backend.push).parameters
        except (TypeError, ValueError):
            return False
        return "worker_id" in pull_params and "worker_id" in push_params

    @staticmethod
    def _backend_wants_identity(backend) -> bool:
        """Is a staleness bound or aggregation buffer configured?"""
        for node in getattr(backend, "nodes", []) or []:
            controller = getattr(node, "staleness", None)
            if controller is not None and controller.bound is not None:
                return True
            if getattr(node, "aggregation", None) is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def run_steps(self, steps: int) -> list[float]:
        """Run ``steps`` scheduler steps; returns the losses computed.

        A step where the scheduled worker is stalled (straggler
        injection) computes nothing, so the returned list may be
        shorter than ``steps``.
        """
        if self.pipeline is not None:
            self.pipeline.horizon = self.step + steps - 1
        losses = []
        for __ in range(steps):
            losses.extend(self._one_step())
        return losses

    def _one_step(self) -> list[float]:
        """One scheduler step: apply due pushes, then one worker computes."""
        self._apply_due_pushes()
        worker = self.step % self.num_workers
        self.stats.steps += 1
        self._count("repro_async_steps_total")
        if self._stalled(worker):
            # The slot passes unused; simulated time still elapses.
            self.stats.straggle_skips += 1
            self._count("repro_async_straggle_steps_total")
            self._advance_clock()
            self.step += 1
            return []
        loss = self._compute(worker)
        self.step += 1
        return [loss]

    def _stalled(self, worker: int) -> bool:
        """Straggler injection: is this worker asleep for its turn?"""
        profile = self.worker_faults.get(worker)
        if profile is None:
            return False
        if self.step < self._sleep_until[worker]:
            return True
        if profile.straggle_prob > 0 and (
            self._fault_rngs[worker].random() < profile.straggle_prob
        ):
            self._sleep_until[worker] = self.step + profile.straggle_steps
            self.tracer.instant(
                "async.straggle", track="async", worker=worker,
                until=self._sleep_until[worker],
            )
            return True
        return False

    def _compute(self, worker: int) -> float:
        batch_index = self._next_batch_per_worker[worker]
        self._next_batch_per_worker[worker] += self.num_workers
        batch = self.dataset.batch(self.batch_size, batch_index)
        with self.tracer.span(
            "async.step", track="async", worker=worker, batch=batch_index
        ):
            if self.pipeline is not None:
                # run_overlap advances the shared clock itself.
                self.pipeline.begin_batch(self.step, batch.keys)
                embeddings = self.pipeline.gather(batch.keys)
                self.pipeline.run_overlap(self.step)
            else:
                flat_keys = batch.keys.reshape(-1).tolist()
                pulled = self._pull(worker, flat_keys)
                self.backend.maintain(self.step)
                embeddings = pulled.weights.reshape(
                    self.batch_size, self.model.num_fields, self.model.dim
                )
                self._advance_clock()
            self.model.zero_grad()
            grads = self.model.train_batch(embeddings, batch.labels)
            self._enqueue_push(worker, batch, grads)
        self._completed[worker] += 1
        self.loss_history.append(grads.loss)
        if self.staleness == 0:
            self._apply_due_pushes()
        if self.pipeline is not None:
            self.pipeline.end_batch(self.step)
        return grads.loss

    def _pull(self, worker: int, flat_keys):
        """One admission-checked pull; fast-forwards on rejection.

        A :class:`StalenessError` means this worker's basis is too old:
        it abandons the batches it fell behind on (they are *skipped*,
        not retrained — the bounded-staleness contract trades their
        contribution for freshness), re-syncs its progress to the
        fleet's maximum, and retries once.
        """
        if not self.track_progress:
            return self.backend.pull(flat_keys, self.step)
        try:
            return self.backend.pull(
                flat_keys, self.step,
                worker_id=worker, progress=self._completed[worker],
            )
        except StalenessError as exc:
            self.stats.staleness_rejects += 1
            self.stats.rejects_by_worker[worker] = (
                self.stats.rejects_by_worker.get(worker, 0) + 1
            )
            self._count("repro_async_staleness_rejects_total")
            fleet_max = max(self._completed)
            skipped = max(0, fleet_max - self._completed[worker])
            self.stats.skipped_batches += skipped
            self._count("repro_async_skipped_batches_total", skipped)
            self.tracer.instant(
                "async.staleness_reject", track="async", worker=worker,
                lag=exc.lag, bound=exc.bound, skipped=skipped,
            )
            self._completed[worker] = fleet_max
            return self.backend.pull(
                flat_keys, self.step,
                worker_id=worker, progress=self._completed[worker],
            )

    def _enqueue_push(self, worker: int, batch, grads) -> None:
        """Queue this step's gradients, applying the fault profile."""
        profile = self.worker_faults.get(worker)
        embedding_grads = grads.embedding_grads
        dense_grads = [np.array(g, copy=True) for g in self.model.mlp.gradients()]
        delay_extra = 0
        duplicate = False
        byzantine = False
        if profile is not None:
            rng = self._fault_rngs[worker]
            if profile.is_byzantine:
                # Corrupt only the PS-bound embedding gradients — the
                # PS-side defense layer is what chaos runs isolate. The
                # shared MLP is outside the PS's jurisdiction, so a
                # Byzantine worker contributes no dense update at all.
                embedding_grads = profile.corrupt(
                    np.asarray(embedding_grads, dtype=np.float32), rng
                )
                dense_grads = [np.zeros_like(g) for g in dense_grads]
                byzantine = True
                self.stats.byzantine_pushes += 1
                self._count("repro_async_byzantine_pushes_total")
            if profile.delay_prob > 0 and rng.random() < profile.delay_prob:
                delay_extra = profile.delay_steps
                self.stats.delayed_pushes += 1
                self._count("repro_async_delayed_pushes_total")
            if profile.duplicate_prob > 0 and rng.random() < profile.duplicate_prob:
                duplicate = True
        if self.track_progress:
            self._seq += 1
            seq = self._seq
        else:
            seq = 0
        self._pending.append(
            _PendingWork(
                worker=worker,
                step_computed=self.step,
                keys=batch.keys,
                embedding_grads=embedding_grads,
                dense_grads=dense_grads,
                loss=grads.loss,
                seq=seq,
                delay_extra=delay_extra,
                duplicate=duplicate,
                byzantine=byzantine,
            )
        )

    def _push(self, work: _PendingWork) -> None:
        """Apply one delayed gradient (through the pipeline if present)."""
        self._last_push_batch = max(self._last_push_batch, self.step)
        flat_keys = work.keys.reshape(-1).tolist()
        flat_grads = work.embedding_grads.reshape(-1, self.model.dim)
        if self.pipeline is not None:
            # Routing through the pipeline invalidates buffered copies
            # of the touched keys — the staleness invariant for the
            # async flow, where pushes land mid-schedule.
            self.pipeline.push(flat_keys, flat_grads, self.step)
        elif self.track_progress:
            self.backend.push(
                flat_keys, flat_grads, self.step,
                worker_id=work.worker, seq=work.seq,
            )
            if work.duplicate:
                # Same (worker_id, seq) identity on purpose: the dedup
                # windows (RPC reply cache, aggregation buffer) must
                # absorb the copy so the gradient lands exactly once.
                self.stats.duplicate_pushes += 1
                self._count("repro_async_duplicate_pushes_total")
                self.backend.push(
                    flat_keys, flat_grads, self.step,
                    worker_id=work.worker, seq=work.seq,
                )
        else:
            self.backend.push(flat_keys, flat_grads, self.step)
        if not work.byzantine:
            self.dense_optimizer.step(
                self.model.mlp.parameters(), work.dense_grads
            )

    def _apply_due_pushes(self) -> None:
        """Push everything whose (base + injected) delay has elapsed.

        Delayed pushes must not head-of-line-block punctual ones, so
        the whole queue is scanned; relative order of due pushes is
        preserved.
        """
        remaining: deque[_PendingWork] = deque()
        while self._pending:
            work = self._pending.popleft()
            if (
                self.step - work.step_computed
                >= self.staleness + work.delay_extra
            ):
                self._push(work)
            else:
                remaining.append(work)
        self._pending = remaining

    def _advance_clock(self) -> None:
        if self.clock is not None and self.gpu_batch_time_s > 0:
            self.clock.advance(self.gpu_batch_time_s)

    def _count(self, name: str, value: int = 1) -> None:
        if self.registry is not None and value:
            self.registry.counter(name).add(value)

    # ------------------------------------------------------------------
    # checkpoints: the asynchronous caveat
    # ------------------------------------------------------------------

    def checkpoint(self, quiesce: bool = True) -> int:
        """Take a checkpoint.

        With ``quiesce=True`` all in-flight gradients are applied and
        the PS's aggregation buffers are folded first (training pauses
        — effectively a momentary synchronous barrier), so the snapshot
        is consistent. With ``quiesce=False`` the snapshot is taken
        while pushes are still in flight — the asynchronous-checkpoint
        behaviour whose inconsistency the paper cites; the recovered
        state will have absorbed some workers' updates and not others'.
        The hazard is observable: it warns and counts
        ``repro_async_unquiesced_checkpoints_total``.

        Returns the number of in-flight gradients NOT captured.
        """
        in_flight = len(self._pending)
        if quiesce:
            while self._pending:
                self._push(self._pending.popleft())
            flush = getattr(self.backend, "flush_aggregation", None)
            if flush is not None:
                flush()
            in_flight = 0
        else:
            self.stats.unquiesced_checkpoints += 1
            self._count("repro_async_unquiesced_checkpoints_total")
            warnings.warn(
                "asynchronous checkpoint without quiesce: "
                f"{in_flight} in-flight gradient(s) will land AFTER the "
                "snapshot, so the durable state is not batch-consistent "
                "(pass quiesce=True for a recoverable barrier checkpoint)",
                RuntimeWarning,
                stacklevel=2,
            )
        # The target must cover every batch id a push carried (the
        # quiesce flush above pushes at self.step, one past the last
        # computed step) — anything newer than the target would be
        # DISCARDED by crash recovery's version scan.
        target = max(self._last_push_batch, self.step - 1, 0)
        self.backend.request_checkpoint(target)
        self.backend.complete_pending_checkpoints()
        return in_flight

    @property
    def pending_pushes(self) -> int:
        return len(self._pending)

    @property
    def progress(self) -> list[int]:
        """Batches completed per worker (what pulls report to the PS)."""
        return list(self._completed)
